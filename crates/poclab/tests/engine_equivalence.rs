//! Cross-validation of the lab's naive backtracking matcher against the
//! workspace's linear-time Pike VM: on the syntax subset both support,
//! the two independently-written engines must agree on every input.

use proptest::prelude::*;
use webvuln_pattern::Pattern;
use webvuln_poclab::{BtOutcome, BtRegex};

/// Generates patterns in the shared subset: literals, classes, groups,
/// alternation and quantifiers — shallow enough that the backtracker
/// terminates fast.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        "[a-c]",                  // literal
        Just(".".to_string()),    // any
        Just("[ab]".to_string()), // class
        Just("[^c]".to_string()), // negated class
        Just("\\d".to_string()),  // perl class
    ];
    let quantified = (
        atom,
        prop_oneof![Just(""), Just("*"), Just("+"), Just("?"),],
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    let seq = proptest::collection::vec(quantified, 1..4).prop_map(|v| v.concat());
    // Optional alternation of two sequences, wrapped in a group.
    (seq.clone(), proptest::option::of(seq)).prop_map(|(a, b)| match b {
        Some(b) => format!("({a}|{b})"),
        None => a,
    })
}

proptest! {
    /// Anchored-at-start match decisions agree between the two engines.
    #[test]
    fn backtracker_agrees_with_pike_vm(
        pattern in arb_pattern(),
        input in "[a-d0-2]{0,10}",
    ) {
        let bt = BtRegex::new(&pattern);
        // The backtracker is start-anchored and allows the match to end
        // anywhere; mirror that with a `^(?:…)` prefix for the Pike VM.
        let pike = Pattern::new(&format!("^(?:{pattern})")).expect("subset compiles");

        let (bt_outcome, _steps) = bt.run(&input, 2_000_000);
        prop_assume!(bt_outcome != BtOutcome::BudgetExhausted);
        let bt_matched = bt_outcome == BtOutcome::Matched;
        let pike_matched = pike.is_match(&input);
        prop_assert_eq!(
            bt_matched,
            pike_matched,
            "pattern {:?} on {:?}",
            pattern,
            input
        );
    }

    /// With the `$` anchor appended, full-string decisions also agree.
    #[test]
    fn anchored_full_match_agrees(
        pattern in arb_pattern(),
        input in "[a-d]{0,8}",
    ) {
        let bt = BtRegex::new(&format!("{pattern}$"));
        let pike = Pattern::new(&format!("^(?:{pattern})$")).expect("subset compiles");
        let (bt_outcome, _steps) = bt.run(&input, 2_000_000);
        prop_assume!(bt_outcome != BtOutcome::BudgetExhausted);
        prop_assert_eq!(
            bt_outcome == BtOutcome::Matched,
            pike.is_match(&input),
            "pattern {:?} on {:?}",
            pattern,
            input
        );
    }
}
