//! Per-host circuit breakers: closed → open → half-open.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (across rounds) before the breaker opens.
    pub failure_threshold: u32,
    /// Rounds an open breaker stays open before probing (half-open).
    pub cooldown_rounds: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_rounds: 2,
        }
    }
}

/// The breaker's position in the classic state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are being counted.
    Closed,
    /// Requests are skipped until the cooldown elapses.
    Open,
    /// Cooldown over: the next request is a probe.
    HalfOpen,
}

/// One host's breaker.
///
/// Time is counted in *rounds* (crawl weeks), not wall clock: the
/// collector calls [`tick`](CircuitBreaker::tick) once per round, which
/// makes every transition a pure function of the host's own outcome
/// sequence — reproducible regardless of scheduling, and replayable from
/// a checkpointed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
}

impl CircuitBreaker {
    /// A closed breaker with no recorded failures.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a request may proceed right now.
    pub fn allow(&self) -> bool {
        !matches!(self.state, BreakerState::Open)
    }

    /// Records a successful exchange: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.cooldown_left = 0;
    }

    /// Records a failed exchange. In `Closed`, the streak grows and the
    /// breaker opens at the threshold; in `HalfOpen`, the probe failed
    /// and the breaker re-opens for a full cooldown.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    /// Advances one round: an open breaker counts down toward half-open.
    pub fn tick(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.config.cooldown_rounds.max(1);
    }
}

/// Number of independent shards the host map is split across. A fixed
/// power of two keeps the `host → shard` mapping a pure function of the
/// host name alone, so shard membership never depends on map size.
const BREAKER_SHARDS: usize = 16;

/// A lazily populated map of per-host breakers, shared by the crawler's
/// worker threads.
///
/// The map is split into [`BREAKER_SHARDS`] independently locked shards
/// keyed by a hash of the host name, so parallel workers fetching
/// different hosts almost never contend on the same mutex. Each host's
/// entry is still only ever touched by the worker fetching that host
/// (the crawler hands every domain to exactly one worker per round), and
/// shard membership is a pure function of the host name — sharding
/// changes lock granularity, never any outcome.
#[derive(Debug)]
pub struct HostBreakers {
    config: BreakerConfig,
    shards: Vec<Mutex<BTreeMap<String, CircuitBreaker>>>,
}

impl HostBreakers {
    /// An empty registry handing out breakers configured with `config`.
    pub fn new(config: BreakerConfig) -> HostBreakers {
        HostBreakers {
            config,
            shards: (0..BREAKER_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    fn shard(&self, host: &str) -> &Mutex<BTreeMap<String, CircuitBreaker>> {
        let index = (crate::mix(0xb4ea_4e85, host) % BREAKER_SHARDS as u64) as usize;
        &self.shards[index]
    }

    /// Whether `host` may be fetched right now. Hosts with no history
    /// are allowed (their breaker starts closed).
    pub fn allow(&self, host: &str) -> bool {
        self.shard(host)
            .lock()
            .expect("breaker shard lock")
            .get(host)
            .map(CircuitBreaker::allow)
            .unwrap_or(true)
    }

    /// Records the outcome of a completed fetch against `host`.
    pub fn record(&self, host: &str, success: bool) {
        let mut hosts = self.shard(host).lock().expect("breaker shard lock");
        let breaker = hosts
            .entry(host.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config));
        if success {
            breaker.record_success();
        } else {
            breaker.record_failure();
        }
    }

    /// The state of `host`'s breaker (closed when never recorded).
    pub fn state(&self, host: &str) -> BreakerState {
        self.shard(host)
            .lock()
            .expect("breaker shard lock")
            .get(host)
            .map(CircuitBreaker::state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Ends a crawl round: every breaker ticks once.
    pub fn tick_round(&self) {
        for shard in &self.shards {
            for breaker in shard.lock().expect("breaker shard lock").values_mut() {
                breaker.tick();
            }
        }
    }

    /// Number of breakers currently open.
    pub fn open_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("breaker shard lock")
                    .values()
                    .filter(|b| b.state() == BreakerState::Open)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(threshold: u32, cooldown: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown_rounds: cooldown,
        }
    }

    #[test]
    fn opens_at_the_failure_threshold() {
        let mut b = CircuitBreaker::new(config(3, 2));
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(config(3, 2));
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak restarted");
    }

    #[test]
    fn cooldown_leads_to_half_open_then_probe_decides() {
        let mut b = CircuitBreaker::new(config(1, 2));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        b.tick();
        assert_eq!(b.state(), BreakerState::Open, "one round left");
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "half-open admits a probe");

        // Failed probe: back to open for a full cooldown.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        b.tick();
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Successful probe: closed again.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn zero_threshold_still_works() {
        let mut b = CircuitBreaker::new(config(0, 0));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold clamps to 1");
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen, "cooldown clamps to 1");
    }

    #[test]
    fn host_breakers_track_hosts_independently() {
        let breakers = HostBreakers::new(config(2, 1));
        for _ in 0..2 {
            breakers.record("bad.example", false);
        }
        breakers.record("good.example", true);
        assert!(!breakers.allow("bad.example"));
        assert!(breakers.allow("good.example"));
        assert!(breakers.allow("unknown.example"));
        assert_eq!(breakers.state("bad.example"), BreakerState::Open);
        assert_eq!(breakers.state("unknown.example"), BreakerState::Closed);
        assert_eq!(breakers.open_count(), 1);

        breakers.tick_round();
        assert_eq!(breakers.state("bad.example"), BreakerState::HalfOpen);
        assert_eq!(breakers.open_count(), 0);
        breakers.record("bad.example", true);
        assert_eq!(breakers.state("bad.example"), BreakerState::Closed);
    }

    #[test]
    fn sharding_keeps_every_host_visible() {
        // Many hosts, enough to land in every shard: the sharded map
        // must behave exactly like one big map.
        let breakers = HostBreakers::new(config(1, 1));
        let hosts: Vec<String> = (0..200).map(|i| format!("h{i:03}.example")).collect();
        for (i, host) in hosts.iter().enumerate() {
            breakers.record(host, i % 2 == 0);
        }
        let open = hosts.iter().filter(|h| !breakers.allow(h)).count();
        assert_eq!(open, 100, "every odd-indexed host tripped its breaker");
        assert_eq!(breakers.open_count(), 100);
        breakers.tick_round();
        assert_eq!(breakers.open_count(), 0, "tick_round reaches all shards");
        for host in &hosts {
            assert!(breakers.allow(host), "{host} admits a half-open probe");
        }
    }

    #[test]
    fn concurrent_disjoint_hosts_never_interfere() {
        use std::sync::Arc;
        let breakers = Arc::new(HostBreakers::new(config(2, 1)));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let breakers = Arc::clone(&breakers);
                scope.spawn(move || {
                    for i in 0..50 {
                        let host = format!("t{t}-h{i}.example");
                        breakers.record(&host, false);
                        breakers.record(&host, false);
                        assert_eq!(breakers.state(&host), BreakerState::Open);
                    }
                });
            }
        });
        assert_eq!(breakers.open_count(), 200);
    }

    #[test]
    fn half_open_probes_race_through_the_sharded_map() {
        use std::sync::Arc;
        // 160 hosts (~10 per shard) all tripped open and cooled to
        // half-open, then probed from 8 racing threads: even-indexed
        // hosts' probes succeed, odd-indexed fail. The outcome must be
        // exactly what a sequential replay would give.
        let breakers = Arc::new(HostBreakers::new(config(1, 2)));
        let hosts: Vec<String> = (0..160).map(|i| format!("ho{i:03}.example")).collect();
        for host in &hosts {
            breakers.record(host, false);
        }
        assert_eq!(breakers.open_count(), 160);
        breakers.tick_round();
        breakers.tick_round();
        for host in &hosts {
            assert_eq!(breakers.state(host), BreakerState::HalfOpen);
        }

        std::thread::scope(|scope| {
            for (chunk_index, chunk) in hosts.chunks(20).enumerate() {
                let breakers = Arc::clone(&breakers);
                scope.spawn(move || {
                    for (offset, host) in chunk.iter().enumerate() {
                        assert!(breakers.allow(host), "half-open admits the probe");
                        breakers.record(host, (chunk_index * 20 + offset) % 2 == 0);
                    }
                });
            }
        });

        for (i, host) in hosts.iter().enumerate() {
            let expected = if i % 2 == 0 {
                BreakerState::Closed
            } else {
                BreakerState::Open
            };
            assert_eq!(breakers.state(host), expected, "{host}");
        }
        assert_eq!(breakers.open_count(), 80);
        // A failed probe re-opens for the full cooldown: two more rounds
        // bring every failed host back to half-open.
        breakers.tick_round();
        assert_eq!(breakers.open_count(), 80, "one cooldown round left");
        breakers.tick_round();
        for (i, host) in hosts.iter().enumerate() {
            if i % 2 != 0 {
                assert_eq!(breakers.state(host), BreakerState::HalfOpen, "{host}");
            }
        }
    }

    #[test]
    fn same_shard_hosts_transition_independently_under_contention() {
        use std::sync::Arc;
        // Hosts chosen to collide in shard 0, so every thread contends on
        // a single shard mutex — which may change timing, never outcomes.
        let colliding: Vec<String> = (0u32..)
            .map(|i| format!("collide-{i}.example"))
            .filter(|h| crate::mix(0xb4ea_4e85, h) % BREAKER_SHARDS as u64 == 0)
            .take(8)
            .collect();
        assert_eq!(colliding.len(), 8);
        let breakers = Arc::new(HostBreakers::new(config(2, 1)));

        // Phase 1 (racing): trip every colliding host open. Extra
        // failures on an open breaker are no-ops, so iteration count is
        // irrelevant to the outcome.
        std::thread::scope(|scope| {
            for host in &colliding {
                let breakers = Arc::clone(&breakers);
                scope.spawn(move || {
                    for _ in 0..50 {
                        breakers.record(host, false);
                        breakers.record(host, false);
                    }
                });
            }
        });
        assert_eq!(breakers.open_count(), colliding.len());
        breakers.tick_round();
        for host in &colliding {
            assert_eq!(breakers.state(host), BreakerState::HalfOpen);
        }

        // Phase 2 (racing): every thread probes its own host; the first
        // four succeed, the rest fail their probe.
        std::thread::scope(|scope| {
            for (i, host) in colliding.iter().enumerate() {
                let breakers = Arc::clone(&breakers);
                scope.spawn(move || {
                    assert!(breakers.allow(host));
                    breakers.record(host, i < 4);
                });
            }
        });
        for (i, host) in colliding.iter().enumerate() {
            let expected = if i < 4 {
                BreakerState::Closed
            } else {
                BreakerState::Open
            };
            assert_eq!(breakers.state(host), expected, "{host}");
        }
        assert_eq!(breakers.open_count(), 4);
    }

    #[test]
    fn replaying_an_outcome_sequence_reproduces_the_state() {
        // The property the checkpoint/resume path depends on: breaker
        // state is a pure function of the per-host outcome sequence.
        let outcomes = [false, false, true, false, false, false, true];
        let run = || {
            let breakers = HostBreakers::new(BreakerConfig::default());
            for &ok in &outcomes {
                if breakers.allow("h.example") {
                    breakers.record("h.example", ok);
                }
                breakers.tick_round();
            }
            breakers.state("h.example")
        };
        assert_eq!(run(), run());
    }
}
