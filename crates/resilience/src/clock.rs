//! Simulated time: an atomic nanosecond accumulator.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing simulated clock.
///
/// The retry path never sleeps for real: a backoff delay is *recorded*
/// by advancing this clock, so a crawl under a hostile fault plan costs
/// the same wall-clock time as a clean one. One clock is shared by all
/// crawler workers; `advance` is a single atomic add, and the final
/// reading is the total simulated backoff of the run — interleaving
/// changes nothing because addition commutes.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Current simulated time in nanoseconds since creation.
    pub fn now_ns(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ns`, returning the new reading.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.nanos
            .fetch_add(delta_ns, Ordering::Relaxed)
            .wrapping_add(delta_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.advance(10), 10);
        assert_eq!(clock.advance(5), 15);
        assert_eq!(clock.now_ns(), 15);
    }

    #[test]
    fn concurrent_advances_all_land() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let clock = std::sync::Arc::clone(&clock);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        clock.advance(3);
                    }
                });
            }
        });
        assert_eq!(clock.now_ns(), 8 * 1000 * 3);
    }
}
