//! # webvuln-resilience
//!
//! The fault-tolerance substrate of the `webvuln` crawler: retry policies
//! with deterministic backoff, per-host circuit breakers, and a virtual
//! clock so backoff happens in *simulated* time.
//!
//! The paper's 201-week crawl (§4.1) survived four years of flaky
//! servers, transient refusals, and anti-bot blocks. A crawler that makes
//! exactly one attempt per domain silently converts every transient
//! hiccup into a permanently missing datapoint and biases every
//! longitudinal statistic downstream. This crate provides the pieces the
//! networking layer composes into a resilient fetch path:
//!
//! * [`RetryPolicy`] — attempt caps and exponential backoff with
//!   *seeded, deterministic* jitter: the delay before retry `n` against
//!   host `h` is a pure function of `(seed, h, n)`, so a crawl schedule
//!   never depends on thread interleaving.
//! * [`VirtualClock`] — an atomic nanosecond accumulator standing in for
//!   wall-clock sleeping. Backoff *advances* the clock instead of
//!   blocking, which keeps tests instant and makes a million-domain
//!   retry storm free.
//! * [`CircuitBreaker`] / [`HostBreakers`] — the classic
//!   closed → open → half-open state machine, per host, ticked once per
//!   crawl round, so hosts that fail week after week stop consuming
//!   retry attempts entirely.
//!
//! Like `webvuln-telemetry` and `webvuln-store`, the crate is
//! dependency-free (std only) and compiles under bare
//! `rustc --edition 2021 --test`.
//!
//! ```
//! use webvuln_resilience::{RetryPolicy, VirtualClock};
//!
//! let policy = RetryPolicy::standard(3).with_seed(42);
//! let clock = VirtualClock::new();
//! for attempt in 0..policy.retries() {
//!     clock.advance(policy.backoff_ns("flaky.example", attempt));
//! }
//! // Delays grew exponentially, in simulated time only.
//! assert!(clock.now_ns() > 0);
//! assert_eq!(clock.now_ns(), {
//!     let again = VirtualClock::new();
//!     for attempt in 0..policy.retries() {
//!         again.advance(policy.backoff_ns("flaky.example", attempt));
//!     }
//!     again.now_ns()
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod clock;
mod retry;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, HostBreakers};
pub use clock::VirtualClock;
pub use retry::RetryPolicy;

/// SplitMix64-style hash of `(seed, text)` — the crate's only source of
/// "randomness". Identical to the mixer used by `webvuln-net`'s fault
/// injector, duplicated here so the crate stays dependency-free.
pub(crate) fn mix(seed: u64, text: &str) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 29)
}
