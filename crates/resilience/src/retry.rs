//! Retry policies: attempt caps and exponential backoff with seeded,
//! deterministic jitter.

use crate::mix;

/// When and how long to back off between fetch attempts.
///
/// All delays are pure functions of `(seed, host, attempt)`: two runs
/// with the same policy produce the same schedule host-by-host, no
/// matter how crawler workers interleave. Jitter is therefore *seeded*
/// rather than random — it still decorrelates hosts from each other
/// (which is what jitter is for) without sacrificing reproducibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per fetch, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry, in nanoseconds.
    pub base_delay_ns: u64,
    /// Ceiling on any single delay, in nanoseconds.
    pub max_delay_ns: u64,
    /// Jitter amplitude in permille of the computed delay (0 = none,
    /// 500 = ±50%).
    pub jitter_permille: u32,
    /// Seed mixed into every jitter decision.
    pub seed: u64,
}

impl RetryPolicy {
    /// Single attempt, no retries — the historical crawler behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ns: 0,
            max_delay_ns: 0,
            jitter_permille: 0,
            seed: 0,
        }
    }

    /// A sensible default schedule with `retries` extra attempts:
    /// 250 ms base delay doubling up to 8 s, ±20% jitter.
    pub fn standard(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1).max(1),
            base_delay_ns: 250_000_000,
            max_delay_ns: 8_000_000_000,
            jitter_permille: 200,
            seed: 0x5EED_0BAC_C0FF,
        }
    }

    /// Returns the policy with `seed` mixed into jitter decisions.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Extra attempts after the first.
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// Whether another attempt is allowed after `attempts_made` attempts.
    pub fn allows_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts.max(1)
    }

    /// The backoff delay after `failed_attempt` (0-based: the delay
    /// between the first attempt and the second) against `host`.
    ///
    /// Exponential in the attempt index, capped at
    /// [`max_delay_ns`](RetryPolicy::max_delay_ns), then jittered by up
    /// to ±`jitter_permille`‰ using the seeded hash — deterministic for
    /// a given `(seed, host, attempt)`.
    pub fn backoff_ns(&self, host: &str, failed_attempt: u32) -> u64 {
        if self.base_delay_ns == 0 {
            return 0;
        }
        let exp = failed_attempt.min(20);
        let uncapped = self.base_delay_ns.saturating_mul(1u64 << exp);
        let capped = uncapped.min(self.max_delay_ns.max(self.base_delay_ns));
        if self.jitter_permille == 0 {
            return capped;
        }
        let amplitude = ((capped as u128 * self.jitter_permille as u128) / 1000) as u64;
        if amplitude == 0 {
            return capped;
        }
        let h = mix(self.seed ^ ((failed_attempt as u64) << 32), host);
        let offset = h % (2 * amplitude + 1);
        capped - amplitude + offset
    }

    /// Full-jitter variant of [`RetryPolicy::backoff_ns`]: the delay is
    /// drawn uniformly from `[0, capped]`, where `capped` is the same
    /// exponentially-grown, capped delay the plain schedule computes.
    ///
    /// Where `backoff_ns` clusters delays around the exponential curve
    /// (±`jitter_permille`‰), full jitter spreads simultaneous restarts
    /// across the *whole* window — the right shape for supervisor restart
    /// storms, where many instances fail at the same instant and anything
    /// correlated re-thunders the herd. Like the plain schedule it is a
    /// pure function of `(seed, host, attempt)`, so restart schedules
    /// replay identically under the virtual clock; `jitter_permille` is
    /// ignored.
    pub fn full_jitter_backoff_ns(&self, host: &str, failed_attempt: u32) -> u64 {
        if self.base_delay_ns == 0 {
            return 0;
        }
        let exp = failed_attempt.min(20);
        let uncapped = self.base_delay_ns.saturating_mul(1u64 << exp);
        let capped = uncapped.min(self.max_delay_ns.max(self.base_delay_ns));
        // Salted so the full-jitter draw never mirrors the ± schedule's.
        let h = mix(
            self.seed ^ 0x46_4A49_5454 ^ ((failed_attempt as u64) << 32),
            host,
        );
        h % (capped.saturating_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_is_single_attempt() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.retries(), 0);
        assert!(policy.allows_retry(0));
        assert!(!policy.allows_retry(1));
        assert_eq!(policy.backoff_ns("a.example", 0), 0);
    }

    #[test]
    fn standard_counts_attempts_from_retries() {
        assert_eq!(RetryPolicy::standard(0).max_attempts, 1);
        assert_eq!(RetryPolicy::standard(3).max_attempts, 4);
        assert_eq!(RetryPolicy::standard(3).retries(), 3);
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = RetryPolicy {
            jitter_permille: 0,
            ..RetryPolicy::standard(10)
        };
        let d: Vec<u64> = (0..8).map(|a| policy.backoff_ns("h.example", a)).collect();
        assert_eq!(d[0], 250_000_000);
        assert_eq!(d[1], 500_000_000);
        assert_eq!(d[2], 1_000_000_000);
        assert_eq!(d[5], 8_000_000_000, "hits the cap");
        assert_eq!(d[7], 8_000_000_000, "stays at the cap");
    }

    #[test]
    fn huge_attempt_indices_do_not_overflow() {
        let policy = RetryPolicy::standard(u32::MAX);
        assert_eq!(policy.max_attempts, u32::MAX);
        let d = policy.backoff_ns("h.example", u32::MAX - 1);
        assert!(d <= policy.max_delay_ns + policy.max_delay_ns / 5);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy::standard(5).with_seed(99);
        for attempt in 0..5 {
            for host in ["a.example", "b.example", "c.example"] {
                let base = RetryPolicy {
                    jitter_permille: 0,
                    ..policy
                }
                .backoff_ns(host, attempt);
                let jittered = policy.backoff_ns(host, attempt);
                let amplitude = base / 5; // 200 permille
                assert!(
                    (base - amplitude..=base + amplitude).contains(&jittered),
                    "attempt {attempt} host {host}: {jittered} outside {base}±{amplitude}"
                );
                assert_eq!(jittered, policy.backoff_ns(host, attempt), "deterministic");
            }
        }
    }

    #[test]
    fn jitter_decorrelates_hosts() {
        let policy = RetryPolicy::standard(3).with_seed(7);
        let delays: std::collections::HashSet<u64> = (0..100)
            .map(|i| policy.backoff_ns(&format!("host{i}.example"), 0))
            .collect();
        assert!(delays.len() > 50, "distinct delays: {}", delays.len());
    }

    #[test]
    fn different_seeds_move_the_jitter() {
        let a = RetryPolicy::standard(3).with_seed(1);
        let b = RetryPolicy::standard(3).with_seed(2);
        let differs =
            (0..50).any(|i| a.backoff_ns(&format!("h{i}"), 1) != b.backoff_ns(&format!("h{i}"), 1));
        assert!(differs);
    }

    #[test]
    fn full_jitter_is_bounded_by_the_capped_delay() {
        let policy = RetryPolicy::standard(10).with_seed(42);
        for attempt in 0..8 {
            let capped = RetryPolicy {
                jitter_permille: 0,
                ..policy
            }
            .backoff_ns("h.example", attempt);
            for host in ["a.example", "b.example", "c.example", "d.example"] {
                let d = policy.full_jitter_backoff_ns(host, attempt);
                assert!(d <= capped, "attempt {attempt} host {host}: {d} > {capped}");
            }
        }
    }

    #[test]
    fn full_jitter_is_deterministic_under_a_fixed_seed() {
        let policy = RetryPolicy::standard(5).with_seed(0xC0FFEE);
        let first: Vec<u64> = (0..6)
            .map(|a| policy.full_jitter_backoff_ns("watch.supervisor", a))
            .collect();
        let second: Vec<u64> = (0..6)
            .map(|a| policy.full_jitter_backoff_ns("watch.supervisor", a))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn full_jitter_fills_the_whole_window() {
        // Uniform-in-[0, capped] means samples land both well below half
        // the window and well above it — the ± schedule never goes below
        // capped·(1-jitter). 200 hosts give a dense enough sample.
        let policy = RetryPolicy::standard(5).with_seed(9);
        let capped = RetryPolicy {
            jitter_permille: 0,
            ..policy
        }
        .backoff_ns("x", 3);
        let samples: Vec<u64> = (0..200)
            .map(|i| policy.full_jitter_backoff_ns(&format!("host{i}.example"), 3))
            .collect();
        assert!(samples.iter().any(|&d| d < capped / 4), "low tail present");
        assert!(samples.iter().any(|&d| d > 3 * capped / 4), "high tail present");
        let distinct: std::collections::HashSet<u64> = samples.iter().copied().collect();
        assert!(distinct.len() > 150, "distinct: {}", distinct.len());
    }

    #[test]
    fn full_jitter_moves_with_the_seed_and_not_the_permille() {
        let a = RetryPolicy::standard(3).with_seed(1);
        let b = RetryPolicy::standard(3).with_seed(2);
        assert!((0..50).any(|i| {
            a.full_jitter_backoff_ns(&format!("h{i}"), 1)
                != b.full_jitter_backoff_ns(&format!("h{i}"), 1)
        }));
        let no_jitter = RetryPolicy {
            jitter_permille: 0,
            ..a
        };
        for attempt in 0..4 {
            assert_eq!(
                a.full_jitter_backoff_ns("h.example", attempt),
                no_jitter.full_jitter_backoff_ns("h.example", attempt),
                "jitter_permille must not feed the full-jitter draw"
            );
        }
    }

    #[test]
    fn full_jitter_zero_base_is_immediate() {
        assert_eq!(RetryPolicy::none().full_jitter_backoff_ns("h", 0), 0);
    }

    #[test]
    fn allows_retry_respects_the_cap() {
        let policy = RetryPolicy::standard(2);
        assert!(policy.allows_retry(0));
        assert!(policy.allows_retry(2));
        assert!(!policy.allows_retry(3));
    }
}
