//! Measures query-server throughput and tail latency against a loaded
//! multi-week store, at 1, 2 and 8 pool threads.
//!
//! Two workloads, mirroring `BENCH_exec.json`'s use of simulated cost on
//! a small CI host:
//!
//! * **scaling** — every request pays a 2 ms injected backend delay
//!   (`serve.handler` armed with `Action::Delay`, which the server
//!   sleeps). Throughput is then bounded by `threads / 2ms`, so the
//!   1→2→8 points isolate how well the pool overlaps request handling.
//! * **cache_hot** — no injected delay; every request after warmup is a
//!   response-cache hit. Reports the raw hit path's RPS and p50/p99.
//!
//! Run: `cargo run --example serve_bench` (or the shadow-built binary).
//! Output is the `BENCH_serve.json` document on stdout.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webvuln_analysis::Collector;
use webvuln_failpoint::{arm, reset, Action};
use webvuln_net::codec::{encode_request, MessageReader};
use webvuln_net::Request;
use webvuln_serve::{ApiServer, QueryService, ServeConfig};
use webvuln_telemetry::Registry;
use webvuln_webgen::{Ecosystem, EcosystemConfig, Timeline};

const DOMAINS: usize = 80;
const WEEKS: usize = 6;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 150;
const WARMUP_PER_CLIENT: usize = 10;
const BACKEND_DELAY_NS: u64 = 2_000_000;

/// The cacheable targets the clients rotate over.
fn targets() -> Vec<String> {
    let mut t = vec!["/library/jquery/prevalence".to_string()];
    for w in 0..WEEKS {
        t.push(format!("/week/{w}/landscape"));
    }
    t.push("/cve/CVE-2020-11022/exposure".to_string());
    t
}

struct Run {
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hit_rate: f64,
}

/// One keep-alive client: `n` sequential requests over one connection,
/// returning per-request latencies in nanoseconds.
fn client(addr: std::net::SocketAddr, targets: &[String], offset: usize, n: usize) -> Vec<u64> {
    let conn = TcpStream::connect(addr).expect("connect");
    let mut write = conn.try_clone().expect("clone");
    let mut reader = MessageReader::new(conn);
    let mut latencies = Vec::with_capacity(n);
    let mut wire = Vec::new();
    for i in 0..n {
        let target = &targets[(offset + i) % targets.len()];
        wire.clear();
        encode_request(&Request::get("bench", target), &mut wire);
        let started = Instant::now();
        write.write_all(&wire).expect("send");
        let resp = reader.read_response(false).expect("response");
        latencies.push(started.elapsed().as_nanos() as u64);
        assert_eq!(resp.status.0, 200, "{target}");
    }
    latencies
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Starts a server at `threads`, drives it with `CLIENTS` keep-alive
/// clients, and reports throughput over the timed (post-warmup) window.
fn run(service: &Arc<QueryService>, threads: usize, delayed: bool) -> Run {
    reset();
    if delayed {
        arm("serve.handler", Action::Delay(BACKEND_DELAY_NS));
    }
    let registry = Registry::new();
    let config = ServeConfig {
        threads,
        max_connections: CLIENTS * 2,
        cache_capacity: 64,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let mut server = ApiServer::serve(Arc::clone(service), config, &registry).expect("bind");
    let addr = server.addr();
    let targets = Arc::new(targets());

    // Warmup: populate the response cache and settle the pool.
    let warm: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || client(addr, &targets, c, WARMUP_PER_CLIENT))
        })
        .collect();
    for t in warm {
        t.join().expect("warmup client");
    }
    let hits_before = registry
        .snapshot()
        .counter("serve.cache_hits_total")
        .unwrap_or(0);
    let reqs_before = registry
        .snapshot()
        .counter("serve.requests_total")
        .unwrap_or(0);

    let started = Instant::now();
    let timed: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || client(addr, &targets, c * 3, REQUESTS_PER_CLIENT))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for t in timed {
        latencies.extend(t.join().expect("timed client"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let snap = registry.snapshot();
    let hits = snap.counter("serve.cache_hits_total").unwrap_or(0) - hits_before;
    let reqs = snap.counter("serve.requests_total").unwrap_or(0) - reqs_before;
    server.shutdown();
    reset();

    latencies.sort_unstable();
    Run {
        rps: latencies.len() as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        cache_hit_rate: hits as f64 / reqs.max(1) as f64,
    }
}

fn main() {
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 99,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    }));
    let path = std::env::temp_dir().join(format!(
        "webvuln-serve-bench-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    eprintln!("building {DOMAINS}-domain x {WEEKS}-week store...");
    Collector::new()
        .threads(2)
        .checkpoint(&path)
        .run(&eco)
        .expect("collect");
    let service = Arc::new(QueryService::open(&path).expect("open"));

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve_scaling\",\n");
    out.push_str(&format!(
        "  \"workload\": \"{DOMAINS}-domain x {WEEKS}-week store, {CLIENTS} keep-alive clients x {REQUESTS_PER_CLIENT} requests, 2ms simulated backend delay per request\",\n"
    ));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"points\": [\n");
    let base = run(&service, 1, true);
    let mut first = true;
    for (threads, r) in [
        (1, base.rps),
        (2, run(&service, 2, true).rps),
        (8, run(&service, 8, true).rps),
    ] {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "    {{ \"threads\": {threads}, \"rps\": {:.1}, \"speedup\": {:.2} }}",
            r,
            r / base.rps
        ));
    }
    out.push_str("\n  ],\n");
    let hot = run(&service, 8, false);
    out.push_str(&format!(
        "  \"cache_hot\": {{ \"threads\": 8, \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"cache_hit_rate\": {:.3} }}\n",
        hot.rps, hot.p50_us, hot.p99_us, hot.cache_hit_rate
    ));
    out.push_str("}\n");
    print!("{out}");
    let _ = std::fs::remove_file(&path);
}
