//! A seeded, shard-locked LRU cache for hot response bodies.
//!
//! The cache is split into independently locked shards so concurrent
//! workers rarely contend; a key's shard is chosen by a SplitMix64-seeded
//! hash, making the shard layout deterministic for a given seed (tests
//! can pin it) while still spreading adversarial key sets. Each shard
//! evicts its least-recently-used entry when full — eviction scans the
//! shard, which stays cheap because shards are small by construction.

use std::collections::HashMap;
use std::sync::Mutex;

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
}

/// A sharded LRU keyed by `String`. Values are cloned out on hit, so
/// callers typically store `Arc`s.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    seed: u64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both floored to 1). `seed` fixes the key→shard mapping.
    pub fn new(capacity: usize, shards: usize, seed: u64) -> ShardedLru<V> {
        let shards = shards.max(1);
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_cap,
            seed,
        }
    }

    /// The shard index for `key` (deterministic per seed).
    pub fn shard_of(&self, key: &str) -> usize {
        let mut h = self.seed ^ 0x51_7c_c1_b7_27_22_0a_95;
        for chunk in key.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = mix(h ^ u64::from_le_bytes(word));
        }
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &str) -> std::sync::MutexGuard<'_, Shard<V>> {
        let idx = self.shard_of(key);
        self.shards[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Inserts `key`, evicting the shard's least-recently-used entry if
    /// the shard is at capacity.
    pub fn insert(&self, key: String, value: V) {
        let cap = self.per_shard_cap;
        let mut shard = self.shard(&key);
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= cap {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value() {
        let cache: ShardedLru<u32> = ShardedLru::new(8, 2, 7);
        assert_eq!(cache.get("a"), None);
        cache.insert("a".into(), 1);
        assert_eq!(cache.get("a"), Some(1));
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard makes the LRU order globally observable.
        let cache: ShardedLru<u32> = ShardedLru::new(2, 1, 0);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(1)); // refresh "a": "b" is now LRU
        cache.insert("c".into(), 3);
        assert_eq!(cache.get("b"), None, "LRU entry evicted");
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("c"), Some(3));
    }

    #[test]
    fn capacity_bounds_hold_across_shards() {
        let cache: ShardedLru<u32> = ShardedLru::new(16, 4, 3);
        for i in 0..200 {
            cache.insert(format!("key-{i}"), i);
        }
        // Each of the 4 shards holds at most ceil(16/4) = 4 entries.
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
    }

    #[test]
    fn shard_mapping_is_seed_deterministic() {
        let a: ShardedLru<u8> = ShardedLru::new(8, 4, 123);
        let b: ShardedLru<u8> = ShardedLru::new(8, 4, 123);
        let c: ShardedLru<u8> = ShardedLru::new(8, 4, 456);
        let keys = ["/domain/d1/history", "/week/3/landscape", "/healthz"];
        for k in keys {
            assert_eq!(a.shard_of(k), b.shard_of(k));
        }
        // A different seed must move at least one key (these seeds do).
        assert!(keys.iter().any(|k| a.shard_of(k) != c.shard_of(k)));
    }

    #[test]
    fn concurrent_mixed_load_stays_consistent() {
        let cache: std::sync::Arc<ShardedLru<usize>> =
            std::sync::Arc::new(ShardedLru::new(32, 8, 9));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500 {
                        let key = format!("k{}", (t * 31 + i) % 40);
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, (t * 31 + i) % 40 + 1, "value corrupted");
                        }
                        cache.insert(key, (t * 31 + i) % 40 + 1);
                    }
                });
            }
        });
        assert!(cache.len() <= 32);
    }
}
