//! Minimal JSON emission for API responses.
//!
//! The workspace keeps its core layers free of external crates, so
//! responses are written with a small escaping builder instead of a
//! serializer framework (`webvuln-telemetry`'s snapshot export hand-writes
//! JSON the same way). Numbers use Rust's shortest-round-trip `Display`,
//! which is valid JSON for every finite value; non-finite floats become
//! `null` so a body can never contain `NaN`.

/// Appends `s` to `out` as a JSON string literal (with the quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON token for a float: shortest-round-trip decimal, or `null`
/// when the value is not finite.
pub fn f64_token(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for a JSON object. Field order is insertion order, so bodies
/// are byte-deterministic.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Adds a string-or-null field.
    pub fn opt_str(self, k: &str, v: Option<&str>) -> Obj {
        match v {
            Some(v) => self.str(k, v),
            None => self.raw(k, "null"),
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64(mut self, k: &str, v: f64) -> Obj {
        self.key(k);
        self.buf.push_str(&f64_token(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value (an [`Obj`] or [`Arr`] body).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Builder for a JSON array of pre-serialized elements.
#[derive(Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Arr {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends a pre-serialized JSON value.
    pub fn push_raw(&mut self, v: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, v: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, v);
    }

    /// Closes the array and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Arr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_fields_keep_insertion_order() {
        let body = Obj::new()
            .str("name", "jquery")
            .u64("weeks", 12)
            .f64("share", 0.5)
            .bool("ok", true)
            .opt_str("missing", None)
            .finish();
        assert_eq!(
            body,
            r#"{"name":"jquery","weeks":12,"share":0.5,"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn arrays_nest_inside_objects() {
        let mut points = Arr::new();
        points.push_raw(&Obj::new().u64("week", 0).finish());
        points.push_raw(&Obj::new().u64("week", 1).finish());
        let body = Obj::new().raw("points", &points.finish()).finish();
        assert_eq!(body, r#"{"points":[{"week":0},{"week":1}]}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64_token(f64::NAN), "null");
        assert_eq!(f64_token(f64::INFINITY), "null");
        assert_eq!(f64_token(1.25), "1.25");
    }
}
