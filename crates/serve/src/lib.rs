//! # webvuln-serve
//!
//! The delivery layer of the study: a multi-threaded HTTP/1.1 query API
//! over one finalized (or still-growing) snapshot store — the ROADMAP's
//! "serve the answers, don't just compute them once" subsystem.
//!
//! Layering, bottom-up:
//!
//! * [`json`] — minimal JSON emission (the workspace's core layers stay
//!   free of external crates, so bodies are hand-written, deterministic
//!   text).
//! * [`ShardedLru`] — the seeded, shard-locked response cache for hot
//!   tables.
//! * [`Route`] / [`route`] — the request router and structured
//!   [`ApiError`] responses (404/400/405/503).
//! * [`QueryService`] — evaluates routes against a read-only
//!   [`StoreReader`](webvuln_store::StoreReader) (O(1) per-domain random
//!   access) plus the precomputed `webvuln-analysis` tables, so served
//!   bodies agree with the batch reports by construction.
//! * [`ApiHandler`] — an instrumented `webvuln-net` [`Handler`]: router →
//!   fail-points → cache → service, with panic quarantine (`serve.*`
//!   telemetry names the counters, gauges and latency histograms).
//! * [`ApiServer`] — the pooled TCP front end: a non-blocking accept
//!   loop with an admission limit feeding a bounded queue drained by
//!   `webvuln-exec` workers, and graceful connection drain on shutdown.
//!
//! ## Endpoints
//!
//! | Route | Answer |
//! |---|---|
//! | `/healthz` | liveness + store shape |
//! | `/domain/{d}/history` | the domain's weekly records (status, detections) |
//! | `/library/{lib}/prevalence` | Table 1 row + Figure 3 usage series |
//! | `/week/{w}/landscape` | per-library users/share in one week |
//! | `/cve/{id}/exposure` | Table 2 / Figure 5 series + exposure window |
//!
//! ```no_run
//! use std::sync::Arc;
//! use webvuln_serve::{ApiServer, QueryService, ServeConfig};
//! use webvuln_telemetry::Registry;
//!
//! let service = Arc::new(QueryService::open(std::path::Path::new("study.wvstore")).unwrap());
//! let registry = Registry::global_arc();
//! let mut server = ApiServer::serve(service, ServeConfig::default(), &registry).unwrap();
//! println!("serving http://{}", server.addr());
//! # server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
mod router;
mod server;
mod service;

pub use cache::ShardedLru;
pub use router::{route, ApiError, Route};
pub use server::{ApiHandler, ApiServer, ServeConfig, FAILPOINTS};
pub use service::QueryService;
