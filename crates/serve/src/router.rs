//! Request routing: target paths to typed routes, API errors to
//! structured JSON responses.

use crate::json::Obj;
use webvuln_net::{Method, Request, Response, Status};

/// A parsed API route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness and store summary.
    Healthz,
    /// `GET /domain/{d}/history` — one domain's weekly records.
    DomainHistory(String),
    /// `GET /library/{lib}/prevalence` — one library's usage series.
    LibraryPrevalence(String),
    /// `GET /week/{w}/landscape` — the library landscape of one week.
    WeekLandscape(usize),
    /// `GET /cve/{id}/exposure` — affected-site series for one report.
    CveExposure(String),
    /// `GET /alerts` — the watch daemon's exposure-alert outbox.
    Alerts,
}

impl Route {
    /// Short label used in metric names and fail-point keys.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::DomainHistory(_) => "domain_history",
            Route::LibraryPrevalence(_) => "library_prevalence",
            Route::WeekLandscape(_) => "week_landscape",
            Route::CveExposure(_) => "cve_exposure",
            Route::Alerts => "alerts",
        }
    }

    /// Whether responses for this route may be served from the LRU cache.
    /// `/healthz` reports live counters and `/alerts` reads the watch
    /// daemon's outbox files, so neither is ever cached.
    pub fn cacheable(&self) -> bool {
        !matches!(self, Route::Healthz | Route::Alerts)
    }
}

/// A structured API failure, carried until the edge renders it as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The path or the named entity does not exist → 404.
    NotFound(String),
    /// The request is malformed (bad method, non-numeric week…) → 400/405.
    BadRequest(String),
    /// The server cannot answer right now (injected fault, drain) → 503.
    Unavailable(String),
}

impl ApiError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> Status {
        match self {
            ApiError::NotFound(_) => Status::NOT_FOUND,
            ApiError::BadRequest(d) if d.starts_with("method ") => Status(405),
            ApiError::BadRequest(_) => Status::BAD_REQUEST,
            ApiError::Unavailable(_) => Status::SERVICE_UNAVAILABLE,
        }
    }

    /// Renders the error as a JSON response.
    pub fn to_response(&self) -> Response {
        let (kind, detail) = match self {
            ApiError::NotFound(d) => ("not found", d),
            ApiError::BadRequest(d) => ("bad request", d),
            ApiError::Unavailable(d) => ("unavailable", d),
        };
        let body = Obj::new().str("error", kind).str("detail", detail).finish();
        Response::new(self.status(), "application/json", body)
    }
}

/// Parses a request line into a [`Route`].
///
/// Only `GET` is served; a query string is ignored; unknown paths are
/// 404 and a non-numeric `{w}` is 400.
pub fn route(req: &Request) -> Result<Route, ApiError> {
    if req.method != Method::Get {
        return Err(ApiError::BadRequest(format!(
            "method {} not allowed (only GET)",
            req.method
        )));
    }
    let path = req.target.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => Ok(Route::Healthz),
        ["domain", d, "history"] => Ok(Route::DomainHistory((*d).to_string())),
        ["library", lib, "prevalence"] => Ok(Route::LibraryPrevalence((*lib).to_string())),
        ["week", w, "landscape"] => w
            .parse::<usize>()
            .map(Route::WeekLandscape)
            .map_err(|_| ApiError::BadRequest(format!("week index '{w}' is not a number"))),
        ["cve", id, "exposure"] => Ok(Route::CveExposure((*id).to_string())),
        ["alerts"] => Ok(Route::Alerts),
        _ => Err(ApiError::NotFound(format!("no route for '{path}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(target: &str) -> Request {
        Request::get("api.local", target)
    }

    #[test]
    fn routes_every_endpoint() {
        assert_eq!(route(&get("/healthz")), Ok(Route::Healthz));
        assert_eq!(
            route(&get("/domain/site-7.example/history")),
            Ok(Route::DomainHistory("site-7.example".into()))
        );
        assert_eq!(
            route(&get("/library/jquery/prevalence")),
            Ok(Route::LibraryPrevalence("jquery".into()))
        );
        assert_eq!(
            route(&get("/week/12/landscape")),
            Ok(Route::WeekLandscape(12))
        );
        assert_eq!(
            route(&get("/cve/CVE-2020-11022/exposure")),
            Ok(Route::CveExposure("CVE-2020-11022".into()))
        );
        assert_eq!(route(&get("/alerts")), Ok(Route::Alerts));
        assert!(!Route::Alerts.cacheable());
    }

    #[test]
    fn query_strings_and_trailing_slashes_are_tolerated() {
        assert_eq!(route(&get("/healthz?verbose=1")), Ok(Route::Healthz));
        assert_eq!(
            route(&get("/week/3/landscape/")),
            Ok(Route::WeekLandscape(3))
        );
    }

    #[test]
    fn unknown_paths_are_404_and_bad_weeks_400() {
        assert!(matches!(route(&get("/nope")), Err(ApiError::NotFound(_))));
        assert!(matches!(
            route(&get("/week/twelve/landscape")),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn non_get_is_405() {
        let mut req = get("/healthz");
        req.method = Method::Post;
        let err = route(&req).unwrap_err();
        assert_eq!(err.status(), Status(405));
        let resp = err.to_response();
        assert!(resp.body_text().contains("\"error\":\"bad request\""));
    }

    #[test]
    fn error_responses_are_structured_json() {
        let resp = ApiError::NotFound("unknown domain 'x'".into()).to_response();
        assert_eq!(resp.status, Status::NOT_FOUND);
        assert_eq!(
            resp.body_text(),
            r#"{"error":"not found","detail":"unknown domain 'x'"}"#
        );
    }
}
