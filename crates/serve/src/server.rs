//! The pooled TCP front end: accept loop, worker pool over the
//! work-stealing executor, per-request instrumentation, fail-points, and
//! graceful drain.
//!
//! Division of labor with `webvuln-net`: the HTTP types, wire codec and
//! [`Handler`] contract come from there unchanged ([`ApiHandler`] is an
//! ordinary `Handler`, so it also runs under `net`'s `TcpServer` or
//! `VirtualNet` in tests). What this module adds is the serving *policy*:
//! a bounded connection queue drained by `webvuln-exec` workers instead
//! of a thread per connection, a response cache, structured errors, and
//! quarantine — a panicking handler answers `503` and the listener stays
//! up.

use crate::cache::ShardedLru;
use crate::router::{route, ApiError};
use crate::service::QueryService;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use webvuln_exec::Executor;
use webvuln_net::codec::{encode_response, MessageReader};
use webvuln_net::{Handler, NetError, Request, Response, Status};
use webvuln_telemetry::{Counter, Gauge, Histogram, Registry};

/// Fail-point sites this crate registers.
///
/// * `serve.accept` — keyed by peer address, checked for every accepted
///   connection; an injected error or panic drops that connection only.
/// * `serve.handler` — keyed by route label, checked before evaluating a
///   request; `Error` answers `503`, `Panic` exercises the quarantine.
/// * `serve.mid_response` — keyed by route label, checked after a
///   response is encoded; `Error` writes half the bytes and kills the
///   connection (the client sees a torn response, the listener lives).
pub const FAILPOINTS: &[&str] = &["serve.accept", "serve.handler", "serve.mid_response"];

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the request pool.
    pub threads: usize,
    /// TCP port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Connections admitted concurrently (queued + in flight); beyond
    /// this the accept loop answers `503` and closes.
    pub max_connections: usize,
    /// Response-cache capacity in entries.
    pub cache_capacity: usize,
    /// Seed for the cache's shard hash.
    pub seed: u64,
    /// Keep-alive idle timeout; also bounds drain latency on shutdown.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 4,
            port: 0,
            max_connections: 64,
            cache_capacity: 256,
            seed: 0,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// Registered `serve.*` metric handles.
#[derive(Clone)]
pub(crate) struct Metrics {
    requests: Counter,
    resp_2xx: Counter,
    resp_4xx: Counter,
    resp_5xx: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    handler_panics: Counter,
    accept_faults: Counter,
    rejected: Counter,
    connections: Counter,
    killed: Counter,
    inflight: Gauge,
    latency: Vec<(&'static str, Histogram)>,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        let labels = [
            "healthz",
            "domain_history",
            "library_prevalence",
            "week_landscape",
            "cve_exposure",
            "alerts",
            "error",
        ];
        Metrics {
            requests: registry.counter("serve.requests_total"),
            resp_2xx: registry.counter("serve.responses_2xx_total"),
            resp_4xx: registry.counter("serve.responses_4xx_total"),
            resp_5xx: registry.counter("serve.responses_5xx_total"),
            cache_hits: registry.counter("serve.cache_hits_total"),
            cache_misses: registry.counter("serve.cache_misses_total"),
            handler_panics: registry.counter("serve.handler_panics_total"),
            accept_faults: registry.counter("serve.accept_faults_total"),
            rejected: registry.counter("serve.rejected_connections_total"),
            connections: registry.counter("serve.connections_total"),
            killed: registry.counter("serve.killed_mid_response_total"),
            inflight: registry.gauge("serve.inflight"),
            latency: labels
                .iter()
                .map(|&l| (l, registry.histogram(&format!("serve.latency_ns.{l}"))))
                .collect(),
        }
    }

    fn latency_for(&self, label: &str) -> &Histogram {
        self.latency
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, h)| h)
            .unwrap_or(&self.latency[self.latency.len() - 1].1)
    }

    fn count_response(&self, status: Status) {
        if status.is_success() {
            self.resp_2xx.inc();
        } else if status.is_client_error() || status.0 == 405 {
            self.resp_4xx.inc();
        } else {
            self.resp_5xx.inc();
        }
    }
}

/// The instrumented request handler: router → fail-points → cache →
/// [`QueryService`], with panic quarantine. A plain [`Handler`], so it
/// composes with every server front end in `webvuln-net`.
pub struct ApiHandler {
    service: Arc<QueryService>,
    cache: ShardedLru<Arc<Response>>,
    metrics: Metrics,
}

impl ApiHandler {
    /// Builds a handler over `service` with a fresh cache.
    pub fn new(
        service: Arc<QueryService>,
        config: &ServeConfig,
        registry: &Registry,
    ) -> ApiHandler {
        ApiHandler {
            service,
            cache: ShardedLru::new(config.cache_capacity, 8, config.seed),
            metrics: Metrics::new(registry),
        }
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The route label for a request (for metrics and fail-point keys).
    fn label_of(req: &Request) -> &'static str {
        route(req).map(|r| r.label()).unwrap_or("error")
    }

    fn dispatch(&self, req: &Request) -> Response {
        let parsed = match route(req) {
            Ok(r) => r,
            Err(e) => return e.to_response(),
        };
        // Injected handler fault: `Error` → 503, `Delay` → a genuinely
        // slow handler, `Panic` → quarantined below like a real bug.
        match webvuln_failpoint::check("serve.handler", parsed.label()) {
            Ok(0) => {}
            Ok(ns) => std::thread::sleep(Duration::from_nanos(ns)),
            Err(_) => {
                return ApiError::Unavailable("injected handler fault".to_string()).to_response()
            }
        }
        let key = req.target.split('?').next().unwrap_or("").to_string();
        if parsed.cacheable() {
            if let Some(cached) = self.cache.get(&key) {
                self.metrics.cache_hits.inc();
                return (*cached).clone();
            }
            self.metrics.cache_misses.inc();
        }
        let requests_total = self.metrics.requests.get();
        match self.service.evaluate(&parsed, requests_total) {
            Ok(body) => {
                let response = Response::new(Status::OK, "application/json", body);
                if parsed.cacheable() {
                    self.cache.insert(key, Arc::new(response.clone()));
                }
                response
            }
            Err(e) => e.to_response(),
        }
    }
}

impl Handler for ApiHandler {
    fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        self.metrics.requests.inc();
        let label = ApiHandler::label_of(req);
        let response = match catch_unwind(AssertUnwindSafe(|| self.dispatch(req))) {
            Ok(response) => response,
            Err(_) => {
                // Quarantine: the panic is contained to this request.
                self.metrics.handler_panics.inc();
                ApiError::Unavailable("handler panicked".to_string()).to_response()
            }
        };
        self.metrics.count_response(response.status);
        self.metrics
            .latency_for(label)
            .record_duration(start.elapsed());
        response
    }
}

/// Bounded multi-producer multi-consumer queue of accepted connections.
struct ConnQueue {
    inner: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, conn: TcpStream) {
        let mut state = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if !state.closed {
            state.conns.push_back(conn);
            self.ready.notify_one();
        }
    }

    /// Blocks until a connection is available or the queue is closed and
    /// drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        self.ready.notify_all();
    }
}

/// The running API server: a non-blocking accept loop feeding a bounded
/// queue drained by `webvuln-exec` workers. [`shutdown`](ApiServer::shutdown)
/// drains gracefully: stop accepting, finish in-flight exchanges, join
/// every thread.
pub struct ApiServer {
    addr: SocketAddr,
    draining: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool_thread: Option<JoinHandle<()>>,
}

impl ApiServer {
    /// Binds `127.0.0.1:{config.port}` and starts serving `handler`.
    pub fn start(handler: Arc<ApiHandler>, config: ServeConfig) -> Result<ApiServer, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", config.port)).map_err(NetError::Io)?;
        let addr = listener.local_addr().map_err(NetError::Io)?;
        listener.set_nonblocking(true).map_err(NetError::Io)?;

        let draining = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new());
        // Queued + in-flight connections, for the admission limit.
        let active = Arc::new(AtomicUsize::new(0));
        let metrics = handler.metrics().clone();

        let accept_thread = {
            let flag = Arc::clone(&draining);
            let queue = Arc::clone(&queue);
            let active = Arc::clone(&active);
            let metrics = metrics.clone();
            let max = config.max_connections.max(1);
            std::thread::spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((conn, peer)) => {
                            metrics.connections.inc();
                            // A panic armed at `serve.accept` must only
                            // cost this one connection, never the loop.
                            let key = peer.to_string();
                            let fault = catch_unwind(AssertUnwindSafe(|| {
                                webvuln_failpoint::check("serve.accept", &key)
                            }));
                            if !matches!(fault, Ok(Ok(_))) {
                                metrics.accept_faults.inc();
                                continue; // drop the connection
                            }
                            if active.load(Ordering::Relaxed) >= max {
                                metrics.rejected.inc();
                                reject_over_capacity(conn);
                                continue;
                            }
                            conn.set_nodelay(true).ok();
                            conn.set_read_timeout(Some(config.idle_timeout)).ok();
                            active.fetch_add(1, Ordering::Relaxed);
                            metrics.inflight.set(active.load(Ordering::Relaxed) as i64);
                            queue.push(conn);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                queue.close();
            })
        };

        let pool_thread = {
            let flag = Arc::clone(&draining);
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let threads = config.threads.max(1);
            std::thread::spawn(move || {
                // One long-lived worker loop per pool slot; `chunk_size(1)`
                // makes every loop its own stealable task, so each idle
                // executor worker steals exactly one and all `threads`
                // loops run concurrently.
                let executor = Executor::new(threads).chunk_size(1);
                let slots: Vec<usize> = (0..threads).collect();
                executor.map(&slots, |_slot| {
                    while let Some(conn) = queue.pop() {
                        // Contain per-connection panics (e.g. an armed
                        // `serve.mid_response` panic): the worker loop and
                        // the pool survive.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            serve_api_connection(conn, handler.as_ref(), &flag)
                        }));
                        active.fetch_sub(1, Ordering::Relaxed);
                        metrics.inflight.set(active.load(Ordering::Relaxed) as i64);
                    }
                });
            })
        };

        Ok(ApiServer {
            addr,
            draining,
            accept_thread: Some(accept_thread),
            pool_thread: Some(pool_thread),
        })
    }

    /// Convenience: open `service` behind a fresh [`ApiHandler`].
    pub fn serve(
        service: Arc<QueryService>,
        config: ServeConfig,
        registry: &Registry,
    ) -> Result<ApiServer, NetError> {
        let handler = Arc::new(ApiHandler::new(service, &config, registry));
        ApiServer::start(handler, config)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, let in-flight exchanges finish,
    /// join the accept and pool threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.draining.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.pool_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers `503` on a connection the admission limit refused.
fn reject_over_capacity(mut conn: TcpStream) {
    let response = ApiError::Unavailable("connection limit reached".to_string()).to_response();
    let mut wire = Vec::new();
    encode_response(&response, false, &mut wire);
    let _ = conn.write_all(&wire);
    let _ = conn.flush();
}

/// Serves one connection with keep-alive until close/EOF/error/drain.
/// Returns the number of requests answered.
fn serve_api_connection(conn: TcpStream, handler: &ApiHandler, draining: &AtomicBool) -> usize {
    let metrics = handler.metrics();
    let Ok(read_half) = conn.try_clone() else {
        return 0;
    };
    let mut writer = conn;
    let mut reader = MessageReader::new(read_half);
    let mut served = 0usize;
    loop {
        if draining.load(Ordering::Relaxed) {
            return served;
        }
        let request = match reader.read_request() {
            Ok(r) => r,
            // EOF and idle timeout end keep-alive gracefully.
            Err(NetError::UnexpectedEof) | Err(NetError::Timeout) | Err(NetError::Io(_)) => {
                return served;
            }
            Err(_) => {
                // Parse failure: still a request for accounting purposes.
                metrics.requests.inc();
                let response =
                    ApiError::BadRequest("unparseable request".to_string()).to_response();
                metrics.count_response(response.status);
                let mut wire = Vec::new();
                encode_response(&response, false, &mut wire);
                let _ = writer.write_all(&wire);
                return served;
            }
        };
        let label = ApiHandler::label_of(&request);
        let close = request.headers.wants_close() || draining.load(Ordering::Relaxed);
        let mut response = handler.handle(&request);
        if close {
            response.headers.set("Connection", "close");
        }
        let mut wire = Vec::new();
        encode_response(&response, false, &mut wire);
        // Injected mid-response kill: half the bytes, then the socket
        // dies. The client sees a torn body; the counters still account
        // for the request (it was classified above). A `Delay` stalls
        // between encode and write — a slow server under test.
        match webvuln_failpoint::check("serve.mid_response", label) {
            Ok(0) => {}
            Ok(ns) => std::thread::sleep(Duration::from_nanos(ns)),
            Err(_) => {
                metrics.killed.inc();
                let _ = writer.write_all(&wire[..wire.len() / 2]);
                let _ = writer.flush();
                return served;
            }
        }
        if writer
            .write_all(&wire)
            .and_then(|_| writer.flush())
            .is_err()
        {
            return served;
        }
        served += 1;
        if close || response.headers.wants_close() {
            return served;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;

    #[test]
    fn metrics_fall_back_to_error_label() {
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        metrics.latency_for("healthz").record(10);
        metrics.latency_for("no-such-endpoint").record(20);
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("serve.latency_ns.healthz").unwrap().count, 1);
        assert_eq!(snap.histogram("serve.latency_ns.error").unwrap().count, 1);
    }

    #[test]
    fn response_classes_split_2xx_4xx_5xx() {
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        metrics.count_response(Status::OK);
        metrics.count_response(Status::NOT_FOUND);
        metrics.count_response(Status(405));
        metrics.count_response(Status::SERVICE_UNAVAILABLE);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.responses_2xx_total"), Some(1));
        assert_eq!(snap.counter("serve.responses_4xx_total"), Some(2));
        assert_eq!(snap.counter("serve.responses_5xx_total"), Some(1));
    }

    #[test]
    fn queue_delivers_then_drains() {
        let queue = Arc::new(ConnQueue::new());
        let q = Arc::clone(&queue);
        let t = std::thread::spawn(move || {
            let mut got = 0;
            while q.pop().is_some() {
                got += 1;
            }
            got
        });
        // Real sockets: a bound listener hands us connectable streams.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        for _ in 0..3 {
            let client = TcpStream::connect(addr).expect("connect");
            let (server_side, _) = listener.accept().expect("accept");
            drop(client);
            queue.push(server_side);
        }
        queue.close();
        assert_eq!(t.join().expect("join"), 3);
    }

    #[test]
    fn route_labels_cover_every_endpoint() {
        for (target, label) in [
            ("/healthz", "healthz"),
            ("/domain/x/history", "domain_history"),
            ("/library/jquery/prevalence", "library_prevalence"),
            ("/week/0/landscape", "week_landscape"),
            ("/cve/CVE-2020-11022/exposure", "cve_exposure"),
            ("/alerts", "alerts"),
        ] {
            let r = route(&Request::get("t", target)).expect("route");
            assert_eq!(r.label(), label);
        }
    }
}
