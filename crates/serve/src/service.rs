//! The query evaluator: opens one snapshot store read-only and answers
//! every API route from it.
//!
//! Two data paths back the endpoints, mirroring how the batch pipeline
//! consumes a store:
//!
//! * `/domain/{d}/history` uses the store reader's O(1) per-week offset
//!   index directly — no full decode, exactly the random-access path
//!   `webvuln store` exposes offline.
//! * The table endpoints (`/library`, `/week`, `/cve`) answer from the
//!   same mergeable accumulators the batch reports use
//!   ([`webvuln_analysis::accum`]), folded once over the store at open
//!   — never materializing a [`webvuln_analysis::Dataset`] — so a
//!   served body is *definitionally* consistent with the batch tables
//!   for the same store, and startup memory stays flat in the number
//!   of weeks.

use crate::json::{Arr, Obj};
use crate::router::{ApiError, Route};
use std::path::{Path, PathBuf};
use webvuln_analysis::accum::{fold_study, LandscapeAccum};
use webvuln_analysis::landscape::{LibraryRow, UsageTrend};
use webvuln_analysis::vuln::CveImpact;
use webvuln_cvedb::{Basis, LibraryId, VulnDb};
use webvuln_store::{AnyReader, ShardHealth, StoreError};
use webvuln_version::Version;

/// A read-only query service over one snapshot store — single-file or
/// sharded, healthy or degraded.
pub struct QueryService {
    reader: AnyReader,
    db: VulnDb,
    rows: Vec<LibraryRow>,
    trends: Vec<UsageTrend>,
    landscape: LandscapeAccum,
    impacts: Vec<CveImpact>,
    watch_root: Option<PathBuf>,
}

impl QueryService {
    /// Opens `path` and folds the store through the study accumulators,
    /// precomputing the hot analysis tables without materializing a
    /// dataset.
    ///
    /// A sharded store opens in degraded mode when shards are missing or
    /// quarantined: the healthy shards keep serving, the analysis tables
    /// are computed over them alone, `/healthz` reports the outage per
    /// shard, and queries routed to a dead shard answer 503 with the
    /// shard detail rather than failing the whole server at startup.
    pub fn open(path: &Path) -> Result<QueryService, StoreError> {
        let reader = AnyReader::open_degraded(path)?;
        let db = VulnDb::builtin();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let accum = fold_study(&reader, &db, threads)?;
        let rows = accum.landscape.table1(&db);
        let trends = accum.landscape.trends();
        let impacts = accum.exposure.cve_impacts(&db);
        Ok(QueryService {
            reader,
            db,
            rows,
            trends,
            landscape: accum.landscape,
            impacts,
            watch_root: None,
        })
    }

    /// Attaches a watch daemon root: `/alerts` serves its outbox and
    /// `/healthz` reports its ingestion state. The service only *reads*
    /// the watch files (through the daemon-safe snapshot loader), so it
    /// can run alongside a live daemon.
    pub fn with_watch_root(mut self, root: impl Into<PathBuf>) -> QueryService {
        self.watch_root = Some(root.into());
        self
    }

    /// The attached watch root, if any.
    pub fn watch_root(&self) -> Option<&Path> {
        self.watch_root.as_deref()
    }

    /// The underlying store reader (tests inspect it).
    pub fn reader(&self) -> &AnyReader {
        &self.reader
    }

    /// The precomputed Table 1 rows the table endpoints answer from.
    pub fn table1_rows(&self) -> &[LibraryRow] {
        &self.rows
    }

    /// Evaluates a route to a JSON body. `requests_total` feeds the
    /// healthz report (the service itself holds no mutable state).
    pub fn evaluate(&self, route: &Route, requests_total: u64) -> Result<String, ApiError> {
        match route {
            Route::Healthz => Ok(self.healthz(requests_total)),
            Route::DomainHistory(d) => self.domain_history(d),
            Route::LibraryPrevalence(lib) => self.library_prevalence(lib),
            Route::WeekLandscape(w) => self.week_landscape(*w),
            Route::CveExposure(id) => self.cve_exposure(id),
            Route::Alerts => self.alerts(),
        }
    }

    /// `GET /healthz`. A degraded store reports `"status":"degraded"`
    /// and lists every shard with its health, so an operator (or the
    /// smoke test) can see exactly which shard is out and why.
    pub fn healthz(&self, requests_total: u64) -> String {
        let genesis = self.reader.genesis();
        let degraded = self.reader.is_degraded();
        let mut shards = Arr::new();
        for (index, health) in self.reader.shard_health().iter().enumerate() {
            let shard = Obj::new().u64("shard", index as u64);
            let shard = match health {
                ShardHealth::Healthy => shard.str("status", "healthy"),
                ShardHealth::Unavailable { detail } => {
                    shard.str("status", "unavailable").str("detail", detail)
                }
            };
            shards.push_raw(&shard.finish());
        }
        let obj = Obj::new()
            .str("status", if degraded { "degraded" } else { "ok" })
            .u64("weeks_committed", self.reader.weeks_committed() as u64)
            .u64("weeks_total", genesis.weeks_total as u64)
            .u64("domains", genesis.ranks.len() as u64)
            .bool("finalized", self.reader.is_finalized())
            .u64(
                "filtered_out",
                self.reader.filtered_out().map_or(0, |f| f.len()) as u64,
            )
            .bool("degraded", degraded)
            .u64("shard_count", self.reader.shard_count() as u64)
            .raw("shards", &shards.finish());
        let obj = match &self.watch_root {
            None => obj,
            Some(root) => {
                let state = webvuln_watch::load_watch_state(root);
                obj.raw(
                    "watch",
                    &Obj::new()
                        .bool("store_present", state.store_present)
                        .u64("weeks_committed", state.weeks_committed)
                        .u64("epoch", state.epoch)
                        .u64("shards", state.shards as u64)
                        .bool("degraded", state.degraded)
                        .u64("alerts_enqueued", state.alerts_enqueued)
                        .u64("alerts_pending", state.alerts_pending)
                        .u64("alerts_delivered", state.alerts_delivered)
                        .u64("deltas_applied", state.deltas_applied)
                        .finish(),
                )
            }
        };
        obj.u64("requests_total", requests_total).finish()
    }

    /// `GET /alerts`: the watch daemon's outbox, read through the
    /// daemon-safe snapshot loader (no healing writes). 404 when the
    /// server was started without a watch root.
    pub fn alerts(&self) -> Result<String, ApiError> {
        let root = self.watch_root.as_deref().ok_or_else(|| {
            ApiError::NotFound("live alerting not enabled (no watch root)".to_string())
        })?;
        let cfg = webvuln_watch::WatchConfig::new(root);
        let snapshot =
            webvuln_watch::OutboxSnapshot::load(&cfg.outbox_wal(), &cfg.alert_log())
                .map_err(|e| ApiError::Unavailable(format!("outbox read failed: {e}")))?;
        let mut alerts = Arr::new();
        for alert in &snapshot.alerts {
            alerts.push_raw(
                &Obj::new()
                    .str("id", &format!("{:016x}", alert.id))
                    .str("cve", &alert.cve_id)
                    .str("library", &alert.library)
                    .str("domain", &alert.domain)
                    .u64("first_week", alert.first_week as u64)
                    .u64("last_week", alert.last_week as u64)
                    .u64("weeks_exposed", alert.weeks_exposed as u64)
                    .u64("coverage_scanned", alert.coverage.shards_scanned as u64)
                    .u64("coverage_total", alert.coverage.shards_total as u64)
                    .bool("full_coverage", alert.coverage.is_full())
                    .bool("delivered", snapshot.delivered.contains(&alert.id))
                    .bool("acked", snapshot.acked.contains(&alert.id))
                    .finish(),
            );
        }
        Ok(Obj::new()
            .u64("total", snapshot.alerts.len() as u64)
            .u64("pending", snapshot.pending().len() as u64)
            .u64("delivered", snapshot.delivered.len() as u64)
            .raw("alerts", &alerts.finish())
            .finish())
    }

    /// `GET /domain/{d}/history`: every committed week's record for one
    /// domain, via the store's O(1) random-access index.
    pub fn domain_history(&self, domain: &str) -> Result<String, ApiError> {
        // Route through the shard map first: a domain living on a dead
        // shard is a 503 with the shard detail (the data exists but
        // cannot be served right now), not a 404 — the merged genesis
        // below only knows the healthy shards' domains.
        if let (shard, Some(detail)) = self.reader.shard_for(domain) {
            return Err(ApiError::Unavailable(format!(
                "shard {shard} unavailable: {detail}"
            )));
        }
        let genesis = self.reader.genesis();
        let rank = genesis
            .ranks
            .iter()
            .find(|(d, _)| d == domain)
            .map(|&(_, r)| r)
            .ok_or_else(|| ApiError::NotFound(format!("unknown domain '{domain}'")))?;
        let mut weeks = Arr::new();
        for week in 0..self.reader.weeks_committed() {
            let record = match self.reader.get(domain, week) {
                Ok(r) => r,
                Err(StoreError::UnknownDomain(_)) => continue,
                Err(e) => return Err(ApiError::Unavailable(format!("store read failed: {e}"))),
            };
            let date_days = self
                .reader
                .week_date_days(week)
                .map_err(|e| ApiError::Unavailable(format!("store read failed: {e}")))?;
            let mut detections = Arr::new();
            if let Some(page) = &record.page {
                for det in &page.detections {
                    detections.push_raw(&self.detection_json(det));
                }
            }
            weeks.push_raw(
                &Obj::new()
                    .u64("week", week as u64)
                    .i64("date_days", date_days)
                    .raw(
                        "status",
                        &record.status.map_or("null".to_string(), |s| s.to_string()),
                    )
                    .u64("body_len", record.body_len)
                    .bool("page", record.page.is_some())
                    .raw("detections", &detections.finish())
                    .finish(),
            );
        }
        Ok(Obj::new()
            .str("domain", domain)
            .u64("rank", rank)
            .bool(
                "filtered_out",
                self.reader
                    .filtered_out()
                    .is_some_and(|f| f.iter().any(|d| d == domain)),
            )
            .raw("weeks", &weeks.finish())
            .finish())
    }

    fn detection_json(&self, det: &webvuln_store::DetectionRecord) -> String {
        // How many disclosed reports claim this exact version — the
        // per-record flavor of the §6.2 prevalence computation.
        let vulns_claimed = LibraryId::from_slug(&det.library)
            .zip(det.version.as_ref().and_then(|v| Version::parse(v).ok()))
            .map_or(0, |(lib, ver)| {
                self.db.vuln_count(lib, &ver, Basis::CveClaimed)
            });
        Obj::new()
            .str("library", &det.library)
            .opt_str("version", det.version.as_deref())
            .opt_str("external_host", det.external_host.as_deref())
            .bool("integrity", det.integrity)
            .u64("vulns_claimed", vulns_claimed as u64)
            .finish()
    }

    /// `GET /library/{lib}/prevalence`: the library's Table 1 row plus
    /// its Figure 3 weekly usage-share series.
    pub fn library_prevalence(&self, slug: &str) -> Result<String, ApiError> {
        let library = LibraryId::from_slug(slug)
            .ok_or_else(|| ApiError::NotFound(format!("unknown library '{slug}'")))?;
        let row = self
            .rows
            .iter()
            .find(|r| r.library == library)
            .ok_or_else(|| ApiError::Unavailable("table1 row missing".to_string()))?;
        let trend = self
            .trends
            .iter()
            .find(|t| t.library == library)
            .ok_or_else(|| ApiError::Unavailable("usage trend missing".to_string()))?;
        let mut points = Arr::new();
        for &(date, share) in &trend.points {
            points.push_raw(
                &Obj::new()
                    .i64("date_days", date.day_number() as i64)
                    .f64("share", share)
                    .finish(),
            );
        }
        Ok(Obj::new()
            .str("library", slug)
            .str("name", library.name())
            .f64("average_sites", row.average_sites)
            .f64("usage_share", row.usage_share)
            .f64("internal_share", row.internal_share)
            .f64("external_share", row.external_share)
            .f64("cdn_share", row.cdn_share)
            .u64("versions_found", row.versions_found as u64)
            .u64("versions_total", row.versions_total as u64)
            .u64("vuln_reports", row.vuln_reports as u64)
            .f64("first_share", trend.first())
            .f64("last_share", trend.last())
            .raw("points", &points.finish())
            .finish())
    }

    /// `GET /week/{w}/landscape`: per-library users and share for one
    /// week, consistent with the Figure 3 series at that index.
    pub fn week_landscape(&self, week: usize) -> Result<String, ApiError> {
        let snapshot = self.landscape.week(week).ok_or_else(|| {
            ApiError::NotFound(format!(
                "week {week} out of range (store holds {})",
                self.landscape.week_count()
            ))
        })?;
        let total = snapshot.collected.max(1);
        let mut libraries = Arr::new();
        for (index, &library) in LibraryId::ALL.iter().enumerate() {
            let users = snapshot.users[index];
            libraries.push_raw(
                &Obj::new()
                    .str("library", library.slug())
                    .u64("users", users as u64)
                    .f64("share", users as f64 / total as f64)
                    .finish(),
            );
        }
        Ok(Obj::new()
            .u64("week", week as u64)
            .i64("date_days", snapshot.date.day_number() as i64)
            .u64("collected", snapshot.collected as u64)
            .u64(
                "fresh",
                (snapshot.collected - snapshot.carried_forward) as u64,
            )
            .u64("carried_forward", snapshot.carried_forward as u64)
            .raw("libraries", &libraries.finish())
            .finish())
    }

    /// `GET /cve/{id}/exposure`: the report's Table 2 / Figure 5 series
    /// plus its exposure window under True Vulnerable Versions.
    pub fn cve_exposure(&self, id: &str) -> Result<String, ApiError> {
        let impact: &CveImpact = self
            .impacts
            .iter()
            .find(|impact| impact.id == id)
            .ok_or_else(|| ApiError::NotFound(format!("unknown report '{id}'")))?;
        let library = self
            .db
            .record(id)
            .map(|r| r.library.slug())
            .unwrap_or("unknown");
        let mut points = Arr::new();
        let mut first_exposed: Option<i64> = None;
        let mut last_exposed: Option<i64> = None;
        let mut weeks_exposed = 0u64;
        for (&(date, claimed), &(_, truly)) in
            impact.claimed_sites.iter().zip(impact.true_sites.iter())
        {
            let days = date.day_number() as i64;
            if truly > 0 {
                weeks_exposed += 1;
                first_exposed.get_or_insert(days);
                last_exposed = Some(days);
            }
            points.push_raw(
                &Obj::new()
                    .i64("date_days", days)
                    .u64("claimed", claimed as u64)
                    .u64("true", truly as u64)
                    .finish(),
            );
        }
        let obj = Obj::new()
            .str("id", id)
            .str("library", library)
            .f64("claimed_average", impact.claimed_average)
            .f64("true_average", impact.true_average)
            .f64("claimed_share_of_users", impact.claimed_share_of_users)
            .u64("weeks_exposed", weeks_exposed);
        let obj = match first_exposed {
            Some(d) => obj.i64("first_exposed_days", d),
            None => obj.raw("first_exposed_days", "null"),
        };
        let obj = match last_exposed {
            Some(d) => obj.i64("last_exposed_days", d),
            None => obj.raw("last_exposed_days", "null"),
        };
        Ok(obj.raw("points", &points.finish()).finish())
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("store", &self.reader.path())
            .field("weeks", &self.reader.weeks_committed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use std::sync::Arc;
    use webvuln_analysis::dataset::Collector;
    use webvuln_net::Request;
    use webvuln_webgen::{Ecosystem, EcosystemConfig, Timeline};

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "webvuln-serve-svc-{tag}-{}.wvstore",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn service(tag: &str) -> QueryService {
        let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
            seed: 77,
            domain_count: 40,
            timeline: Timeline::truncated(3),
        }));
        let path = temp_store(tag);
        Collector::new()
            .threads(2)
            .checkpoint(&path)
            .run(&eco)
            .expect("collect");
        QueryService::open(&path).expect("open")
    }

    #[test]
    fn degraded_sharded_store_serves_healthy_shards() {
        let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
            seed: 77,
            domain_count: 40,
            timeline: Timeline::truncated(3),
        }));
        let single = temp_store("degraded-single");
        Collector::new()
            .threads(2)
            .checkpoint(&single)
            .run(&eco)
            .expect("collect single");
        let baseline = QueryService::open(&single).expect("open single");
        let dir = std::env::temp_dir().join(format!(
            "webvuln-serve-svc-degraded-{}.wvshards",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Collector::new()
            .threads(2)
            .shards(3)
            .checkpoint(&dir)
            .run(&eco)
            .expect("collect sharded");
        std::fs::remove_file(dir.join(webvuln_store::shard_file_name(1))).expect("delete shard");

        // The server still comes up, reports the outage, and serves
        // every healthy shard byte-for-byte like the unsharded store.
        let svc = QueryService::open(&dir).expect("degraded open");
        let body = svc.healthz(0);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"degraded\":true"), "{body}");
        assert!(body.contains("\"shard\":1"), "{body}");
        assert!(body.contains("\"status\":\"unavailable\""), "{body}");
        let (mut healthy, mut dead) = (0, 0);
        for (domain, _) in &baseline.reader().genesis().ranks {
            let (shard, detail) = svc.reader().shard_for(domain);
            if shard == 1 {
                assert!(detail.is_some());
                match svc.domain_history(domain) {
                    Err(ApiError::Unavailable(detail)) => {
                        assert!(detail.contains("shard 1"), "{detail}")
                    }
                    other => panic!("dead shard must answer 503, got {other:?}"),
                }
                dead += 1;
            } else {
                assert_eq!(
                    svc.domain_history(domain).expect("healthy history"),
                    baseline.domain_history(domain).expect("baseline history"),
                    "healthy-shard answer diverged for {domain}"
                );
                healthy += 1;
            }
        }
        assert!(healthy > 0, "no healthy-shard domains exercised");
        assert!(dead > 0, "no dead-shard domains exercised");
        let _ = std::fs::remove_file(&single);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthz_reports_store_shape() {
        let svc = service("healthz");
        let body = svc.healthz(3);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"weeks_committed\":3"), "{body}");
        assert!(body.contains("\"domains\":40"), "{body}");
        assert!(body.contains("\"requests_total\":3"), "{body}");
    }

    #[test]
    fn every_route_evaluates_against_a_real_store() {
        let svc = service("routes");
        let domain = svc.reader().genesis().ranks[0].0.clone();
        for target in [
            "/healthz".to_string(),
            format!("/domain/{domain}/history"),
            "/library/jquery/prevalence".to_string(),
            "/week/1/landscape".to_string(),
        ] {
            let r = route(&Request::get("t", &target)).expect("route");
            let body = svc.evaluate(&r, 0).expect("evaluate");
            assert!(body.starts_with('{'), "{target} → {body}");
        }
    }

    #[test]
    fn unknown_entities_are_not_found() {
        let svc = service("missing");
        assert!(matches!(
            svc.domain_history("no-such.example"),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(
            svc.library_prevalence("left-pad"),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(
            svc.week_landscape(999),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(
            svc.cve_exposure("CVE-1999-0000"),
            Err(ApiError::NotFound(_))
        ));
    }

    #[test]
    fn alerts_endpoint_serves_the_watch_outbox() {
        use webvuln_watch::{Alert, Coverage, Outbox, WatchConfig};
        let root = std::env::temp_dir().join(format!(
            "webvuln-serve-alerts-{}.wvwatch",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        let cfg = WatchConfig::new(&root);
        {
            let (mut outbox, _) = Outbox::open(&cfg.outbox_wal(), &cfg.alert_log()).expect("open");
            let coverage = Coverage {
                shards_scanned: 1,
                shards_total: 2,
            };
            let a = Alert::new("CVE-2099-0001", "jquery", "site-1.example", 0, 2, 3, coverage);
            let b = Alert::new("CVE-2099-0001", "jquery", "site-2.example", 1, 2, 2, coverage);
            outbox.enqueue(&a).expect("enqueue");
            outbox.deliver_pending().expect("deliver");
            outbox.enqueue(&b).expect("enqueue");
        }

        // Without a watch root the endpoint is a 404.
        let plain = service("alerts-plain");
        assert!(matches!(plain.alerts(), Err(ApiError::NotFound(_))));

        let svc = service("alerts").with_watch_root(&root);
        let body = svc.alerts().expect("alerts");
        assert!(body.contains("\"total\":2"), "{body}");
        assert!(body.contains("\"pending\":1"), "{body}");
        assert!(body.contains("\"delivered\":1"), "{body}");
        assert!(body.contains("\"cve\":\"CVE-2099-0001\""), "{body}");
        assert!(body.contains("\"domain\":\"site-1.example\""), "{body}");
        assert!(body.contains("\"coverage_scanned\":1"), "{body}");
        assert!(body.contains("\"full_coverage\":false"), "{body}");
        // healthz gains the watch section.
        let health = svc.healthz(0);
        assert!(health.contains("\"watch\":{"), "{health}");
        assert!(health.contains("\"alerts_pending\":1"), "{health}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn history_matches_random_access_reads() {
        let svc = service("history");
        let domain = svc.reader().genesis().ranks[2].0.clone();
        let body = svc.domain_history(&domain).expect("history");
        for week in 0..svc.reader().weeks_committed() {
            let record = svc.reader().get(&domain, week).expect("get");
            assert!(
                body.contains(&format!("\"body_len\":{}", record.body_len)),
                "week {week} body_len missing from {body}"
            );
        }
    }
}
