//! [`AnyReader`]: one read handle over both store layouts.
//!
//! A store path is either a single `.wvstore` file or a sharded-store
//! directory (a `MANIFEST` plus `shard-*.wvstore` files). Consumers —
//! the analysis loader, the serve layer, the CLI — should not care
//! which; `AnyReader` auto-detects the layout and presents the
//! single-file [`StoreReader`] API, with shard-health introspection
//! that degrades gracefully to "one healthy shard" for single files.

use crate::error::StoreError;
use crate::format::Genesis;
use crate::reader::StoreReader;
use crate::record::{DomainRecord, WeekData};
use crate::sharded::{ShardHealth, ShardedStoreReader};
use std::path::Path;

/// Read-only access to a snapshot store of either layout.
pub enum AnyReader {
    /// A single-file store.
    Single(StoreReader),
    /// A sharded store directory.
    Sharded(ShardedStoreReader),
}

impl AnyReader {
    /// Opens `path` strictly: a directory opens as a sharded store and
    /// every shard must be healthy; a file opens as a single-file store.
    pub fn open(path: &Path) -> Result<AnyReader, StoreError> {
        if path.is_dir() {
            Ok(AnyReader::Sharded(ShardedStoreReader::open(path)?))
        } else {
            Ok(AnyReader::Single(StoreReader::open(path)?))
        }
    }

    /// Opens `path` tolerantly: a sharded store opens as long as at
    /// least one shard is healthy, with the rest reported via
    /// [`AnyReader::shard_health`]. Single-file stores behave exactly
    /// like [`AnyReader::open`].
    pub fn open_degraded(path: &Path) -> Result<AnyReader, StoreError> {
        if path.is_dir() {
            Ok(AnyReader::Sharded(ShardedStoreReader::open_degraded(path)?))
        } else {
            Ok(AnyReader::Single(StoreReader::open(path)?))
        }
    }

    /// The study metadata (merged over healthy shards when sharded).
    pub fn genesis(&self) -> &Genesis {
        match self {
            AnyReader::Single(r) => r.genesis(),
            AnyReader::Sharded(r) => r.genesis(),
        }
    }

    /// Number of committed weeks.
    pub fn weeks_committed(&self) -> usize {
        match self {
            AnyReader::Single(r) => r.weeks_committed(),
            AnyReader::Sharded(r) => r.weeks_committed(),
        }
    }

    /// The stored filter verdict; `Some` only when finalized.
    pub fn filtered_out(&self) -> Option<&[String]> {
        match self {
            AnyReader::Single(r) => r.filtered_out(),
            AnyReader::Sharded(r) => r.filtered_out(),
        }
    }

    /// Whether the store was finalized.
    pub fn is_finalized(&self) -> bool {
        match self {
            AnyReader::Single(r) => r.is_finalized(),
            AnyReader::Sharded(r) => r.is_finalized(),
        }
    }

    /// Torn tail bytes dropped when the store was opened.
    pub fn torn_bytes(&self) -> u64 {
        match self {
            AnyReader::Single(r) => r.torn_bytes(),
            AnyReader::Sharded(r) => r.torn_bytes(),
        }
    }

    /// Total validated data bytes.
    pub fn data_bytes(&self) -> u64 {
        match self {
            AnyReader::Single(r) => r.data_bytes(),
            AnyReader::Sharded(r) => r.data_bytes(),
        }
    }

    /// The store path (file or directory).
    pub fn path(&self) -> &Path {
        match self {
            AnyReader::Single(r) => r.path(),
            AnyReader::Sharded(r) => r.path(),
        }
    }

    /// The snapshot date (days since epoch) of committed week `week`.
    pub fn week_date_days(&self, week: usize) -> Result<i64, StoreError> {
        match self {
            AnyReader::Single(r) => r.week_date_days(week),
            AnyReader::Sharded(r) => r.week_date_days(week),
        }
    }

    /// Fully decodes week `week` (merged and host-sorted when sharded).
    pub fn week(&self, week: usize) -> Result<WeekData, StoreError> {
        match self {
            AnyReader::Single(r) => r.week(week),
            AnyReader::Sharded(r) => r.week(week),
        }
    }

    /// Iterates every committed week in order.
    pub fn iter_weeks(&self) -> impl Iterator<Item = Result<WeekData, StoreError>> + '_ {
        (0..self.weeks_committed()).map(move |week| self.week(week))
    }

    /// Streams every committed week, one decoded [`WeekData`] at a time
    /// — the entry point for the streaming analysis pass.
    pub fn stream(&self) -> crate::stream::WeekStream<'_> {
        crate::stream::WeekStream::over(self)
    }

    /// O(1) random access to one `(domain, week)` record.
    pub fn get(&self, domain: &str, week: usize) -> Result<DomainRecord, StoreError> {
        match self {
            AnyReader::Single(r) => r.get(domain, week),
            AnyReader::Sharded(r) => r.get(domain, week),
        }
    }

    /// Exhaustively verifies the store; returns per-week record counts.
    pub fn verify(&self) -> Result<Vec<usize>, StoreError> {
        match self {
            AnyReader::Single(r) => r.verify(),
            AnyReader::Sharded(r) => r.verify(),
        }
    }

    /// Delta statistics: `(backref_records, total_records)`.
    pub fn delta_stats(&self) -> Result<(usize, usize), StoreError> {
        match self {
            AnyReader::Single(r) => r.delta_stats(),
            AnyReader::Sharded(r) => r.delta_stats(),
        }
    }

    /// Number of shards (1 for a single-file store).
    pub fn shard_count(&self) -> usize {
        match self {
            AnyReader::Single(_) => 1,
            AnyReader::Sharded(r) => r.shard_count(),
        }
    }

    /// Whether any shard is unavailable (never for single files).
    pub fn is_degraded(&self) -> bool {
        match self {
            AnyReader::Single(_) => false,
            AnyReader::Sharded(r) => r.is_degraded(),
        }
    }

    /// Per-shard health, indexed by shard.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        match self {
            AnyReader::Single(_) => vec![ShardHealth::Healthy],
            AnyReader::Sharded(r) => r.shard_health().to_vec(),
        }
    }

    /// The shard `domain` routes to and, if that shard is unavailable,
    /// the reason. Single-file stores always answer `(0, None)`.
    pub fn shard_for(&self, domain: &str) -> (usize, Option<String>) {
        match self {
            AnyReader::Single(_) => (0, None),
            AnyReader::Sharded(r) => {
                let (shard, health) = r.shard_for(domain);
                match health {
                    ShardHealth::Healthy => (shard, None),
                    ShardHealth::Unavailable { detail } => (shard, Some(detail.clone())),
                }
            }
        }
    }
}
