//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Every segment in a store file carries a CRC over its envelope and
//! payload; a mismatch marks the torn tail left by an interrupted commit.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An incremental CRC-32 state.
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh state.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `data` into the state.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.0 = (self.0 >> 8) ^ TABLE[((self.0 ^ u32::from(byte)) & 0xff) as usize];
        }
    }

    /// The final checksum.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(data);
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"weekly snapshot payload bytes";
        let mut state = Crc32::new();
        for chunk in data.chunks(7) {
            state.update(chunk);
        }
        assert_eq!(state.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"segment payload".to_vec();
        let before = crc32(&data);
        data[4] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }
}
