//! Typed store errors.

use std::fmt;
use std::io;

/// Everything that can go wrong opening, reading, or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure, annotated with the file path.
    Io {
        /// The store file involved.
        path: String,
        /// The operating-system error.
        source: io::Error,
    },
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// Structurally invalid bytes at `offset`.
    Corrupt {
        /// Absolute file offset of the bad bytes.
        offset: u64,
        /// What failed to parse.
        detail: String,
    },
    /// The file has no valid genesis segment (timeline + ranks).
    MissingGenesis,
    /// A week was committed out of sequence.
    WeekOutOfOrder {
        /// The week the store expected next.
        expected: usize,
        /// The week the caller tried to commit.
        got: usize,
    },
    /// The store already carries a finalize segment; nothing may follow it.
    AlreadyFinalized,
    /// The store's genesis disagrees with the caller's study configuration.
    Mismatch(String),
    /// Random access asked for a domain the store has never seen.
    UnknownDomain(String),
    /// Random access asked for a week beyond the committed range.
    UnknownWeek(usize),
    /// A shard of a sharded store cannot be served (missing, corrupt,
    /// quarantined, or inconsistent with the manifest). Query routing
    /// uses this to tell "shard down" (retryable, 503) apart from
    /// "domain unknown" (404).
    ShardUnavailable {
        /// The shard index.
        shard: usize,
        /// Why the shard cannot be served.
        detail: String,
    },
    /// A shard holds fewer weeks than the group manifest requires — a
    /// mixed-epoch store no crash can produce (the manifest only
    /// commits after every shard synced), so resume refuses it.
    ShardBehind {
        /// The shard index.
        shard: usize,
        /// Weeks the shard actually holds.
        shard_weeks: usize,
        /// Weeks the manifest requires.
        manifest_weeks: usize,
    },
    /// A deterministic fail-point injected this failure (chaos testing;
    /// never produced by real I/O).
    Injected {
        /// The fail-point site that fired.
        site: String,
    },
    /// Supervised execution quarantined more tasks than the
    /// `--max-task-failures` budget allows; the run gave up rather than
    /// degrade further.
    FailureBudgetExceeded {
        /// Tasks quarantined so far.
        failures: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`].
    pub fn corrupt(offset: u64, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }

    /// Wraps an I/O error with the path it happened on.
    pub fn io(path: &std::path::Path, source: io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "store I/O error on {path}: {source}"),
            StoreError::BadMagic => write!(f, "not a webvuln store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "corrupt store data at byte {offset}: {detail}")
            }
            StoreError::MissingGenesis => write!(f, "store has no valid genesis segment"),
            StoreError::WeekOutOfOrder { expected, got } => {
                write!(f, "week {got} committed out of order (expected {expected})")
            }
            StoreError::AlreadyFinalized => write!(f, "store is finalized; no further commits"),
            StoreError::Mismatch(detail) => write!(f, "store/config mismatch: {detail}"),
            StoreError::UnknownDomain(domain) => write!(f, "domain {domain:?} not in store"),
            StoreError::UnknownWeek(week) => write!(f, "week {week} not committed"),
            StoreError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            StoreError::ShardBehind {
                shard,
                shard_weeks,
                manifest_weeks,
            } => {
                write!(
                    f,
                    "shard {shard} is behind the manifest: {shard_weeks} weeks on disk, \
                     manifest requires {manifest_weeks} (mixed-epoch store; refusing to open)"
                )
            }
            StoreError::Injected { site } => {
                write!(f, "injected failure at fail-point '{site}'")
            }
            StoreError::FailureBudgetExceeded { failures, budget } => {
                write!(
                    f,
                    "task-failure budget exceeded: {failures} tasks quarantined (budget {budget})"
                )
            }
        }
    }
}

impl From<webvuln_failpoint::Injected> for StoreError {
    fn from(injected: webvuln_failpoint::Injected) -> StoreError {
        StoreError::Injected {
            site: injected.site.to_string(),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let err = StoreError::corrupt(1234, "bad week header");
        assert_eq!(
            err.to_string(),
            "corrupt store data at byte 1234: bad week header"
        );
        let err = StoreError::io(
            std::path::Path::new("/tmp/x.store"),
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert!(err.to_string().contains("/tmp/x.store"), "{err}");
        let err = StoreError::WeekOutOfOrder {
            expected: 5,
            got: 9,
        };
        assert!(err.to_string().contains("expected 5"), "{err}");
    }
}
