//! On-disk format: file header, segment envelopes, footer index, and the
//! recovery scan.
//!
//! ```text
//! file    := header segment* footer?
//! header  := "WVSTORE\0" u32le version u32le reserved        (16 bytes)
//! segment := u8 kind  u32le payload_len  payload  u32le crc
//!            crc = CRC-32 over (kind ‖ payload_len ‖ payload)
//! footer  := segment(kind=0xFF)  u32le envelope_len  "WVSFOOT\0"
//! ```
//!
//! Real segments come in three kinds, always in this file order:
//! one *genesis* (timeline + rank list), then one *week* segment per
//! committed snapshot (strictly sequential), then at most one *finalize*
//! segment (the inaccessibility-filter verdict). The footer is a
//! rewritten-in-place index of every segment, locatable from the file
//! tail; when a crash tears it (or any trailing segment), the scan
//! recovers the longest valid prefix and reports the torn byte count.
//!
//! Every payload begins with a string block — the strings first
//! interned by that segment — so symbols are assigned in file order and
//! any sequential reader reconstructs the writer's exact table.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::intern::Interner;
use crate::record::{decode_body, encode_body, DomainRecord, WeekData};
use crate::varint::{write_i64, write_u64, Cursor};
use std::collections::HashMap;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// File magic: identifies a webvuln snapshot store.
pub const MAGIC: [u8; 8] = *b"WVSTORE\0";
/// Trailing footer magic, read backwards from the file tail.
pub const FOOTER_MAGIC: [u8; 8] = *b"WVSFOOT\0";
/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Byte length of the fixed file header.
pub const HEADER_LEN: u64 = 16;
/// Byte length of a segment envelope around its payload (kind + len + crc).
pub const ENVELOPE_OVERHEAD: u64 = 9;

/// Segment kind tags.
pub mod kind {
    /// Timeline + rank list; always the first segment.
    pub const GENESIS: u8 = 0;
    /// One committed weekly snapshot.
    pub const WEEK: u8 = 1;
    /// The inaccessibility-filter verdict; closes the store.
    pub const FINALIZE: u8 = 2;
    /// The rewritten tail index (not a data segment).
    pub const FOOTER: u8 = 0xFF;
}

/// The 16-byte file header.
pub fn encode_header() -> [u8; 16] {
    let mut header = [0u8; 16];
    header[..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header
}

/// Wraps `payload` in a segment envelope.
pub fn encode_segment(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("segment payload under 4 GiB");
    let mut out = Vec::with_capacity(payload.len() + ENVELOPE_OVERHEAD as usize);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out
}

/// Index entry for one data segment, as carried by the footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment kind ([`kind`]).
    pub kind: u8,
    /// Week index for week segments, 0 otherwise.
    pub week: usize,
    /// Absolute file offset of the envelope.
    pub offset: u64,
    /// Total envelope length in bytes.
    pub env_len: u64,
}

/// Encodes the footer (envelope + tail trailer) for `segments`.
pub fn encode_footer(segments: &[SegmentMeta]) -> Vec<u8> {
    let mut body = Vec::new();
    write_u64(&mut body, segments.len() as u64);
    for meta in segments {
        body.push(meta.kind);
        write_u64(&mut body, meta.week as u64);
        write_u64(&mut body, meta.offset);
        write_u64(&mut body, meta.env_len);
    }
    let mut out = encode_segment(kind::FOOTER, &body);
    let env_len = u32::try_from(out.len()).expect("footer under 4 GiB");
    out.extend_from_slice(&env_len.to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// One validated segment as found on disk.
pub struct RawSegment {
    /// Segment kind.
    pub kind: u8,
    /// Absolute file offset of the envelope.
    pub offset: u64,
    /// Total envelope length.
    pub env_len: u64,
    /// The payload bytes (CRC already verified).
    pub payload: Vec<u8>,
}

impl RawSegment {
    /// Absolute file offset of the first payload byte.
    pub fn payload_offset(&self) -> u64 {
        self.offset + 5
    }

    /// This segment's footer index entry. `week` must be supplied by the
    /// structural layer (the envelope does not repeat it).
    pub fn meta(&self, week: usize) -> SegmentMeta {
        SegmentMeta {
            kind: self.kind,
            week,
            offset: self.offset,
            env_len: self.env_len,
        }
    }
}

/// Result of walking a store file front to back.
pub struct Scan {
    /// Every structurally valid data segment, in file order.
    pub segments: Vec<RawSegment>,
    /// Offset one past the last valid data segment — where the next
    /// commit must write, and where recovery truncates.
    pub data_end: u64,
    /// Bytes of torn/corrupt tail dropped by the scan (including any
    /// stale footer).
    pub torn_bytes: u64,
    /// Whether a valid footer was found after the last data segment.
    pub had_footer: bool,
}

/// Walks the file, validating envelopes, CRCs, and segment ordering
/// (genesis first, weeks sequential, finalize last). Stops at the first
/// invalid byte: everything before it is the recovered store, everything
/// after is the torn tail.
pub fn scan(file: &mut File, path: &Path) -> Result<Scan, StoreError> {
    let file_len = file.metadata().map_err(|e| StoreError::io(path, e))?.len();
    if file_len < HEADER_LEN {
        return Err(StoreError::BadMagic);
    }
    let mut bytes = Vec::with_capacity(file_len as usize);
    file.read_to_end(&mut bytes)
        .map_err(|e| StoreError::io(path, e))?;
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }

    let mut segments = Vec::new();
    let mut pos = HEADER_LEN;
    let mut data_end = HEADER_LEN;
    let mut valid_end = HEADER_LEN;
    let mut had_footer = false;
    let mut next_week = 0usize;
    let mut finalized = false;

    while pos < file_len {
        let Some(segment) = read_envelope(&bytes, pos) else {
            break;
        };
        let structurally_ok = match segment.kind {
            kind::GENESIS => segments.is_empty(),
            kind::WEEK => {
                // Weeks are strictly sequential and precede finalize.
                let ok = !segments.is_empty() && !finalized;
                if ok {
                    next_week += 1;
                }
                ok
            }
            kind::FINALIZE => {
                let ok = !segments.is_empty() && !finalized;
                finalized = ok;
                ok
            }
            kind::FOOTER => {
                // A footer is index data, not a segment; note it and keep
                // scanning (a well-formed file ends here).
                pos += segment.env_len;
                // The 12-byte trailer (length + magic) must follow.
                let trailer_ok = bytes.len() as u64 >= pos + 12
                    && bytes[pos as usize + 4..pos as usize + 12] == FOOTER_MAGIC;
                if !trailer_ok {
                    break;
                }
                pos += 12;
                had_footer = true;
                valid_end = pos;
                continue;
            }
            _ => false,
        };
        if !structurally_ok {
            break;
        }
        pos += segment.env_len;
        data_end = pos;
        valid_end = pos;
        had_footer = false; // data after a footer supersedes it
        segments.push(segment);
    }

    if segments.is_empty() {
        return Err(StoreError::MissingGenesis);
    }
    let _ = next_week;
    Ok(Scan {
        segments,
        data_end,
        torn_bytes: file_len - valid_end,
        had_footer,
    })
}

/// Parses one envelope at `offset`, verifying bounds and CRC.
fn read_envelope(bytes: &[u8], offset: u64) -> Option<RawSegment> {
    let start = usize::try_from(offset).ok()?;
    let head = bytes.get(start..start + 5)?;
    let seg_kind = head[0];
    let payload_len = u32::from_le_bytes(head[1..5].try_into().ok()?) as usize;
    let payload_start = start + 5;
    let payload_end = payload_start.checked_add(payload_len)?;
    let crc_end = payload_end.checked_add(4)?;
    if crc_end > bytes.len() {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[payload_end..crc_end].try_into().ok()?);
    if crc32(&bytes[start..payload_end]) != stored {
        return None;
    }
    Some(RawSegment {
        kind: seg_kind,
        offset,
        env_len: (crc_end - start) as u64,
        payload: bytes[payload_start..payload_end].to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Store-wide study metadata, written once at creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genesis {
    /// Date of week 0's snapshot, days since the Unix epoch.
    pub start_days: i64,
    /// Total weeks the study will commit.
    pub weeks_total: usize,
    /// `(domain, rank)` pairs, rank 1-based.
    pub ranks: Vec<(String, u64)>,
}

fn encode_string_block(table: &Interner, out: &mut Vec<u8>) {
    let new = table.new_strings();
    write_u64(out, new.len() as u64);
    for s in new {
        write_u64(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
}

/// Decodes a segment's string block into `table`, extending the symbol
/// space in writer order.
pub fn decode_string_block(
    cur: &mut Cursor<'_>,
    table: &mut Interner,
    base_offset: u64,
) -> Result<(), StoreError> {
    let bad =
        |cur: &Cursor<'_>, what: &str| StoreError::corrupt(base_offset + cur.pos() as u64, what);
    let count = cur.len().ok_or_else(|| bad(cur, "string block count"))?;
    for _ in 0..count {
        let len = cur.len().ok_or_else(|| bad(cur, "string length"))?;
        let raw = cur.bytes(len).ok_or_else(|| bad(cur, "string bytes"))?;
        let s = std::str::from_utf8(raw).map_err(|_| bad(cur, "string not UTF-8"))?;
        table.push_decoded(s);
    }
    Ok(())
}

/// Encodes the genesis payload, interning every domain name.
pub fn encode_genesis(genesis: &Genesis, table: &mut Interner) -> Vec<u8> {
    table.set_mark();
    let mut body = Vec::new();
    write_i64(&mut body, genesis.start_days);
    write_u64(&mut body, genesis.weeks_total as u64);
    write_u64(&mut body, genesis.ranks.len() as u64);
    for (host, rank) in &genesis.ranks {
        write_u64(&mut body, u64::from(table.intern(host)));
        write_u64(&mut body, *rank);
    }
    let mut payload = Vec::new();
    encode_string_block(table, &mut payload);
    payload.extend_from_slice(&body);
    payload
}

/// Decodes a genesis payload (string block included).
pub fn decode_genesis(
    payload: &[u8],
    table: &mut Interner,
    base_offset: u64,
) -> Result<Genesis, StoreError> {
    let mut cur = Cursor::new(payload);
    decode_string_block(&mut cur, table, base_offset)?;
    let bad =
        |cur: &Cursor<'_>, what: &str| StoreError::corrupt(base_offset + cur.pos() as u64, what);
    let start_days = cur.i64().ok_or_else(|| bad(&cur, "genesis start date"))?;
    let weeks_total = cur.len().ok_or_else(|| bad(&cur, "genesis week count"))?;
    let count = cur.len().ok_or_else(|| bad(&cur, "genesis rank count"))?;
    let mut ranks = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let sym_raw = cur.u64().ok_or_else(|| bad(&cur, "rank host symbol"))?;
        let sym = u32::try_from(sym_raw).map_err(|_| bad(&cur, "rank host symbol"))?;
        let host = table
            .resolve(sym)
            .ok_or_else(|| bad(&cur, "rank host symbol unknown"))?
            .to_string();
        let rank = cur.u64().ok_or_else(|| bad(&cur, "rank value"))?;
        ranks.push((host, rank));
    }
    Ok(Genesis {
        start_days,
        weeks_total,
        ranks,
    })
}

/// 128-bit FNV-1a over a record body. Deterministic across processes
/// (unlike `DefaultHasher`), and wide enough that a collision between
/// *different* bodies of equal length is not a practical concern; the
/// delta encoder treats equal `(len, hash)` as equal bytes.
pub fn body_hash(body: &[u8]) -> u128 {
    const BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut hash = BASIS;
    for &byte in body {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Per-host delta state carried from the previous committed week: where
/// the canonical (full) body lives and a fingerprint of its bytes. The
/// bytes themselves are *not* retained — at paper scale the previous
/// week's bodies are the single largest resident allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrevBody {
    /// Absolute file offset of the canonical body.
    pub offset: u64,
    /// Exact encoded length of the body.
    pub len: usize,
    /// [`body_hash`] of the body bytes.
    pub hash: u128,
}

impl PrevBody {
    /// Fingerprints `body` as it sits at `offset`.
    pub fn of(offset: u64, body: &[u8]) -> PrevBody {
        PrevBody {
            offset,
            len: body.len(),
            hash: body_hash(body),
        }
    }
}

/// Per-host state the delta encoder carries from the previous committed
/// week.
pub type PrevWeek = HashMap<u32, PrevBody>;

/// Everything [`encode_week`] produces.
pub struct EncodedWeek {
    /// The segment payload, ready for [`encode_segment`].
    pub payload: Vec<u8>,
    /// Delta state to carry into the next week's encode.
    pub next_prev: PrevWeek,
    /// Records whose body was identical to the previous week.
    pub delta_hits: usize,
    /// Total bytes of all bodies before delta substitution.
    pub raw_bytes: u64,
    /// Bytes of the records region actually written.
    pub encoded_bytes: u64,
}

/// One record as staged by [`WeekEncoder::append`].
struct EncEntry {
    host_sym: u32,
    /// Canonical body offset when delta-hit against the previous week.
    backref: Option<u64>,
    /// Offset of the full body *within the staged region* (count varint
    /// excluded); meaningless for back-references.
    rel: u64,
    /// Encoded body length.
    len: usize,
    /// [`body_hash`] of the body.
    hash: u128,
}

/// Incremental week encoder: records arrive in host-sorted batches via
/// [`WeekEncoder::append`] and are encoded (and delta-compressed) as they
/// arrive, so a streaming collector never holds a whole week's
/// [`WeekData`] — only the growing encoded region.
///
/// `begin → append* → finish` produces bytes identical to a one-shot
/// [`encode_week`] over the concatenated batches.
pub struct WeekEncoder {
    week: usize,
    date_days: i64,
    /// The records region *without* its leading count varint (the count
    /// is unknown until `finish`).
    body: Vec<u8>,
    entries: Vec<EncEntry>,
    delta_hits: usize,
    raw_bytes: u64,
}

impl WeekEncoder {
    /// Starts a week segment. Marks the interner so the string block
    /// captures exactly the strings this segment introduces.
    pub fn begin(week: usize, date_days: i64, table: &mut Interner) -> WeekEncoder {
        table.set_mark();
        WeekEncoder {
            week,
            date_days,
            body: Vec::new(),
            entries: Vec::new(),
            delta_hits: 0,
            raw_bytes: 0,
        }
    }

    /// The week index this encoder is staging.
    pub fn week(&self) -> usize {
        self.week
    }

    /// The snapshot date, days since the Unix epoch.
    pub fn date_days(&self) -> i64 {
        self.date_days
    }

    /// Records staged so far.
    pub fn records_staged(&self) -> usize {
        self.entries.len()
    }

    /// Encodes a batch of records onto the staged region. Batches must
    /// arrive in host-sorted order across the whole week.
    pub fn append(&mut self, records: &[DomainRecord], table: &mut Interner, prev: &PrevWeek) {
        for record in records {
            let host_sym = table.intern(&record.host);
            let mut encoded = Vec::new();
            encode_body(record, table, &mut encoded);
            self.raw_bytes += encoded.len() as u64;
            let hash = body_hash(&encoded);
            let backref = match prev.get(&host_sym) {
                Some(p) if p.len == encoded.len() && p.hash == hash => Some(p.offset),
                _ => None,
            };
            write_u64(&mut self.body, u64::from(host_sym));
            let mut rel = 0u64;
            match backref {
                Some(target) => {
                    self.delta_hits += 1;
                    self.body.push(1);
                    write_u64(&mut self.body, target);
                }
                None => {
                    self.body.push(0);
                    rel = self.body.len() as u64;
                    self.body.extend_from_slice(&encoded);
                }
            }
            self.entries.push(EncEntry {
                host_sym,
                backref,
                rel,
                len: encoded.len(),
                hash,
            });
        }
    }

    /// Seals the segment: prepends the record count, resolves absolute
    /// body offsets against `seg_offset`, and assembles the payload.
    pub fn finish(self, table: &Interner, seg_offset: u64) -> EncodedWeek {
        let mut records = Vec::with_capacity(self.body.len() + 9);
        write_u64(&mut records, self.entries.len() as u64);
        let count_len = records.len() as u64;
        records.extend_from_slice(&self.body);

        let mut prefix = Vec::new();
        encode_string_block(table, &mut prefix);
        write_u64(&mut prefix, self.week as u64);
        write_i64(&mut prefix, self.date_days);
        write_u64(&mut prefix, records.len() as u64);
        let records_abs = seg_offset + 5 + prefix.len() as u64;

        let mut index = Vec::with_capacity(self.entries.len());
        let mut next_prev = PrevWeek::with_capacity(self.entries.len());
        for entry in &self.entries {
            let body_abs = match entry.backref {
                Some(target) => target,
                None => records_abs + count_len + entry.rel,
            };
            index.push((entry.host_sym, body_abs));
            next_prev.insert(
                entry.host_sym,
                PrevBody {
                    offset: body_abs,
                    len: entry.len,
                    hash: entry.hash,
                },
            );
        }

        let mut payload = prefix;
        let encoded_bytes = records.len() as u64;
        payload.extend_from_slice(&records);
        write_u64(&mut payload, index.len() as u64);
        for (host_sym, body_abs) in &index {
            write_u64(&mut payload, u64::from(*host_sym));
            write_u64(&mut payload, *body_abs);
        }

        EncodedWeek {
            payload,
            next_prev,
            delta_hits: self.delta_hits,
            raw_bytes: self.raw_bytes,
            encoded_bytes,
        }
    }
}

/// Encodes a week segment at file offset `seg_offset`, delta-compressing
/// against `prev` (the previous committed week's body map).
///
/// Records must be sorted by host name; the canonical encoding (and the
/// byte-identical comparison underlying delta hits) depends on it.
pub fn encode_week(
    week: &WeekData,
    table: &mut Interner,
    prev: &PrevWeek,
    seg_offset: u64,
) -> EncodedWeek {
    let mut enc = WeekEncoder::begin(week.week, week.date_days, table);
    enc.append(&week.records, table, prev);
    enc.finish(table, seg_offset)
}

/// The cheaply-decoded part of a week segment: header fields and the
/// random-access index, with record bodies left untouched.
pub struct WeekPrefix {
    /// Week index.
    pub week: usize,
    /// Snapshot date, days since epoch.
    pub date_days: i64,
    /// Offset of the records region *within the payload*.
    pub records_pos: usize,
    /// Byte length of the records region.
    pub records_len: usize,
    /// `(host_sym, absolute body offset)` pairs in record order.
    pub index: Vec<(u32, u64)>,
}

/// Decodes a week payload's string block, header, and index — skipping
/// the records region entirely.
pub fn decode_week_prefix(
    payload: &[u8],
    table: &mut Interner,
    base_offset: u64,
) -> Result<WeekPrefix, StoreError> {
    let mut cur = Cursor::new(payload);
    decode_string_block(&mut cur, table, base_offset)?;
    let bad =
        |cur: &Cursor<'_>, what: &str| StoreError::corrupt(base_offset + cur.pos() as u64, what);
    let week = cur.len().ok_or_else(|| bad(&cur, "week index"))?;
    let date_days = cur.i64().ok_or_else(|| bad(&cur, "week date"))?;
    let records_len = cur.len().ok_or_else(|| bad(&cur, "records length"))?;
    let records_pos = cur.pos();
    cur.skip(records_len)
        .ok_or_else(|| bad(&cur, "records region"))?;
    let count = cur.len().ok_or_else(|| bad(&cur, "index count"))?;
    let mut index = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let sym_raw = cur.u64().ok_or_else(|| bad(&cur, "index host symbol"))?;
        let sym = u32::try_from(sym_raw).map_err(|_| bad(&cur, "index host symbol"))?;
        let offset = cur.u64().ok_or_else(|| bad(&cur, "index body offset"))?;
        index.push((sym, offset));
    }
    if !cur.is_empty() {
        return Err(bad(&cur, "trailing bytes after index"));
    }
    Ok(WeekPrefix {
        week,
        date_days,
        records_pos,
        records_len,
        index,
    })
}

/// One record of a fully decoded week.
pub struct DecodedRecord {
    /// The host's symbol in the file-global table.
    pub host_sym: u32,
    /// Absolute file offset of the canonical (full) body — for
    /// back-referenced records this points into an earlier week.
    pub body_offset: u64,
    /// Whether this record was stored as a back-reference.
    pub backref: bool,
    /// The decoded record.
    pub record: DomainRecord,
    /// The canonical body bytes (delta state for the next week).
    pub body: Vec<u8>,
}

/// Finds the scanned segment containing absolute payload offset `abs` and
/// returns it with the offset translated into its payload.
pub fn locate(segments: &[RawSegment], abs: u64) -> Option<(&RawSegment, usize)> {
    let idx = segments.partition_point(|seg| seg.payload_offset() <= abs);
    let seg = segments.get(idx.checked_sub(1)?)?;
    let rel = usize::try_from(abs.checked_sub(seg.payload_offset())?).ok()?;
    if rel >= seg.payload.len() {
        return None;
    }
    Some((seg, rel))
}

/// Decodes the record body stored at absolute file offset `abs`, returning
/// the record and its exact encoded bytes.
pub fn decode_body_at(
    segments: &[RawSegment],
    table: &Interner,
    host: &str,
    abs: u64,
) -> Result<(DomainRecord, Vec<u8>), StoreError> {
    let (seg, rel) = locate(segments, abs)
        .ok_or_else(|| StoreError::corrupt(abs, "body offset outside any segment"))?;
    let mut cur = Cursor::new(&seg.payload[rel..]);
    let record = decode_body(&mut cur, table, host, abs)?;
    Ok((record, seg.payload[rel..rel + cur.pos()].to_vec()))
}

/// Fully decodes the records region of the week segment at
/// `segments[seg_index]`, resolving back-references through earlier
/// segments, and cross-checks the region against the on-disk index.
pub fn decode_week_full(
    segments: &[RawSegment],
    seg_index: usize,
    prefix: &WeekPrefix,
    table: &Interner,
) -> Result<Vec<DecodedRecord>, StoreError> {
    let seg = &segments[seg_index];
    let region = &seg.payload[prefix.records_pos..prefix.records_pos + prefix.records_len];
    let region_abs = seg.payload_offset() + prefix.records_pos as u64;
    let mut cur = Cursor::new(region);
    let bad =
        |cur: &Cursor<'_>, what: &str| StoreError::corrupt(region_abs + cur.pos() as u64, what);
    let count = cur.len().ok_or_else(|| bad(&cur, "record count"))?;
    if count != prefix.index.len() {
        return Err(bad(&cur, "record count disagrees with index"));
    }
    let mut records = Vec::with_capacity(count.min(region.len()));
    for &(index_sym, index_off) in &prefix.index {
        let sym_raw = cur.u64().ok_or_else(|| bad(&cur, "record host symbol"))?;
        let host_sym = u32::try_from(sym_raw).map_err(|_| bad(&cur, "record host symbol"))?;
        if host_sym != index_sym {
            return Err(bad(&cur, "record host disagrees with index"));
        }
        let host = table
            .resolve(host_sym)
            .ok_or_else(|| bad(&cur, "record host symbol unknown"))?
            .to_string();
        let decoded = match cur.u8().ok_or_else(|| bad(&cur, "record tag"))? {
            0 => {
                let body_abs = region_abs + cur.pos() as u64;
                if body_abs != index_off {
                    return Err(bad(&cur, "body offset disagrees with index"));
                }
                let body_start = cur.pos();
                let record = decode_body(&mut cur, table, &host, body_abs)?;
                DecodedRecord {
                    host_sym,
                    body_offset: body_abs,
                    backref: false,
                    record,
                    body: region[body_start..cur.pos()].to_vec(),
                }
            }
            1 => {
                let target = cur.u64().ok_or_else(|| bad(&cur, "backref offset"))?;
                if target != index_off {
                    return Err(bad(&cur, "backref offset disagrees with index"));
                }
                if target >= region_abs {
                    return Err(bad(&cur, "backref points forward"));
                }
                let (record, body) = decode_body_at(segments, table, &host, target)?;
                DecodedRecord {
                    host_sym,
                    body_offset: target,
                    backref: true,
                    record,
                    body,
                }
            }
            _ => return Err(bad(&cur, "record tag")),
        };
        records.push(decoded);
    }
    if !cur.is_empty() {
        return Err(bad(&cur, "trailing bytes after records"));
    }
    Ok(records)
}

/// Encodes the finalize payload: the filtered-out domain list.
pub fn encode_finalize(filtered_out: &[String], table: &mut Interner) -> Vec<u8> {
    table.set_mark();
    let mut body = Vec::new();
    write_u64(&mut body, filtered_out.len() as u64);
    for host in filtered_out {
        write_u64(&mut body, u64::from(table.intern(host)));
    }
    let mut payload = Vec::new();
    encode_string_block(table, &mut payload);
    payload.extend_from_slice(&body);
    payload
}

/// Decodes a finalize payload.
pub fn decode_finalize(
    payload: &[u8],
    table: &mut Interner,
    base_offset: u64,
) -> Result<Vec<String>, StoreError> {
    let mut cur = Cursor::new(payload);
    decode_string_block(&mut cur, table, base_offset)?;
    let bad =
        |cur: &Cursor<'_>, what: &str| StoreError::corrupt(base_offset + cur.pos() as u64, what);
    let count = cur.len().ok_or_else(|| bad(&cur, "filtered-out count"))?;
    let mut hosts = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let sym_raw = cur.u64().ok_or_else(|| bad(&cur, "filtered-out symbol"))?;
        let sym = u32::try_from(sym_raw).map_err(|_| bad(&cur, "filtered-out symbol"))?;
        hosts.push(
            table
                .resolve(sym)
                .ok_or_else(|| bad(&cur, "filtered-out symbol unknown"))?
                .to_string(),
        );
    }
    Ok(hosts)
}
