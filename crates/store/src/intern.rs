//! The store-wide string-interning table.
//!
//! Hosts, library slugs, version strings, and URLs repeat across nearly
//! every weekly snapshot; records therefore reference strings by a `u32`
//! symbol. The table is append-only and file-global: each segment's
//! payload begins with the strings first seen in that segment, and symbols
//! are assigned in file order, so a reader that walks the segments in
//! sequence reconstructs the exact table the writer had.

use std::collections::HashMap;

/// An append-only string table with reverse lookup.
#[derive(Default)]
pub struct Interner {
    strings: Vec<String>,
    by_value: HashMap<String, u32>,
    mark: usize,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the symbol for `value`, inserting it if unseen.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&sym) = self.by_value.get(value) {
            return sym;
        }
        let sym = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(value.to_string());
        self.by_value.insert(value.to_string(), sym);
        sym
    }

    /// The string behind `sym`, if allocated.
    pub fn resolve(&self, sym: u32) -> Option<&str> {
        self.strings.get(sym as usize).map(String::as_str)
    }

    /// The symbol of an already-interned string.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.by_value.get(value).copied()
    }

    /// Remembers the current table size; [`Interner::new_strings`] returns
    /// everything interned after this point. Called at segment start.
    pub fn set_mark(&mut self) {
        self.mark = self.strings.len();
    }

    /// The strings interned since the last [`Interner::set_mark`] — the
    /// segment's string block.
    pub fn new_strings(&self) -> &[String] {
        &self.strings[self.mark..]
    }

    /// Appends a string decoded from a segment's string block, preserving
    /// writer symbol order.
    pub fn push_decoded(&mut self, value: &str) {
        self.intern(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_stable_and_dense() {
        let mut table = Interner::new();
        let a = table.intern("alpha.example");
        let b = table.intern("beta.example");
        assert_eq!(table.intern("alpha.example"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(table.resolve(a), Some("alpha.example"));
        assert_eq!(table.resolve(7), None);
        assert_eq!(table.lookup("beta.example"), Some(b));
        assert_eq!(table.lookup("gamma.example"), None);
    }

    #[test]
    fn mark_isolates_per_segment_strings() {
        let mut table = Interner::new();
        table.intern("week0.example");
        table.set_mark();
        assert!(table.new_strings().is_empty());
        table.intern("week0.example"); // already known: not "new"
        table.intern("week1.example");
        assert_eq!(table.new_strings(), ["week1.example".to_string()]);
        table.set_mark();
        assert!(table.new_strings().is_empty());
    }
}
