//! # webvuln-store
//!
//! The on-disk persistence layer of the `webvuln` pipeline: an
//! append-only, segment-per-week binary snapshot store with
//! checkpoint/resume. The paper's longitudinal dataset spans 201 weekly
//! snapshots of 72k domains; re-crawling from scratch after every
//! interruption is untenable, and the naive JSON dump re-serializes 200
//! near-identical copies of every stable page. This store fixes both:
//!
//! * **Checkpointing** — [`StoreWriter::commit_week`] appends one
//!   CRC-protected segment per crawled week and re-syncs a footer index,
//!   so a killed study loses at most the week in flight.
//! * **Resume** — [`StoreWriter::resume`] walks the file, truncates any
//!   torn tail (a mid-commit crash), and hands back every intact week so
//!   the crawl continues from the first missing one.
//! * **Delta encoding** — record bodies are canonical byte strings;
//!   a domain whose fingerprint and fetch outcome did not change since
//!   the previous week is stored as a back-reference to that week's
//!   bytes. Across a realistic timeline most records are hits, and the
//!   file ends up a fraction of the JSON dump's size.
//! * **String interning** — hosts, library slugs, version strings, and
//!   URLs are written once, file-wide, and referenced by varint symbol.
//! * **Random access** — a footer index plus per-week offset tables give
//!   [`StoreReader::get`] O(1) access to one `(domain, week)` record
//!   without decoding anything else.
//!
//! * **Sharding** — a store can also be a *directory*: N shard files
//!   keyed by domain hash ([`shard_of`]), written in parallel by one
//!   [`StoreWriter`] per shard on the `webvuln-exec` pool, with a
//!   manifest whose atomic rename is the group's single commit point.
//!   [`ShardedStoreWriter`] keeps the same crash guarantee as the
//!   single file — a kill yields epoch E or E+1 across *all* shards,
//!   never a mix — and [`AnyReader`] serves either layout, degraded
//!   reads included. [`scrub`] walks every CRC and can quarantine,
//!   rebuild, and roll back corrupt shards.
//!
//! The crate has no third-party dependencies (std plus the workspace's
//! own fail-point/trace/exec crates) and knows nothing about the
//! analysis layer's types: it stores a plain-string record model
//! ([`DomainRecord`], [`PageRecord`]) that `webvuln-analysis` maps its
//! snapshots into and out of.
//!
//! ```
//! use webvuln_store::{Genesis, StoreReader, StoreWriter, WeekData};
//!
//! # let dir = std::env::temp_dir().join(format!("wvs-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let path = dir.join("demo.wvstore");
//! let genesis = Genesis {
//!     start_days: 17_600,
//!     weeks_total: 1,
//!     ranks: vec![("site.example".into(), 1)],
//! };
//! let mut writer = StoreWriter::create(&path, genesis).unwrap();
//! writer
//!     .commit_week(&WeekData { week: 0, date_days: 17_600, records: vec![] })
//!     .unwrap();
//! let reader = StoreReader::open(&path).unwrap();
//! assert_eq!(reader.weeks_committed(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod crc32;
mod error;
mod format;
mod intern;
mod manifest;
mod reader;
mod record;
mod scrub;
mod sharded;
mod stream;
mod varint;
mod writer;

pub use any::AnyReader;
pub use error::StoreError;
pub use format::{
    body_hash, encode_week, Genesis, PrevBody, PrevWeek, WeekEncoder, FORMAT_VERSION, HEADER_LEN,
    MAGIC,
};
pub use manifest::{Manifest, MANIFEST_FILE, MANIFEST_LEN, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use reader::StoreReader;
pub use record::{
    DetectionRecord, DomainRecord, FlashRecord, PageRecord, ScriptRecord, WeekData, WordPressRecord,
};
pub use scrub::{scrub, ScrubOutcome, ScrubReport, ShardScrub, ShardStatus};
pub use sharded::{
    shard_file_name, shard_of, shard_path, split_week, ShardHealth, ShardedResumed,
    ShardedStoreReader, ShardedStoreWriter, QUARANTINE_SUFFIX,
};
pub use stream::WeekStream;
pub use writer::{CommitInfo, Resumed, StoreWriter, WriterStats, FAILPOINTS};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testkit;
    use std::path::PathBuf;

    /// A scratch file that cleans up after itself.
    struct TempStore {
        path: PathBuf,
    }

    impl TempStore {
        fn new(tag: &str) -> TempStore {
            let path = std::env::temp_dir()
                .join(format!("wvstore-test-{}-{tag}.wvstore", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempStore { path }
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    fn genesis(domains: usize, weeks: usize) -> Genesis {
        Genesis {
            start_days: 17_600,
            weeks_total: weeks,
            ranks: (0..domains)
                .map(|i| (format!("site{i:03}.example"), (i + 1) as u64))
                .collect(),
        }
    }

    fn write_weeks(path: &std::path::Path, weeks: usize, domains: usize) -> StoreWriter {
        let mut writer = StoreWriter::create(path, genesis(domains, weeks)).expect("create");
        for w in 0..weeks {
            writer
                .commit_week(&testkit::week(w, domains))
                .expect("commit");
        }
        writer
    }

    #[test]
    fn write_then_read_round_trips() {
        let tmp = TempStore::new("roundtrip");
        write_weeks(&tmp.path, 4, 9);
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.weeks_committed(), 4);
        assert_eq!(reader.genesis(), &genesis(9, 4));
        assert!(!reader.is_finalized());
        assert_eq!(reader.torn_bytes(), 0);
        assert!(reader.had_footer());
        for w in 0..4 {
            assert_eq!(reader.week(w).expect("week"), testkit::week(w, 9));
        }
        assert_eq!(reader.verify().expect("verify"), vec![9; 4]);
    }

    #[test]
    fn random_access_matches_sequential() {
        let tmp = TempStore::new("random");
        write_weeks(&tmp.path, 3, 8);
        let reader = StoreReader::open(&tmp.path).expect("open");
        for w in 0..3 {
            let full = reader.week(w).expect("week");
            for record in &full.records {
                assert_eq!(&reader.get(&record.host, w).expect("get"), record);
            }
        }
        assert!(matches!(
            reader.get("nope.example", 0),
            Err(StoreError::UnknownDomain(_))
        ));
        assert!(matches!(
            reader.get("site000.example", 7),
            Err(StoreError::UnknownWeek(7))
        ));
    }

    #[test]
    fn unchanged_records_become_backrefs() {
        let tmp = TempStore::new("delta");
        let mut writer = StoreWriter::create(&tmp.path, genesis(10, 3)).expect("create");
        // Identical weeks: everything after week 0 should delta-hit.
        let mut week0 = testkit::week(0, 10);
        let info0 = writer.commit_week(&week0).expect("w0");
        assert_eq!(info0.delta_hits, 0);
        week0.week = 1;
        let info1 = writer.commit_week(&week0).expect("w1");
        assert_eq!(info1.delta_hits, 10);
        assert!(info1.segment_bytes < info0.segment_bytes / 4);
        // One domain changes: exactly one miss.
        week0.week = 2;
        week0.records[4].body_len += 1;
        let info2 = writer.commit_week(&week0).expect("w2");
        assert_eq!(info2.delta_hits, 9);

        let reader = StoreReader::open(&tmp.path).expect("open");
        let (hits, total) = reader.delta_stats().expect("stats");
        assert_eq!((hits, total), (19, 30));
        // Backref chains resolve through multiple weeks.
        let w2 = reader.week(2).expect("week 2");
        assert_eq!(
            w2.records[4].body_len,
            testkit::week(0, 10).records[4].body_len + 1
        );
    }

    #[test]
    fn finalize_closes_the_store() {
        let tmp = TempStore::new("finalize");
        let mut writer = write_weeks(&tmp.path, 2, 6);
        writer
            .finalize(&["site003.example".to_string()])
            .expect("finalize");
        assert!(matches!(
            writer.commit_week(&testkit::week(2, 6)),
            Err(StoreError::AlreadyFinalized)
        ));
        assert!(matches!(
            writer.finalize(&[]),
            Err(StoreError::AlreadyFinalized)
        ));
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(
            reader.filtered_out(),
            Some(&["site003.example".to_string()][..])
        );
    }

    #[test]
    fn out_of_order_commits_are_rejected() {
        let tmp = TempStore::new("order");
        let mut writer = StoreWriter::create(&tmp.path, genesis(4, 4)).expect("create");
        let err = writer.commit_week(&testkit::week(2, 4)).expect_err("skip");
        assert!(matches!(
            err,
            StoreError::WeekOutOfOrder {
                expected: 0,
                got: 2
            }
        ));
    }

    #[test]
    fn resume_continues_the_sequence() {
        let tmp = TempStore::new("resume");
        {
            write_weeks(&tmp.path, 2, 7);
        }
        let resumed = StoreWriter::resume(&tmp.path).expect("resume");
        assert_eq!(resumed.writer.weeks_committed(), 2);
        assert_eq!(resumed.weeks.len(), 2);
        assert_eq!(resumed.torn_bytes, 0);
        assert_eq!(resumed.weeks[1], testkit::week(1, 7));
        let mut writer = resumed.writer;
        // Delta state survives resume: an identical week 2 is all hits.
        let mut week2 = testkit::week(1, 7);
        week2.week = 2;
        let info = writer.commit_week(&week2).expect("w2");
        assert_eq!(info.delta_hits, 7);
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.weeks_committed(), 3);
        assert_eq!(reader.week(2).expect("week"), week2);
    }

    /// A scratch directory that cleans up after itself.
    struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("wvstore-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    fn write_sharded(dir: &std::path::Path, weeks: usize, domains: usize, shards: usize) {
        let mut writer = ShardedStoreWriter::create(dir, genesis(domains, weeks), shards)
            .expect("create sharded")
            .threads(2);
        for w in 0..weeks {
            writer
                .commit_week(&testkit::week(w, domains))
                .expect("commit");
        }
    }

    /// Every file in `dir` by name, for byte-identity comparisons.
    fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .expect("read dir")
            .map(|e| {
                let e = e.expect("entry");
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).expect("read file"),
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 16] {
            let mut used = vec![false; shards];
            for i in 0..64 {
                let host = format!("site{i:03}.example");
                let shard = shard_of(&host, shards);
                assert!(shard < shards);
                assert_eq!(shard, shard_of(&host, shards), "unstable assignment");
                used[shard] = true;
            }
            if shards <= 4 {
                assert!(
                    used.iter().all(|u| *u),
                    "{shards}-way split left a shard empty"
                );
            }
        }
        assert_eq!(shard_of("anything.example", 1), 0);
    }

    #[test]
    fn sharded_store_matches_the_unsharded_view() {
        let tmp = TempDir::new("sharded-roundtrip");
        write_sharded(&tmp.path, 3, 12, 4);
        let reader = ShardedStoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.weeks_committed(), 3);
        assert_eq!(reader.shard_count(), 4);
        assert!(!reader.is_degraded());
        assert_eq!(reader.genesis(), &genesis(12, 3));
        for w in 0..3 {
            // Merged shard slices, sorted by host == the unsharded week.
            assert_eq!(reader.week(w).expect("week"), testkit::week(w, 12));
        }
        assert_eq!(reader.verify().expect("verify"), vec![12; 3]);
        // Random access routes by domain hash.
        for record in &testkit::week(1, 12).records {
            assert_eq!(&reader.get(&record.host, 1).expect("get"), record);
        }
        assert!(matches!(
            reader.get("nope.example", 0),
            Err(StoreError::UnknownDomain(_))
        ));
        // AnyReader auto-detects the layout.
        let any = AnyReader::open(&tmp.path).expect("any open");
        assert_eq!(any.shard_count(), 4);
        assert_eq!(any.week(2).expect("week"), testkit::week(2, 12));
    }

    #[test]
    fn sharded_epoch_counts_every_commit() {
        let tmp = TempDir::new("sharded-epoch");
        let mut writer = ShardedStoreWriter::create(&tmp.path, genesis(6, 2), 2).expect("create");
        assert_eq!(writer.epoch(), 1);
        writer.commit_week(&testkit::week(0, 6)).expect("w0");
        writer.commit_week(&testkit::week(1, 6)).expect("w1");
        assert_eq!(writer.epoch(), 3);
        writer.finalize(&[]).expect("finalize");
        assert_eq!(writer.epoch(), 4);
        // Resume replays the same state without inventing epochs.
        drop(writer);
        let resumed = ShardedStoreWriter::resume(&tmp.path).expect("resume");
        assert_eq!(resumed.writer.epoch(), 4);
        assert_eq!(resumed.shards_rolled_back, 0);
        assert!(resumed.writer.is_finalized());
        assert_eq!(resumed.filtered_out, Some(vec![]));
    }

    #[test]
    fn sharded_resume_rolls_back_a_shard_ahead_of_the_manifest() {
        let tmp = TempDir::new("sharded-ahead");
        write_sharded(&tmp.path, 2, 10, 2);
        let before = dir_bytes(&tmp.path);
        // Simulate a crash window: shard 0 committed week 2, but the
        // manifest rename never happened.
        let mut shard0 = StoreWriter::resume(&shard_path(&tmp.path, 0))
            .expect("resume shard")
            .writer;
        shard0
            .commit_week(&WeekData {
                week: 2,
                date_days: 17_614,
                records: vec![],
            })
            .expect("unpublished commit");
        drop(shard0);
        assert_ne!(dir_bytes(&tmp.path), before, "tamper must change bytes");

        let resumed = ShardedStoreWriter::resume(&tmp.path).expect("resume group");
        assert_eq!(resumed.shards_rolled_back, 1);
        assert_eq!(resumed.writer.weeks_committed(), 2);
        assert_eq!(resumed.weeks.len(), 2);
        drop(resumed);
        // Rollback restores the exact pre-crash bytes, manifest included.
        assert_eq!(dir_bytes(&tmp.path), before);
    }

    #[test]
    fn a_shard_behind_the_manifest_is_refused_as_mixed_epoch() {
        let tmp = TempDir::new("sharded-behind");
        write_sharded(&tmp.path, 2, 10, 2);
        // Hand-corrupt: drop shard 1 back to one week (no crash does this).
        StoreWriter::resume(&shard_path(&tmp.path, 1))
            .expect("resume shard")
            .writer
            .truncate_to_weeks(1)
            .expect("truncate");
        let err = match ShardedStoreWriter::resume(&tmp.path) {
            Err(err) => err,
            Ok(_) => panic!("mixed-epoch store must refuse to resume"),
        };
        assert!(
            matches!(
                err,
                StoreError::ShardBehind {
                    shard: 1,
                    shard_weeks: 1,
                    manifest_weeks: 2,
                }
            ),
            "{err}"
        );
        assert!(ShardedStoreReader::open(&tmp.path).is_err());
        // Degraded open still serves the healthy shard.
        let degraded = ShardedStoreReader::open_degraded(&tmp.path).expect("degraded");
        assert!(degraded.is_degraded());
        assert!(degraded.shard_health()[0].is_healthy());
        assert!(!degraded.shard_health()[1].is_healthy());
        for record in &testkit::week(0, 10).records {
            match degraded.get(&record.host, 0) {
                Ok(got) => {
                    assert_eq!(shard_of(&record.host, 2), 0);
                    assert_eq!(&got, record);
                }
                Err(StoreError::ShardUnavailable { shard: 1, .. }) => {
                    assert_eq!(shard_of(&record.host, 2), 1);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn degraded_reader_survives_a_deleted_shard() {
        let tmp = TempDir::new("sharded-deleted");
        write_sharded(&tmp.path, 2, 12, 3);
        std::fs::remove_file(shard_path(&tmp.path, 2)).expect("delete shard");
        assert!(AnyReader::open(&tmp.path).is_err(), "strict open must fail");
        let any = AnyReader::open_degraded(&tmp.path).expect("degraded open");
        assert!(any.is_degraded());
        let health = any.shard_health();
        assert!(health[0].is_healthy() && health[1].is_healthy());
        assert!(!health[2].is_healthy());
        // The merged week only misses the dead shard's records.
        let week = any.week(0).expect("week");
        assert!(week.records.len() < 12);
        for record in &week.records {
            assert_ne!(shard_of(&record.host, 3), 2);
        }
        // verify() refuses: a degraded store is not a verified store.
        assert!(matches!(
            any.verify(),
            Err(StoreError::ShardUnavailable { shard: 2, .. })
        ));
    }

    #[test]
    fn truncate_to_weeks_rebuilds_an_identical_prefix() {
        let tmp = TempStore::new("truncate");
        write_weeks(&tmp.path, 4, 8);
        let full = std::fs::read(&tmp.path).expect("read");
        let resumed = StoreWriter::resume(&tmp.path)
            .expect("resume")
            .writer
            .truncate_to_weeks(2)
            .expect("truncate");
        assert_eq!(resumed.writer.weeks_committed(), 2);
        assert_eq!(resumed.weeks.len(), 2);
        // Replaying the dropped weeks reproduces the original bytes:
        // the interner and delta state were rebuilt correctly.
        let mut writer = resumed.writer;
        writer.commit_week(&testkit::week(2, 8)).expect("w2");
        writer.commit_week(&testkit::week(3, 8)).expect("w3");
        drop(writer);
        assert_eq!(std::fs::read(&tmp.path).expect("read"), full);
    }

    #[test]
    fn truncate_drops_a_premature_finalize() {
        let tmp = TempStore::new("truncate-finalize");
        let mut writer = write_weeks(&tmp.path, 2, 5);
        writer
            .finalize(&["site001.example".to_string()])
            .expect("finalize");
        let resumed = writer.truncate_to_weeks(2).expect("truncate");
        assert!(!resumed.writer.is_finalized());
        assert_eq!(resumed.writer.weeks_committed(), 2);
        assert_eq!(resumed.filtered_out, None);
    }

    #[test]
    fn scrub_reports_clean_stores() {
        let tmp = TempDir::new("scrub-clean");
        write_sharded(&tmp.path, 2, 10, 2);
        let report = scrub(&tmp.path, false).expect("scrub");
        assert_eq!(report.outcome, ScrubOutcome::Clean);
        assert!(report.shards.iter().all(|s| s.status == ShardStatus::Clean));
        assert_eq!(report.epoch_before, report.epoch_after);
        assert!(report.render().contains("outcome: clean"));
    }

    #[test]
    fn scrub_heals_torn_tails() {
        let tmp = TempDir::new("scrub-torn");
        write_sharded(&tmp.path, 2, 10, 2);
        let clean = dir_bytes(&tmp.path);
        // A torn half-written segment on one shard.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(shard_path(&tmp.path, 1))
            .expect("open");
        file.write_all(&[0x77; 41]).expect("tear");
        drop(file);
        let assess = scrub(&tmp.path, false).expect("assess");
        assert_eq!(assess.outcome, ScrubOutcome::Healed);
        assert_eq!(assess.shards[1].status, ShardStatus::TornTail);
        let repair = scrub(&tmp.path, true).expect("repair");
        assert_eq!(repair.outcome, ScrubOutcome::Healed);
        assert_eq!(repair.shards[1].status, ShardStatus::Healed);
        assert_eq!(dir_bytes(&tmp.path), clean, "heal restores exact bytes");
        assert_eq!(
            scrub(&tmp.path, false).expect("rescrub").outcome,
            ScrubOutcome::Clean
        );
    }

    #[test]
    fn scrub_rolls_the_group_back_past_mid_file_corruption() {
        let tmp = TempDir::new("scrub-rollback");
        write_sharded(&tmp.path, 3, 10, 2);
        // Flip one byte inside shard 0's second week segment: the CRC
        // walk stops there, leaving a one-week valid prefix.
        let path = shard_path(&tmp.path, 0);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");

        let report = scrub(&tmp.path, true).expect("repair");
        assert_eq!(report.outcome, ScrubOutcome::Healed);
        assert!(report.rolled_back_to.is_some());
        let target = report.rolled_back_to.expect("rollback target");
        assert!(target < 3, "corruption must cost at least one week");
        // The rolled-back group resumes and replays the missing weeks.
        let resumed = ShardedStoreWriter::resume(&tmp.path).expect("resume");
        assert_eq!(resumed.writer.weeks_committed(), target);
        let mut writer = resumed.writer;
        for w in target..3 {
            writer.commit_week(&testkit::week(w, 10)).expect("replay");
        }
        let reader = ShardedStoreReader::open(&tmp.path).expect("open");
        for w in 0..3 {
            assert_eq!(reader.week(w).expect("week"), testkit::week(w, 10));
        }
    }

    #[test]
    fn scrub_rebuilds_from_a_quarantined_copy() {
        let tmp = TempDir::new("scrub-rebuild");
        write_sharded(&tmp.path, 2, 10, 2);
        let clean = dir_bytes(&tmp.path);
        // A kill between quarantine-rename and rebuild leaves the shard
        // missing with its bytes parked in the quarantined copy.
        let path = shard_path(&tmp.path, 0);
        let mut quarantined = path.as_os_str().to_os_string();
        quarantined.push(".");
        quarantined.push(QUARANTINE_SUFFIX);
        std::fs::rename(&path, &quarantined).expect("park");

        let report = scrub(&tmp.path, true).expect("repair");
        assert_eq!(report.shards[0].status, ShardStatus::Rebuilt);
        assert_eq!(report.outcome, ScrubOutcome::Healed);
        std::fs::remove_file(&quarantined).expect("discard quarantined copy");
        assert_eq!(
            dir_bytes(&tmp.path),
            clean,
            "rebuild reproduces exact bytes"
        );
    }

    #[test]
    fn scrub_quarantines_what_it_cannot_rebuild() {
        let tmp = TempDir::new("scrub-quarantine");
        write_sharded(&tmp.path, 2, 10, 2);
        // Destroy shard 1's header: no genesis, nothing to rebuild from.
        let path = shard_path(&tmp.path, 1);
        std::fs::write(&path, b"not a store at all").expect("overwrite");
        let report = scrub(&tmp.path, true).expect("repair");
        assert_eq!(report.shards[1].status, ShardStatus::Quarantined);
        assert_eq!(report.outcome, ScrubOutcome::Quarantined);
        assert!(!path.exists(), "corrupt shard set aside");
        // The store still serves degraded.
        let any = AnyReader::open_degraded(&tmp.path).expect("degraded open");
        assert!(any.is_degraded());
        assert!(any
            .week(0)
            .expect("week")
            .records
            .iter()
            .all(|r| shard_of(&r.host, 2) == 0));
    }

    #[test]
    fn scrub_handles_single_file_stores() {
        let tmp = TempStore::new("scrub-single");
        write_weeks(&tmp.path, 2, 6);
        let report = scrub(&tmp.path, false).expect("scrub");
        assert_eq!(report.outcome, ScrubOutcome::Clean);
        assert!(!report.sharded);
        // Torn tail heals.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&tmp.path)
            .expect("open");
        file.write_all(&[0x13; 23]).expect("tear");
        drop(file);
        let report = scrub(&tmp.path, true).expect("repair");
        assert_eq!(report.outcome, ScrubOutcome::Healed);
        assert_eq!(report.shards[0].status, ShardStatus::Healed);
        assert_eq!(
            scrub(&tmp.path, false).expect("rescrub").outcome,
            ScrubOutcome::Clean
        );
    }

    #[test]
    fn empty_weeks_and_empty_stores_work() {
        let tmp = TempStore::new("empty");
        let mut writer = StoreWriter::create(&tmp.path, genesis(0, 1)).expect("create");
        writer
            .commit_week(&WeekData {
                week: 0,
                date_days: 17_600,
                records: vec![],
            })
            .expect("empty week");
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.week(0).expect("week").records.len(), 0);
    }

    #[test]
    fn incremental_commit_is_byte_identical_to_one_shot() {
        let one_shot = TempStore::new("inc-oneshot");
        let batched = TempStore::new("inc-batched");
        write_weeks(&one_shot.path, 3, 10);

        let mut writer = StoreWriter::create(&batched.path, genesis(10, 3)).expect("create");
        for w in 0..3 {
            let week = testkit::week(w, 10);
            writer.begin_week(week.week, week.date_days).expect("begin");
            // Uneven batch splits must not affect the bytes.
            for chunk in week.records.chunks(1 + w * 3) {
                writer.append_records(chunk).expect("append");
            }
            let info = writer.end_week().expect("end");
            assert_eq!(info.records, 10);
        }
        assert_eq!(
            std::fs::read(&one_shot.path).expect("one-shot bytes"),
            std::fs::read(&batched.path).expect("batched bytes"),
        );
    }

    #[test]
    fn incremental_commit_guards_misuse() {
        let tmp = TempStore::new("inc-guards");
        let mut writer = StoreWriter::create(&tmp.path, genesis(4, 2)).expect("create");
        assert!(matches!(
            writer.append_records(&[]),
            Err(StoreError::Mismatch(_))
        ));
        assert!(matches!(writer.end_week(), Err(StoreError::Mismatch(_))));
        writer.begin_week(0, 17_600).expect("begin");
        assert!(matches!(
            writer.begin_week(0, 17_600),
            Err(StoreError::Mismatch(_))
        ));
        assert!(matches!(writer.finalize(&[]), Err(StoreError::Mismatch(_))));
        writer.end_week().expect("end empty week");
        assert!(matches!(
            writer.begin_week(3, 17_607),
            Err(StoreError::WeekOutOfOrder {
                expected: 1,
                got: 3
            })
        ));
    }

    #[test]
    fn hashed_delta_state_survives_resume_byte_identically() {
        let replayed = TempStore::new("hash-replay");
        let resumed = TempStore::new("hash-resume");
        // Straight-through: 3 weeks, the middle two mostly delta hits.
        let mut weeks = Vec::new();
        for w in 0..3 {
            let mut week = testkit::week(0, 8);
            week.week = w;
            weeks.push(week);
        }
        let mut writer = StoreWriter::create(&replayed.path, genesis(8, 3)).expect("create");
        for week in &weeks {
            writer.commit_week(week).expect("commit");
        }
        // Interrupted: drop the writer after week 1, resume, commit week 2.
        let mut writer = StoreWriter::create(&resumed.path, genesis(8, 3)).expect("create");
        writer.commit_week(&weeks[0]).expect("w0");
        writer.commit_week(&weeks[1]).expect("w1");
        drop(writer);
        let mut writer = StoreWriter::resume(&resumed.path).expect("resume").writer;
        let info = writer.commit_week(&weeks[2]).expect("w2");
        assert_eq!(info.delta_hits, 8, "rebuilt prev state still delta-hits");
        assert_eq!(
            std::fs::read(&replayed.path).expect("replayed bytes"),
            std::fs::read(&resumed.path).expect("resumed bytes"),
        );
    }

    #[test]
    fn sharded_incremental_commit_matches_one_shot_bytes() {
        let one_shot = TempDir::new("shinc-oneshot");
        let batched = TempDir::new("shinc-batched");
        let mut a = ShardedStoreWriter::create(&one_shot.path, genesis(12, 2), 3).expect("create");
        let mut b = ShardedStoreWriter::create(&batched.path, genesis(12, 2), 3).expect("create");
        for w in 0..2 {
            let week = testkit::week(w, 12);
            a.commit_week(&week).expect("one-shot commit");
            b.begin_week(week.week, week.date_days).expect("begin");
            for chunk in week.records.chunks(5) {
                b.append_records(chunk).expect("append");
            }
            let info = b.end_week().expect("end");
            assert_eq!(info.records, 12);
        }
        for index in 0..3 {
            assert_eq!(
                std::fs::read(shard_path(&one_shot.path, index)).expect("one-shot shard"),
                std::fs::read(shard_path(&batched.path, index)).expect("batched shard"),
                "shard {index} bytes diverge"
            );
        }
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn week_stream_yields_canonical_order_for_both_layouts() {
        let single = TempStore::new("stream-single");
        write_weeks(&single.path, 3, 9);
        let sharded = TempDir::new("stream-sharded");
        let mut writer =
            ShardedStoreWriter::create(&sharded.path, genesis(9, 3), 4).expect("create");
        for w in 0..3 {
            writer.commit_week(&testkit::week(w, 9)).expect("commit");
        }

        for path in [&single.path, &sharded.path] {
            let reader = AnyReader::open(path).expect("open");
            let stream = reader.stream();
            assert_eq!(stream.len(), 3);
            let weeks: Vec<WeekData> = stream.collect::<Result<_, _>>().expect("stream decodes");
            for (w, week) in weeks.iter().enumerate() {
                assert_eq!(week, &testkit::week(w, 9), "layout {path:?} week {w}");
            }
            // Range restriction clamps and re-yields the middle week only.
            let mid: Vec<WeekData> = reader
                .stream()
                .range(1, 2)
                .collect::<Result<_, _>>()
                .expect("ranged stream");
            assert_eq!(mid.len(), 1);
            assert_eq!(mid[0].week, 1);
        }

        // Per-shard streams cover the partition exactly.
        let reader = ShardedStoreReader::open(&sharded.path).expect("open sharded");
        let mut total = 0;
        for index in 0..4 {
            let shard = reader.shard_reader(index).expect("healthy shard");
            for week in WeekStream::over_single(shard) {
                let week = week.expect("shard week");
                assert!(week.records.iter().all(|r| shard_of(&r.host, 4) == index));
                total += week.records.len();
            }
        }
        assert_eq!(total, 3 * 9);
    }
}
