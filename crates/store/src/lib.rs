//! # webvuln-store
//!
//! The on-disk persistence layer of the `webvuln` pipeline: an
//! append-only, segment-per-week binary snapshot store with
//! checkpoint/resume. The paper's longitudinal dataset spans 201 weekly
//! snapshots of 72k domains; re-crawling from scratch after every
//! interruption is untenable, and the naive JSON dump re-serializes 200
//! near-identical copies of every stable page. This store fixes both:
//!
//! * **Checkpointing** — [`StoreWriter::commit_week`] appends one
//!   CRC-protected segment per crawled week and re-syncs a footer index,
//!   so a killed study loses at most the week in flight.
//! * **Resume** — [`StoreWriter::resume`] walks the file, truncates any
//!   torn tail (a mid-commit crash), and hands back every intact week so
//!   the crawl continues from the first missing one.
//! * **Delta encoding** — record bodies are canonical byte strings;
//!   a domain whose fingerprint and fetch outcome did not change since
//!   the previous week is stored as a back-reference to that week's
//!   bytes. Across a realistic timeline most records are hits, and the
//!   file ends up a fraction of the JSON dump's size.
//! * **String interning** — hosts, library slugs, version strings, and
//!   URLs are written once, file-wide, and referenced by varint symbol.
//! * **Random access** — a footer index plus per-week offset tables give
//!   [`StoreReader::get`] O(1) access to one `(domain, week)` record
//!   without decoding anything else.
//!
//! The crate is dependency-free (std only) and knows nothing about the
//! analysis layer's types: it stores a plain-string record model
//! ([`DomainRecord`], [`PageRecord`]) that `webvuln-analysis` maps its
//! snapshots into and out of.
//!
//! ```
//! use webvuln_store::{Genesis, StoreReader, StoreWriter, WeekData};
//!
//! # let dir = std::env::temp_dir().join(format!("wvs-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! # let path = dir.join("demo.wvstore");
//! let genesis = Genesis {
//!     start_days: 17_600,
//!     weeks_total: 1,
//!     ranks: vec![("site.example".into(), 1)],
//! };
//! let mut writer = StoreWriter::create(&path, genesis).unwrap();
//! writer
//!     .commit_week(&WeekData { week: 0, date_days: 17_600, records: vec![] })
//!     .unwrap();
//! let reader = StoreReader::open(&path).unwrap();
//! assert_eq!(reader.weeks_committed(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod error;
mod format;
mod intern;
mod reader;
mod record;
mod varint;
mod writer;

pub use error::StoreError;
pub use format::{Genesis, FORMAT_VERSION, HEADER_LEN, MAGIC};
pub use reader::StoreReader;
pub use record::{
    DetectionRecord, DomainRecord, FlashRecord, PageRecord, ScriptRecord, WeekData, WordPressRecord,
};
pub use writer::{CommitInfo, Resumed, StoreWriter, WriterStats, FAILPOINTS};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testkit;
    use std::path::PathBuf;

    /// A scratch file that cleans up after itself.
    struct TempStore {
        path: PathBuf,
    }

    impl TempStore {
        fn new(tag: &str) -> TempStore {
            let path = std::env::temp_dir()
                .join(format!("wvstore-test-{}-{tag}.wvstore", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempStore { path }
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    fn genesis(domains: usize, weeks: usize) -> Genesis {
        Genesis {
            start_days: 17_600,
            weeks_total: weeks,
            ranks: (0..domains)
                .map(|i| (format!("site{i:03}.example"), (i + 1) as u64))
                .collect(),
        }
    }

    fn write_weeks(path: &std::path::Path, weeks: usize, domains: usize) -> StoreWriter {
        let mut writer = StoreWriter::create(path, genesis(domains, weeks)).expect("create");
        for w in 0..weeks {
            writer
                .commit_week(&testkit::week(w, domains))
                .expect("commit");
        }
        writer
    }

    #[test]
    fn write_then_read_round_trips() {
        let tmp = TempStore::new("roundtrip");
        write_weeks(&tmp.path, 4, 9);
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.weeks_committed(), 4);
        assert_eq!(reader.genesis(), &genesis(9, 4));
        assert!(!reader.is_finalized());
        assert_eq!(reader.torn_bytes(), 0);
        assert!(reader.had_footer());
        for w in 0..4 {
            assert_eq!(reader.week(w).expect("week"), testkit::week(w, 9));
        }
        assert_eq!(reader.verify().expect("verify"), vec![9; 4]);
    }

    #[test]
    fn random_access_matches_sequential() {
        let tmp = TempStore::new("random");
        write_weeks(&tmp.path, 3, 8);
        let reader = StoreReader::open(&tmp.path).expect("open");
        for w in 0..3 {
            let full = reader.week(w).expect("week");
            for record in &full.records {
                assert_eq!(&reader.get(&record.host, w).expect("get"), record);
            }
        }
        assert!(matches!(
            reader.get("nope.example", 0),
            Err(StoreError::UnknownDomain(_))
        ));
        assert!(matches!(
            reader.get("site000.example", 7),
            Err(StoreError::UnknownWeek(7))
        ));
    }

    #[test]
    fn unchanged_records_become_backrefs() {
        let tmp = TempStore::new("delta");
        let mut writer = StoreWriter::create(&tmp.path, genesis(10, 3)).expect("create");
        // Identical weeks: everything after week 0 should delta-hit.
        let mut week0 = testkit::week(0, 10);
        let info0 = writer.commit_week(&week0).expect("w0");
        assert_eq!(info0.delta_hits, 0);
        week0.week = 1;
        let info1 = writer.commit_week(&week0).expect("w1");
        assert_eq!(info1.delta_hits, 10);
        assert!(info1.segment_bytes < info0.segment_bytes / 4);
        // One domain changes: exactly one miss.
        week0.week = 2;
        week0.records[4].body_len += 1;
        let info2 = writer.commit_week(&week0).expect("w2");
        assert_eq!(info2.delta_hits, 9);

        let reader = StoreReader::open(&tmp.path).expect("open");
        let (hits, total) = reader.delta_stats().expect("stats");
        assert_eq!((hits, total), (19, 30));
        // Backref chains resolve through multiple weeks.
        let w2 = reader.week(2).expect("week 2");
        assert_eq!(
            w2.records[4].body_len,
            testkit::week(0, 10).records[4].body_len + 1
        );
    }

    #[test]
    fn finalize_closes_the_store() {
        let tmp = TempStore::new("finalize");
        let mut writer = write_weeks(&tmp.path, 2, 6);
        writer
            .finalize(&["site003.example".to_string()])
            .expect("finalize");
        assert!(matches!(
            writer.commit_week(&testkit::week(2, 6)),
            Err(StoreError::AlreadyFinalized)
        ));
        assert!(matches!(
            writer.finalize(&[]),
            Err(StoreError::AlreadyFinalized)
        ));
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(
            reader.filtered_out(),
            Some(&["site003.example".to_string()][..])
        );
    }

    #[test]
    fn out_of_order_commits_are_rejected() {
        let tmp = TempStore::new("order");
        let mut writer = StoreWriter::create(&tmp.path, genesis(4, 4)).expect("create");
        let err = writer.commit_week(&testkit::week(2, 4)).expect_err("skip");
        assert!(matches!(
            err,
            StoreError::WeekOutOfOrder {
                expected: 0,
                got: 2
            }
        ));
    }

    #[test]
    fn resume_continues_the_sequence() {
        let tmp = TempStore::new("resume");
        {
            write_weeks(&tmp.path, 2, 7);
        }
        let resumed = StoreWriter::resume(&tmp.path).expect("resume");
        assert_eq!(resumed.writer.weeks_committed(), 2);
        assert_eq!(resumed.weeks.len(), 2);
        assert_eq!(resumed.torn_bytes, 0);
        assert_eq!(resumed.weeks[1], testkit::week(1, 7));
        let mut writer = resumed.writer;
        // Delta state survives resume: an identical week 2 is all hits.
        let mut week2 = testkit::week(1, 7);
        week2.week = 2;
        let info = writer.commit_week(&week2).expect("w2");
        assert_eq!(info.delta_hits, 7);
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.weeks_committed(), 3);
        assert_eq!(reader.week(2).expect("week"), week2);
    }

    #[test]
    fn empty_weeks_and_empty_stores_work() {
        let tmp = TempStore::new("empty");
        let mut writer = StoreWriter::create(&tmp.path, genesis(0, 1)).expect("create");
        writer
            .commit_week(&WeekData {
                week: 0,
                date_days: 17_600,
                records: vec![],
            })
            .expect("empty week");
        let reader = StoreReader::open(&tmp.path).expect("open");
        assert_eq!(reader.week(0).expect("week").records.len(), 0);
    }
}
