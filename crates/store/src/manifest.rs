//! The sharded-store manifest: the group's single atomic commit point.
//!
//! A sharded store is a directory of per-shard store files plus one
//! `MANIFEST`. Each shard file is individually crash-consistent (torn
//! tails heal on resume), but only the manifest says which prefix of the
//! group is *committed*: a monotonic epoch, the committed week count, and
//! the finalized flag. Commits go write-new → fsync → atomic rename, so
//! a kill at any instant leaves either the old manifest or the new one —
//! never a torn mix — and shard progress beyond the manifest is rolled
//! back on resume.
//!
//! ```text
//! manifest := "WVSMANIF" u32le version u64le epoch u32le shards
//!             u64le weeks u8 finalized u32le crc
//!             crc = CRC-32 over everything before it
//! ```

use crate::crc32::crc32;
use crate::error::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"WVSMANIF";
/// Current (and only) manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// File name of the committed manifest inside a sharded-store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Scratch name the next manifest is written to before the commit rename.
pub const MANIFEST_TMP: &str = "MANIFEST.tmp";
/// Encoded manifest length in bytes.
pub const MANIFEST_LEN: usize = 37;

/// The committed state of a sharded store: what every shard must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic commit counter; bumps on every create/commit/finalize.
    pub epoch: u64,
    /// Number of shard files in the group.
    pub shards: u32,
    /// Weeks committed across the whole group.
    pub weeks: u64,
    /// Whether the group carries the finalize verdict.
    pub finalized: bool,
}

impl Manifest {
    /// Serializes the manifest (fixed [`MANIFEST_LEN`] bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_LEN);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.weeks.to_le_bytes());
        out.push(u8::from(self.finalized));
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Parses and CRC-checks a manifest.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() != MANIFEST_LEN {
            return Err(StoreError::corrupt(
                0,
                format!("manifest is {} bytes, expected {MANIFEST_LEN}", bytes.len()),
            ));
        }
        if bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::corrupt(0, "manifest magic mismatch"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored = u32::from_le_bytes(bytes[33..37].try_into().expect("4 bytes"));
        if crc32(&bytes[..33]) != stored {
            return Err(StoreError::corrupt(33, "manifest CRC mismatch"));
        }
        Ok(Manifest {
            epoch: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
            shards: u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")),
            weeks: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
            finalized: bytes[32] != 0,
        })
    }
}

/// Path of the committed manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Reads the committed manifest, deleting any stale scratch file left by
/// a kill before the commit rename. A missing manifest means the group
/// was never created (or died before its very first commit) and maps to
/// [`StoreError::MissingGenesis`], exactly like an empty single-file
/// store.
pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
    let _ = fs::remove_file(dir.join(MANIFEST_TMP));
    let path = manifest_path(dir);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut file) => file
            .read_to_end(&mut bytes)
            .map_err(|e| StoreError::io(&path, e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingGenesis)
        }
        Err(e) => return Err(StoreError::io(&path, e)),
    };
    Manifest::decode(&bytes)
}

/// Atomically publishes `manifest` as the group's committed state:
/// write `MANIFEST.tmp` → fsync → rename over `MANIFEST` → fsync the
/// directory. The rename is the commit point; the
/// `store.manifest.rename` fail-point fires just before it, so a chaos
/// kill there leaves every shard synced but the old manifest in force.
pub fn commit(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    let tmp = dir.join(MANIFEST_TMP);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| StoreError::io(&tmp, e))?;
    file.write_all(&manifest.encode())
        .and_then(|_| file.sync_data())
        .map_err(|e| StoreError::io(&tmp, e))?;
    drop(file);
    let _ = webvuln_failpoint::failpoint!("store.manifest.rename")?;
    let path = manifest_path(dir);
    fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
    // Persist the rename itself: sync the containing directory.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let m = Manifest {
            epoch: 17,
            shards: 8,
            weeks: 201,
            finalized: true,
        };
        assert_eq!(Manifest::decode(&m.encode()).expect("decode"), m);
    }

    #[test]
    fn corruption_is_detected() {
        let m = Manifest {
            epoch: 3,
            shards: 4,
            weeks: 9,
            finalized: false,
        };
        let mut bytes = m.encode();
        bytes[15] ^= 0x40;
        assert!(matches!(
            Manifest::decode(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            Manifest::decode(&bytes[..20]),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn commit_then_load_round_trips_and_clears_scratch() {
        let dir = std::env::temp_dir().join(format!("wvmanif-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let m = Manifest {
            epoch: 2,
            shards: 2,
            weeks: 1,
            finalized: false,
        };
        commit(&dir, &m).expect("commit");
        std::fs::write(dir.join(MANIFEST_TMP), b"stale").expect("scratch");
        assert_eq!(load(&dir).expect("load"), m);
        assert!(
            !dir.join(MANIFEST_TMP).exists(),
            "stale scratch not cleared"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_missing_genesis() {
        let dir = std::env::temp_dir().join(format!("wvmanif-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(load(&dir), Err(StoreError::MissingGenesis)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
