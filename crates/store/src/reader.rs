//! The store reader: open, iterate weeks, random access, verify.
//!
//! Opening a store scans the whole file once, verifying every segment
//! CRC and decoding only the cheap structural parts (string blocks, week
//! headers, indexes). Record bodies stay encoded until asked for — a
//! whole-week decode via [`StoreReader::week`] or an O(1) single-record
//! lookup via [`StoreReader::get`], which follows the footer-indexed
//! per-week offset table straight to the body bytes.

use crate::error::StoreError;
use crate::format::{
    self, decode_body_at, decode_week_full, kind, scan, Genesis, RawSegment, WeekPrefix,
};
use crate::intern::Interner;
use crate::record::{DomainRecord, WeekData};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};

struct WeekEntry {
    seg_index: usize,
    prefix: WeekPrefix,
    by_host: HashMap<u32, u64>,
}

/// Read-only access to a snapshot store.
pub struct StoreReader {
    path: PathBuf,
    segments: Vec<RawSegment>,
    table: Interner,
    genesis: Genesis,
    weeks: Vec<WeekEntry>,
    filtered_out: Option<Vec<String>>,
    torn_bytes: u64,
    had_footer: bool,
}

impl StoreReader {
    /// Opens `path`, validating every segment and indexing every week.
    ///
    /// A torn tail (from an interrupted commit) does not fail the open;
    /// the intact prefix is served and [`StoreReader::torn_bytes`]
    /// reports how much was dropped.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        let mut file = File::open(path).map_err(|e| StoreError::io(path, e))?;
        let scanned = scan(&mut file, path)?;
        let mut table = Interner::new();
        let mut genesis = None;
        let mut weeks: Vec<WeekEntry> = Vec::new();
        let mut filtered_out = None;
        for (i, seg) in scanned.segments.iter().enumerate() {
            let base = seg.payload_offset();
            match seg.kind {
                kind::GENESIS => {
                    genesis = Some(format::decode_genesis(&seg.payload, &mut table, base)?);
                }
                kind::WEEK => {
                    let prefix = format::decode_week_prefix(&seg.payload, &mut table, base)?;
                    if prefix.week != weeks.len() {
                        return Err(StoreError::WeekOutOfOrder {
                            expected: weeks.len(),
                            got: prefix.week,
                        });
                    }
                    let by_host = prefix.index.iter().copied().collect();
                    weeks.push(WeekEntry {
                        seg_index: i,
                        prefix,
                        by_host,
                    });
                }
                kind::FINALIZE => {
                    filtered_out = Some(format::decode_finalize(&seg.payload, &mut table, base)?);
                }
                _ => return Err(StoreError::corrupt(seg.offset, "unexpected segment kind")),
            }
        }
        let genesis = genesis.ok_or(StoreError::MissingGenesis)?;
        Ok(StoreReader {
            path: path.to_path_buf(),
            segments: scanned.segments,
            table,
            genesis,
            weeks,
            filtered_out,
            torn_bytes: scanned.torn_bytes,
            had_footer: scanned.had_footer,
        })
    }

    /// The study metadata the store was created with.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// Number of committed weeks.
    pub fn weeks_committed(&self) -> usize {
        self.weeks.len()
    }

    /// The stored filter verdict; `Some` only when finalized.
    pub fn filtered_out(&self) -> Option<&[String]> {
        self.filtered_out.as_deref()
    }

    /// Whether the store was finalized.
    pub fn is_finalized(&self) -> bool {
        self.filtered_out.is_some()
    }

    /// Torn tail bytes dropped when the file was opened.
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Whether the file ended with an intact footer index.
    pub fn had_footer(&self) -> bool {
        self.had_footer
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot date (days since epoch) of committed week `week`.
    pub fn week_date_days(&self, week: usize) -> Result<i64, StoreError> {
        self.entry(week).map(|e| e.prefix.date_days)
    }

    /// Fully decodes week `week`.
    pub fn week(&self, week: usize) -> Result<WeekData, StoreError> {
        let entry = self.entry(week)?;
        let decoded =
            decode_week_full(&self.segments, entry.seg_index, &entry.prefix, &self.table)?;
        Ok(WeekData {
            week,
            date_days: entry.prefix.date_days,
            records: decoded.into_iter().map(|d| d.record).collect(),
        })
    }

    /// Iterates every committed week in order, decoding lazily.
    pub fn iter_weeks(&self) -> impl Iterator<Item = Result<WeekData, StoreError>> + '_ {
        (0..self.weeks.len()).map(move |week| self.week(week))
    }

    /// O(1) random access: the record for `domain` in `week`, located via
    /// the per-week offset index without decoding anything else.
    pub fn get(&self, domain: &str, week: usize) -> Result<DomainRecord, StoreError> {
        let sym = self
            .table
            .lookup(domain)
            .ok_or_else(|| StoreError::UnknownDomain(domain.to_string()))?;
        let entry = self.entry(week)?;
        let offset = *entry
            .by_host
            .get(&sym)
            .ok_or_else(|| StoreError::UnknownDomain(domain.to_string()))?;
        let (record, _) = decode_body_at(&self.segments, &self.table, domain, offset)?;
        Ok(record)
    }

    /// Exhaustively verifies the store: decodes every record of every
    /// week (resolving and cross-checking all back-references and index
    /// entries). Returns per-week record counts.
    pub fn verify(&self) -> Result<Vec<usize>, StoreError> {
        let mut counts = Vec::with_capacity(self.weeks.len());
        for entry in &self.weeks {
            let decoded =
                decode_week_full(&self.segments, entry.seg_index, &entry.prefix, &self.table)?;
            counts.push(decoded.len());
        }
        Ok(counts)
    }

    /// Delta statistics over the whole file: `(backref_records,
    /// total_records)`.
    pub fn delta_stats(&self) -> Result<(usize, usize), StoreError> {
        let mut hits = 0;
        let mut total = 0;
        for entry in &self.weeks {
            let decoded =
                decode_week_full(&self.segments, entry.seg_index, &entry.prefix, &self.table)?;
            total += decoded.len();
            hits += decoded.iter().filter(|d| d.backref).count();
        }
        Ok((hits, total))
    }

    /// Total bytes of validated data segments (excludes header, footer,
    /// and any torn tail).
    pub fn data_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.env_len).sum()
    }

    fn entry(&self, week: usize) -> Result<&WeekEntry, StoreError> {
        self.weeks.get(week).ok_or(StoreError::UnknownWeek(week))
    }
}
