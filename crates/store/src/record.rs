//! The store's record model and its varint codec.
//!
//! `webvuln-store` is dependency-free, so it cannot name the analysis
//! crate's types; instead it defines a plain-string mirror of everything a
//! weekly snapshot holds. The integration layer (`webvuln-analysis`) maps
//! its `WeekSnapshot`/`PageAnalysis` structures into this model and back.
//!
//! Encoding is canonical: the same logical record always produces the same
//! bytes (strings resolve to stable symbols, fields are written in a fixed
//! order). Week-over-week delta detection relies on this — two encoded
//! bodies are compared byte-for-byte.

use crate::error::StoreError;
use crate::intern::Interner;
use crate::varint::{write_u64, Cursor};

/// One weekly snapshot, ready to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeekData {
    /// Zero-based snapshot index.
    pub week: usize,
    /// Snapshot date as days since the Unix epoch.
    pub date_days: i64,
    /// Per-domain outcomes, sorted by host name.
    pub records: Vec<DomainRecord>,
}

/// The outcome of fetching one domain in one week.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecord {
    /// Domain name.
    pub host: String,
    /// HTTP status, `None` for transport failures.
    pub status: Option<u16>,
    /// Response body size in bytes.
    pub body_len: u64,
    /// Fingerprint results; `None` when the page was unusable.
    pub page: Option<PageRecord>,
}

/// Everything fingerprinting extracted from one usable page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageRecord {
    /// Detected library deployments.
    pub detections: Vec<DetectionRecord>,
    /// WordPress detection state.
    pub wordpress: WordPressRecord,
    /// Flash findings: `(swf URL, AllowScriptAccess value)`.
    pub flash: Vec<FlashRecord>,
    /// Resource-class tags (opaque small integers defined by the caller).
    pub resource_types: Vec<u8>,
    /// External scripts served from GitHub hosts.
    pub github_scripts: Vec<ScriptRecord>,
    /// Count of external scripts on the page.
    pub external_scripts: u64,
    /// Count of external scripts lacking `integrity`.
    pub external_scripts_without_integrity: u64,
    /// `crossorigin` values seen on integrity-carrying scripts.
    pub crossorigin_values: Vec<String>,
}

/// One detected library deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionRecord {
    /// Library identifier (a stable slug).
    pub library: String,
    /// Extracted version string, when observable.
    pub version: Option<String>,
    /// Serving host for cross-origin inclusions; `None` = same-origin.
    pub external_host: Option<String>,
    /// Whether the tag carried `integrity`.
    pub integrity: bool,
    /// The `crossorigin` attribute value, if present.
    pub crossorigin: Option<String>,
    /// The URL the detection came from (empty for inline detections).
    pub url: String,
}

/// WordPress detection state (three-valued).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum WordPressRecord {
    /// Not detected.
    #[default]
    Absent,
    /// Detected, version not observable.
    DetectedUnknownVersion,
    /// Detected with a version string.
    Detected(String),
}

/// One Flash embed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashRecord {
    /// `.swf` URL.
    pub swf_url: String,
    /// Lower-cased `AllowScriptAccess` value, if specified.
    pub allow_script_access: Option<String>,
}

/// One external script reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptRecord {
    /// Serving host.
    pub host: String,
    /// Full URL.
    pub url: String,
    /// Whether the tag carried `integrity`.
    pub integrity: bool,
    /// `crossorigin` value, if present.
    pub crossorigin: Option<String>,
}

fn write_opt_sym(out: &mut Vec<u8>, table: &mut Interner, value: Option<&str>) {
    match value {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            write_u64(out, u64::from(table.intern(s)));
        }
    }
}

fn write_sym(out: &mut Vec<u8>, table: &mut Interner, value: &str) {
    write_u64(out, u64::from(table.intern(value)));
}

/// Encodes the body of a domain record (everything except the host symbol
/// and the full/back-reference tag, which belong to the segment layer).
pub fn encode_body(record: &DomainRecord, table: &mut Interner, out: &mut Vec<u8>) {
    match record.status {
        None => out.push(0),
        Some(status) => {
            out.push(1);
            write_u64(out, u64::from(status));
        }
    }
    write_u64(out, record.body_len);
    match &record.page {
        None => out.push(0),
        Some(page) => {
            out.push(1);
            encode_page(page, table, out);
        }
    }
}

fn encode_page(page: &PageRecord, table: &mut Interner, out: &mut Vec<u8>) {
    write_u64(out, page.detections.len() as u64);
    for det in &page.detections {
        write_sym(out, table, &det.library);
        write_opt_sym(out, table, det.version.as_deref());
        write_opt_sym(out, table, det.external_host.as_deref());
        out.push(u8::from(det.integrity));
        write_opt_sym(out, table, det.crossorigin.as_deref());
        write_sym(out, table, &det.url);
    }
    match &page.wordpress {
        WordPressRecord::Absent => out.push(0),
        WordPressRecord::DetectedUnknownVersion => out.push(1),
        WordPressRecord::Detected(version) => {
            out.push(2);
            write_sym(out, table, version);
        }
    }
    write_u64(out, page.flash.len() as u64);
    for flash in &page.flash {
        write_sym(out, table, &flash.swf_url);
        write_opt_sym(out, table, flash.allow_script_access.as_deref());
    }
    write_u64(out, page.resource_types.len() as u64);
    out.extend_from_slice(&page.resource_types);
    write_u64(out, page.github_scripts.len() as u64);
    for script in &page.github_scripts {
        write_sym(out, table, &script.host);
        write_sym(out, table, &script.url);
        out.push(u8::from(script.integrity));
        write_opt_sym(out, table, script.crossorigin.as_deref());
    }
    write_u64(out, page.external_scripts);
    write_u64(out, page.external_scripts_without_integrity);
    write_u64(out, page.crossorigin_values.len() as u64);
    for value in &page.crossorigin_values {
        write_sym(out, table, value);
    }
}

struct BodyReader<'a, 'b> {
    cur: &'b mut Cursor<'a>,
    table: &'b Interner,
    base_offset: u64,
}

impl BodyReader<'_, '_> {
    fn corrupt(&self, detail: &str) -> StoreError {
        StoreError::corrupt(self.base_offset + self.cur.pos() as u64, detail)
    }

    fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        self.cur.u8().ok_or_else(|| self.corrupt(what))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        self.cur.u64().ok_or_else(|| self.corrupt(what))
    }

    fn count(&mut self, what: &str) -> Result<usize, StoreError> {
        let n = self.u64(what)?;
        // A record cannot hold more entries than bytes remain: rejects
        // absurd counts before they become giant allocations.
        if n > self.cur.remaining() as u64 {
            return Err(self.corrupt(what));
        }
        Ok(n as usize)
    }

    fn sym(&mut self, what: &str) -> Result<String, StoreError> {
        let raw = self.u64(what)?;
        let sym = u32::try_from(raw).map_err(|_| self.corrupt(what))?;
        match self.table.resolve(sym) {
            Some(s) => Ok(s.to_string()),
            None => Err(self.corrupt(&format!("{what}: unknown symbol {sym}"))),
        }
    }

    fn opt_sym(&mut self, what: &str) -> Result<Option<String>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.sym(what)?)),
            _ => Err(self.corrupt(what)),
        }
    }

    fn bool(&mut self, what: &str) -> Result<bool, StoreError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.corrupt(what)),
        }
    }
}

/// Decodes a domain-record body previously written by [`encode_body`].
///
/// `base_offset` is the body's absolute file offset, used to position
/// corruption errors.
pub fn decode_body(
    cur: &mut Cursor<'_>,
    table: &Interner,
    host: &str,
    base_offset: u64,
) -> Result<DomainRecord, StoreError> {
    let mut r = BodyReader {
        cur,
        table,
        base_offset,
    };
    let status = match r.u8("status tag")? {
        0 => None,
        1 => {
            let raw = r.u64("status")?;
            Some(u16::try_from(raw).map_err(|_| r.corrupt("status out of range"))?)
        }
        _ => return Err(r.corrupt("status tag")),
    };
    let body_len = r.u64("body length")?;
    let page = match r.u8("page tag")? {
        0 => None,
        1 => Some(decode_page(&mut r)?),
        _ => return Err(r.corrupt("page tag")),
    };
    Ok(DomainRecord {
        host: host.to_string(),
        status,
        body_len,
        page,
    })
}

fn decode_page(r: &mut BodyReader<'_, '_>) -> Result<PageRecord, StoreError> {
    let n_detections = r.count("detection count")?;
    let mut detections = Vec::with_capacity(n_detections);
    for _ in 0..n_detections {
        detections.push(DetectionRecord {
            library: r.sym("library")?,
            version: r.opt_sym("version")?,
            external_host: r.opt_sym("external host")?,
            integrity: r.bool("integrity")?,
            crossorigin: r.opt_sym("crossorigin")?,
            url: r.sym("detection url")?,
        });
    }
    let wordpress = match r.u8("wordpress tag")? {
        0 => WordPressRecord::Absent,
        1 => WordPressRecord::DetectedUnknownVersion,
        2 => WordPressRecord::Detected(r.sym("wordpress version")?),
        _ => return Err(r.corrupt("wordpress tag")),
    };
    let n_flash = r.count("flash count")?;
    let mut flash = Vec::with_capacity(n_flash);
    for _ in 0..n_flash {
        flash.push(FlashRecord {
            swf_url: r.sym("swf url")?,
            allow_script_access: r.opt_sym("allow_script_access")?,
        });
    }
    let n_types = r.count("resource-type count")?;
    let resource_types = r
        .cur
        .bytes(n_types)
        .ok_or_else(|| StoreError::corrupt(r.base_offset, "resource types"))?
        .to_vec();
    let n_github = r.count("github script count")?;
    let mut github_scripts = Vec::with_capacity(n_github);
    for _ in 0..n_github {
        github_scripts.push(ScriptRecord {
            host: r.sym("script host")?,
            url: r.sym("script url")?,
            integrity: r.bool("script integrity")?,
            crossorigin: r.opt_sym("script crossorigin")?,
        });
    }
    let external_scripts = r.u64("external script count")?;
    let external_scripts_without_integrity = r.u64("unprotected script count")?;
    let n_crossorigin = r.count("crossorigin value count")?;
    let mut crossorigin_values = Vec::with_capacity(n_crossorigin);
    for _ in 0..n_crossorigin {
        crossorigin_values.push(r.sym("crossorigin value")?);
    }
    Ok(PageRecord {
        detections,
        wordpress,
        flash,
        resource_types,
        github_scripts,
        external_scripts,
        external_scripts_without_integrity,
        crossorigin_values,
    })
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Record fixtures shared by the codec, writer, and corruption tests.

    use super::*;

    /// A fully populated page: every field class exercised.
    pub fn rich_page() -> PageRecord {
        PageRecord {
            detections: vec![
                DetectionRecord {
                    library: "jquery".into(),
                    version: Some("1.12.4".into()),
                    external_host: Some("cdn.example".into()),
                    integrity: true,
                    crossorigin: Some("anonymous".into()),
                    url: "https://cdn.example/jquery-1.12.4.min.js".into(),
                },
                DetectionRecord {
                    library: "bootstrap".into(),
                    version: None,
                    external_host: None,
                    integrity: false,
                    crossorigin: None,
                    url: String::new(),
                },
            ],
            wordpress: WordPressRecord::Detected("5.5.1".into()),
            flash: vec![FlashRecord {
                swf_url: "/banner.swf".into(),
                allow_script_access: Some("always".into()),
            }],
            resource_types: vec![0, 1, 6],
            github_scripts: vec![ScriptRecord {
                host: "widgets.github.io".into(),
                url: "https://widgets.github.io/w.js".into(),
                integrity: false,
                crossorigin: None,
            }],
            external_scripts: 4,
            external_scripts_without_integrity: 3,
            crossorigin_values: vec!["anonymous".into()],
        }
    }

    /// A usable-page record for `host`.
    pub fn page_record(host: &str) -> DomainRecord {
        DomainRecord {
            host: host.into(),
            status: Some(200),
            body_len: 5_432,
            page: Some(rich_page()),
        }
    }

    /// A dead-domain record for `host`.
    pub fn dead_record(host: &str) -> DomainRecord {
        DomainRecord {
            host: host.into(),
            status: None,
            body_len: 0,
            page: None,
        }
    }

    /// A small week with `n` domains; content varies by `week` so delta
    /// tests can control what changes.
    pub fn week(week: usize, n: usize) -> WeekData {
        let records = (0..n)
            .map(|i| {
                let host = format!("site{i:03}.example");
                if i % 7 == 3 {
                    dead_record(&host)
                } else {
                    let mut rec = page_record(&host);
                    rec.body_len += week as u64; // perturb per week
                    rec
                }
            })
            .collect();
        WeekData {
            week,
            date_days: 17_600 + 7 * week as i64,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::*;
    use super::*;

    fn round_trip(record: &DomainRecord) -> DomainRecord {
        let mut table = Interner::new();
        let mut buf = Vec::new();
        encode_body(record, &mut table, &mut buf);
        let mut cur = Cursor::new(&buf);
        let back = decode_body(&mut cur, &table, &record.host, 0).expect("decode");
        assert!(cur.is_empty(), "trailing bytes after decode");
        back
    }

    #[test]
    fn rich_record_round_trips() {
        let record = page_record("site.example");
        assert_eq!(round_trip(&record), record);
    }

    #[test]
    fn degenerate_records_round_trip() {
        assert_eq!(
            round_trip(&dead_record("gone.example")),
            dead_record("gone.example")
        );
        let empty_page = DomainRecord {
            host: "empty.example".into(),
            status: Some(404),
            body_len: 120,
            page: Some(PageRecord::default()),
        };
        assert_eq!(round_trip(&empty_page), empty_page);
    }

    #[test]
    fn wordpress_three_states_are_distinct() {
        for wp in [
            WordPressRecord::Absent,
            WordPressRecord::DetectedUnknownVersion,
            WordPressRecord::Detected("6.0".into()),
        ] {
            let record = DomainRecord {
                host: "wp.example".into(),
                status: Some(200),
                body_len: 900,
                page: Some(PageRecord {
                    wordpress: wp.clone(),
                    ..PageRecord::default()
                }),
            };
            let back = round_trip(&record);
            assert_eq!(back.page.expect("page").wordpress, wp);
        }
    }

    #[test]
    fn encoding_is_canonical() {
        // Identical logical records encode to identical bytes even when
        // interleaved with other interning activity — the property the
        // delta layer depends on.
        let record = page_record("site.example");
        let mut table = Interner::new();
        let mut first = Vec::new();
        encode_body(&record, &mut table, &mut first);
        table.intern("unrelated-noise.example");
        let mut second = Vec::new();
        encode_body(&record, &mut table, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn corrupt_tags_are_typed_errors() {
        let record = page_record("site.example");
        let mut table = Interner::new();
        let mut buf = Vec::new();
        encode_body(&record, &mut table, &mut buf);
        // Status tag 9 is invalid.
        let mut evil = buf.clone();
        evil[0] = 9;
        let err = decode_body(&mut Cursor::new(&evil), &table, "site.example", 0)
            .expect_err("invalid tag");
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // Truncation anywhere must error, never panic.
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert!(
                decode_body(&mut cur, &table, "site.example", 0).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_symbols_are_rejected() {
        let record = page_record("site.example");
        let mut table = Interner::new();
        let mut buf = Vec::new();
        encode_body(&record, &mut table, &mut buf);
        let empty = Interner::new();
        let err = decode_body(&mut Cursor::new(&buf), &empty, "site.example", 0)
            .expect_err("symbols unresolvable");
        assert!(err.to_string().contains("unknown symbol"), "{err}");
    }
}
