//! Scrub: a full integrity walk over a store (single-file or sharded)
//! with optional repair.
//!
//! Scrub decodes every record of every week in every shard — CRCs,
//! back-references, and index cross-checks included — and classifies
//! each shard. With `repair`:
//!
//! * torn tails are healed (truncated) exactly as resume would;
//! * a shard that ran ahead of the manifest is rolled back to it;
//! * a corrupt shard is **quarantined** (renamed `*.quarantined`) and
//!   **rebuilt** from its longest valid week prefix when the genesis
//!   still decodes — replaying the decoded weeks through a fresh writer
//!   reproduces the original bytes, since the encoding is deterministic;
//! * when a rebuilt or healed shard ends up with fewer weeks than the
//!   manifest published, the **group rolls back**: every shard is
//!   truncated to the shortest valid prefix and a new manifest (epoch
//!   bumped, finalize cleared) is committed, so a resumed study replays
//!   the missing weeks instead of serving a mixed epoch.
//!
//! A shard whose genesis cannot be decoded is unrecoverable: it stays
//! quarantined, the manifest is left untouched, and the store serves
//! degraded until the study is re-run. Scrub itself is crash-safe: it
//! quarantines *before* rebuilding, and a re-run salvages from the
//! quarantined file if a kill interrupted the rebuild.

use crate::error::StoreError;
use crate::manifest::{self, Manifest};
use crate::reader::StoreReader;
use crate::record::WeekData;
use crate::sharded::{shard_path, QUARANTINE_SUFFIX};
use crate::writer::StoreWriter;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// What scrub found (and, under repair, did) for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Fully valid and consistent with the manifest.
    Clean,
    /// Valid data followed by torn tail bytes (repair heals this).
    TornTail,
    /// Torn tail dropped; all committed weeks intact.
    Healed,
    /// Holds weeks beyond the manifest (unpublished progress).
    Ahead,
    /// Holds fewer weeks than the manifest requires — a mixed epoch.
    Behind,
    /// Weeks dropped to match the group's shortest valid prefix.
    RolledBack,
    /// Structural corruption past what tail-truncation can heal.
    Corrupt,
    /// Set aside as `*.quarantined`; could not be rebuilt.
    Quarantined,
    /// Quarantined and rebuilt from its longest valid week prefix.
    Rebuilt,
}

impl fmt::Display for ShardStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self {
            ShardStatus::Clean => "clean",
            ShardStatus::TornTail => "torn-tail",
            ShardStatus::Healed => "healed",
            ShardStatus::Ahead => "ahead",
            ShardStatus::Behind => "behind",
            ShardStatus::RolledBack => "rolled-back",
            ShardStatus::Corrupt => "corrupt",
            ShardStatus::Quarantined => "quarantined",
            ShardStatus::Rebuilt => "rebuilt",
        };
        f.write_str(word)
    }
}

/// Per-shard scrub result.
#[derive(Debug, Clone)]
pub struct ShardScrub {
    /// Shard index (0 for a single-file store).
    pub shard: usize,
    /// The shard file path.
    pub path: String,
    /// Final classification.
    pub status: ShardStatus,
    /// Valid weeks found (after repair, weeks kept).
    pub weeks: usize,
    /// Records across those weeks.
    pub records: usize,
    /// Torn tail bytes found.
    pub torn_bytes: u64,
    /// Extra context: what was wrong, what repair did.
    pub detail: String,
}

/// Overall scrub verdict, in increasing severity. The CLI maps these to
/// distinct exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// Every shard clean.
    Clean,
    /// Issues found; all repairable (or repaired) by healing/rollback.
    Healed,
    /// At least one shard corrupt or quarantined beyond rebuild.
    Quarantined,
}

/// The structured report scrub returns (and the CLI renders).
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// The store path scrubbed.
    pub store: String,
    /// Whether the store is sharded.
    pub sharded: bool,
    /// Manifest epoch before scrub (sharded only).
    pub epoch_before: Option<u64>,
    /// Manifest epoch after scrub — differs only when a group rollback
    /// committed a new manifest.
    pub epoch_after: Option<u64>,
    /// Week count the group was rolled back to, when a rollback happened.
    pub rolled_back_to: Option<usize>,
    /// Per-shard results.
    pub shards: Vec<ShardScrub>,
    /// Overall verdict.
    pub outcome: ScrubOutcome,
    /// Whether repair was requested.
    pub repaired: bool,
}

impl ScrubReport {
    /// Renders the report as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let kind = if self.sharded {
            format!("sharded, {} shards", self.shards.len())
        } else {
            "single-file".to_string()
        };
        let epoch = match (self.epoch_before, self.epoch_after) {
            (Some(before), Some(after)) if before != after => {
                format!(", epoch {before} -> {after}")
            }
            (Some(before), _) => format!(", epoch {before}"),
            _ => String::new(),
        };
        out.push_str(&format!(
            "scrub report for {} ({kind}{epoch})\n",
            self.store
        ));
        for shard in &self.shards {
            let torn = if shard.torn_bytes > 0 {
                format!("  torn={}B", shard.torn_bytes)
            } else {
                String::new()
            };
            let detail = if shard.detail.is_empty() {
                String::new()
            } else {
                format!("  [{}]", shard.detail)
            };
            out.push_str(&format!(
                "  shard {:03}  {:>3} weeks  {:>6} records  {}{torn}{detail}\n",
                shard.shard, shard.weeks, shard.records, shard.status
            ));
        }
        if let Some(weeks) = self.rolled_back_to {
            out.push_str(&format!("group rolled back to {weeks} weeks\n"));
        }
        let verdict = match self.outcome {
            ScrubOutcome::Clean => "clean",
            ScrubOutcome::Healed if self.repaired => "healed",
            ScrubOutcome::Healed => "repairable issues found (run with --repair)",
            ScrubOutcome::Quarantined => "corrupt shards quarantined",
        };
        out.push_str(&format!("outcome: {verdict}\n"));
        out
    }
}

/// What one source file (a shard, or its quarantined copy) holds.
struct SourceAssess {
    path: PathBuf,
    /// Longest prefix of weeks that fully decode.
    valid_weeks: usize,
    /// Records across the valid prefix.
    records: usize,
    /// Whether every committed week (and the finalize, if any) decoded.
    fully_valid: bool,
    /// Weeks the file claims to hold.
    claimed_weeks: usize,
    torn_bytes: u64,
    finalized: bool,
    filtered_out: Option<Vec<String>>,
    first_error: Option<String>,
}

/// Walks one store file, counting the longest fully-decodable week
/// prefix. Returns `None` when the file is missing or will not open at
/// all (no usable genesis).
fn assess_source(path: &Path) -> Result<Option<SourceAssess>, String> {
    if !path.exists() {
        return Err(format!("{}: shard file missing", path.display()));
    }
    let reader = match StoreReader::open(path) {
        Ok(reader) => reader,
        Err(err) => return Err(format!("{}: {err}", path.display())),
    };
    let claimed = reader.weeks_committed();
    let mut valid = 0;
    let mut records = 0;
    let mut first_error = None;
    for week in 0..claimed {
        match reader.week(week) {
            Ok(data) => {
                valid += 1;
                records += data.records.len();
            }
            Err(err) => {
                first_error = Some(format!("week {week}: {err}"));
                break;
            }
        }
    }
    Ok(Some(SourceAssess {
        path: path.to_path_buf(),
        valid_weeks: valid,
        records,
        fully_valid: valid == claimed,
        claimed_weeks: claimed,
        torn_bytes: reader.torn_bytes(),
        finalized: reader.is_finalized(),
        filtered_out: reader.filtered_out().map(|f| f.to_vec()),
        first_error,
    }))
}

/// Decodes weeks `0..weeks` from `source` and replays them through a
/// fresh writer at `dest`. Deterministic encoding makes the rebuilt
/// prefix byte-identical to what the original writer produced.
fn rebuild_shard(
    source: &Path,
    dest: &Path,
    weeks: usize,
    finalize: Option<&[String]>,
) -> Result<(), StoreError> {
    let reader = StoreReader::open(source)?;
    let mut decoded: Vec<WeekData> = Vec::with_capacity(weeks);
    for week in 0..weeks {
        decoded.push(reader.week(week)?);
    }
    let genesis = reader.genesis().clone();
    drop(reader);
    let mut writer = StoreWriter::create(dest, genesis)?;
    for week in &decoded {
        writer.commit_week(week)?;
    }
    if let Some(filtered) = finalize {
        writer.finalize(filtered)?;
    }
    Ok(())
}

/// Scrubs the store at `path` (auto-detecting single-file vs sharded).
/// Read-only without `repair`; see the module docs for what repair does.
pub fn scrub(path: &Path, repair: bool) -> Result<ScrubReport, StoreError> {
    if path.is_dir() {
        scrub_sharded(path, repair)
    } else {
        scrub_single(path, repair)
    }
}

fn scrub_single(path: &Path, repair: bool) -> Result<ScrubReport, StoreError> {
    let _ = webvuln_failpoint::failpoint!("store.scrub", "0")?;
    let mut shard = ShardScrub {
        shard: 0,
        path: path.display().to_string(),
        status: ShardStatus::Clean,
        weeks: 0,
        records: 0,
        torn_bytes: 0,
        detail: String::new(),
    };
    match assess_source(path) {
        Ok(Some(assess)) => {
            shard.weeks = assess.valid_weeks;
            shard.records = assess.records;
            shard.torn_bytes = assess.torn_bytes;
            if !assess.fully_valid {
                shard.status = ShardStatus::Corrupt;
                shard.detail = assess.first_error.unwrap_or_default();
                if repair {
                    quarantine(path)?;
                    shard.status = ShardStatus::Quarantined;
                    shard.detail = format!(
                        "{}; moved to {}.{QUARANTINE_SUFFIX}",
                        shard.detail,
                        path.display()
                    );
                }
            } else if assess.torn_bytes > 0 {
                if repair {
                    StoreWriter::resume(path)?;
                    shard.status = ShardStatus::Healed;
                    shard.detail = format!("dropped {} torn tail bytes", assess.torn_bytes);
                } else {
                    shard.status = ShardStatus::TornTail;
                }
            }
        }
        Ok(None) => unreachable!("single-file assess never defers"),
        Err(detail) => {
            shard.status = ShardStatus::Corrupt;
            shard.detail = detail;
            if repair && path.exists() {
                quarantine(path)?;
                shard.status = ShardStatus::Quarantined;
            }
        }
    }
    let outcome = outcome_of(std::slice::from_ref(&shard));
    Ok(ScrubReport {
        store: path.display().to_string(),
        sharded: false,
        epoch_before: None,
        epoch_after: None,
        rolled_back_to: None,
        shards: vec![shard],
        outcome,
        repaired: repair,
    })
}

fn scrub_sharded(dir: &Path, repair: bool) -> Result<ScrubReport, StoreError> {
    let manifest = manifest::load(dir)?;
    let shards = manifest.shards as usize;
    let committed = manifest.weeks as usize;

    // Phase A: assess every shard (and, for crash recovery of an
    // interrupted rebuild, its quarantined copy — whichever holds more).
    let mut assessments: Vec<Result<SourceAssess, String>> = Vec::with_capacity(shards);
    for index in 0..shards {
        let key = index.to_string();
        let _ = webvuln_failpoint::failpoint!("store.scrub", &key)?;
        let path = shard_path(dir, index);
        let quarantined = quarantine_path(&path);
        let primary = assess_source(&path);
        let fallback = if quarantined.exists() {
            assess_source(&quarantined).ok().flatten()
        } else {
            None
        };
        let chosen = match (primary, fallback) {
            (Ok(Some(p)), Some(q)) if q.valid_weeks > p.valid_weeks => Ok(q),
            (Ok(Some(p)), _) => Ok(p),
            (Err(_), Some(q)) => Ok(q),
            (Err(e), None) => Err(e),
            (Ok(None), _) => unreachable!("assess never defers"),
        };
        assessments.push(chosen);
    }

    // Phase B: decide the group target and apply per-shard repairs.
    let recoverable = assessments.iter().all(|a| a.is_ok());
    let target = assessments
        .iter()
        .flatten()
        .map(|a| a.valid_weeks)
        .min()
        .unwrap_or(0)
        .min(committed);
    let group_finalized = manifest.finalized
        && recoverable
        && target == committed
        && assessments
            .iter()
            .flatten()
            .all(|a| a.fully_valid && a.finalized);

    let mut report_shards = Vec::with_capacity(shards);
    for (index, assess) in assessments.iter().enumerate() {
        let key = index.to_string();
        let _ = webvuln_failpoint::failpoint!("store.scrub", &key)?;
        let path = shard_path(dir, index);
        let mut shard = ShardScrub {
            shard: index,
            path: path.display().to_string(),
            status: ShardStatus::Clean,
            weeks: 0,
            records: 0,
            torn_bytes: 0,
            detail: String::new(),
        };
        match assess {
            Err(detail) => {
                shard.status = if repair {
                    if path.exists() {
                        quarantine(&path)?;
                    }
                    ShardStatus::Quarantined
                } else {
                    ShardStatus::Corrupt
                };
                shard.detail = format!("{detail}; genesis unreadable, cannot rebuild");
            }
            Ok(assess) => {
                shard.weeks = assess.valid_weeks.min(committed);
                shard.records = assess.records;
                shard.torn_bytes = assess.torn_bytes;
                let from_quarantine = assess.path != path;
                let needs_rebuild = from_quarantine || !assess.fully_valid;
                let shard_target = if recoverable && repair {
                    target
                } else {
                    shard.weeks
                };
                if needs_rebuild {
                    shard.status = ShardStatus::Corrupt;
                    shard.detail = assess
                        .first_error
                        .clone()
                        .unwrap_or_else(|| "rebuilding from quarantined copy".to_string());
                    if repair && recoverable {
                        if !from_quarantine {
                            quarantine(&path)?;
                        }
                        let finalize = if group_finalized {
                            assess.filtered_out.as_deref()
                        } else {
                            None
                        };
                        rebuild_shard(&quarantine_path(&path), &path, shard_target, finalize)?;
                        shard.status = ShardStatus::Rebuilt;
                        shard.weeks = shard_target;
                        shard.detail = format!(
                            "{}; rebuilt {shard_target} weeks from quarantined copy",
                            shard.detail
                        );
                    }
                } else if repair && recoverable {
                    let mut resumed = StoreWriter::resume(&path)?;
                    if resumed.writer.weeks_committed() > shard_target
                        || (resumed.writer.is_finalized() && !group_finalized)
                    {
                        resumed = resumed.writer.truncate_to_weeks(shard_target)?;
                        shard.status = if shard_target < committed {
                            ShardStatus::RolledBack
                        } else {
                            ShardStatus::Healed
                        };
                        shard.detail =
                            format!("truncated to {} weeks", resumed.writer.weeks_committed());
                    } else if assess.torn_bytes > 0 {
                        shard.status = ShardStatus::Healed;
                        shard.detail = format!("dropped {} torn tail bytes", assess.torn_bytes);
                    }
                    shard.weeks = resumed.writer.weeks_committed();
                } else {
                    // Assessment only: report what repair would address.
                    if assess.claimed_weeks > committed || (assess.finalized && !manifest.finalized)
                    {
                        shard.status = ShardStatus::Ahead;
                        shard.detail = format!(
                            "{} weeks on disk, manifest has {committed}",
                            assess.claimed_weeks
                        );
                    } else if assess.claimed_weeks < committed {
                        shard.status = ShardStatus::Behind;
                        shard.detail = format!(
                            "mixed epoch: {} weeks on disk, manifest requires {committed}",
                            assess.claimed_weeks
                        );
                    } else if assess.torn_bytes > 0 {
                        shard.status = ShardStatus::TornTail;
                    }
                }
            }
        }
        report_shards.push(shard);
    }

    // Phase C: publish the rollback, if the group needs one.
    let mut epoch_after = manifest.epoch;
    let mut rolled_back_to = None;
    if repair && recoverable && (target < committed || (manifest.finalized && !group_finalized)) {
        let next = Manifest {
            epoch: manifest.epoch + 1,
            shards: manifest.shards,
            weeks: target as u64,
            finalized: group_finalized,
        };
        manifest::commit(dir, &next)?;
        epoch_after = next.epoch;
        rolled_back_to = Some(target);
    }

    let outcome = outcome_of(&report_shards);
    Ok(ScrubReport {
        store: dir.display().to_string(),
        sharded: true,
        epoch_before: Some(manifest.epoch),
        epoch_after: Some(epoch_after),
        rolled_back_to,
        shards: report_shards,
        outcome,
        repaired: repair,
    })
}

fn outcome_of(shards: &[ShardScrub]) -> ScrubOutcome {
    if shards
        .iter()
        .any(|s| matches!(s.status, ShardStatus::Quarantined))
    {
        return ScrubOutcome::Quarantined;
    }
    if shards
        .iter()
        .any(|s| matches!(s.status, ShardStatus::Corrupt | ShardStatus::Behind))
    {
        // Unrepaired corruption (assessment mode, or a shard that could
        // not be rebuilt) is the severe verdict too — rebuilt/healed
        // shards are not.
        return ScrubOutcome::Quarantined;
    }
    if shards.iter().all(|s| s.status == ShardStatus::Clean) {
        ScrubOutcome::Clean
    } else {
        ScrubOutcome::Healed
    }
}

fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".");
    name.push(QUARANTINE_SUFFIX);
    PathBuf::from(name)
}

fn quarantine(path: &Path) -> Result<(), StoreError> {
    let dest = quarantine_path(path);
    fs::rename(path, &dest).map_err(|e| StoreError::io(path, e))
}
