//! The sharded snapshot store: N shard files + one manifest, written by
//! one [`StoreWriter`] per shard on the `webvuln-exec` pool.
//!
//! Domains are partitioned by a deterministic hash of the host name
//! ([`shard_of`]), so every shard file is an ordinary single-file store
//! holding its slice of the study — same format, same torn-tail healer,
//! same delta encoding. What the single-file store gets from its footer
//! rewrite, the group gets from the manifest (see [`crate::manifest`]):
//! a week is committed only once every shard has appended and synced its
//! segment *and* the manifest rename lands. Recovery therefore has two
//! layers: each shard heals its own torn tail independently, then the
//! manifest check rolls any shard that ran ahead of the committed epoch
//! back to it — so a kill at any instant yields epoch E or E+1 across
//! all shards, never a mix. A shard *behind* the manifest cannot be
//! produced by a crash (the rename only happens after every shard
//! synced); finding one means lost or hand-edited bytes, and resume
//! refuses with [`StoreError::ShardBehind`] rather than serve a
//! mixed-epoch store.

use crate::error::StoreError;
use crate::format::Genesis;
use crate::manifest::{self, Manifest};
use crate::reader::StoreReader;
use crate::record::{DomainRecord, WeekData};
use crate::writer::{CommitInfo, StoreWriter, WriterStats};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use webvuln_exec::Executor;

/// Deterministic shard assignment: FNV-1a over the host name, mod the
/// shard count. Stable across runs, platforms, and thread counts — the
/// store layout depends on it.
pub fn shard_of(host: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in host.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// File name of shard `index` inside a sharded-store directory.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:03}.wvstore")
}

/// Path of shard `index` inside `dir`.
pub fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(shard_file_name(index))
}

/// Suffix appended to a corrupt shard file when scrub quarantines it.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Splits one group week into per-shard weeks. Records arrive sorted by
/// host; a stable partition keeps every shard's slice sorted too, and
/// re-merging sorted slices by host reproduces the group order exactly.
pub fn split_week(week: &WeekData, shards: usize) -> Vec<WeekData> {
    let mut parts: Vec<WeekData> = (0..shards)
        .map(|_| WeekData {
            week: week.week,
            date_days: week.date_days,
            records: Vec::new(),
        })
        .collect();
    for record in &week.records {
        parts[shard_of(&record.host, shards)]
            .records
            .push(record.clone());
    }
    parts
}

/// Merges per-shard week slices back into one group week, sorted by host.
fn merge_week(week: usize, date_days: i64, parts: Vec<WeekData>) -> WeekData {
    let mut records: Vec<DomainRecord> = parts.into_iter().flat_map(|p| p.records).collect();
    records.sort_by(|a, b| a.host.cmp(&b.host));
    WeekData {
        week,
        date_days,
        records,
    }
}

/// The per-shard slice of a group genesis: same timeline, ranks filtered
/// to the shard's domains (global rank values preserved).
fn shard_genesis(group: &Genesis, shard: usize, shards: usize) -> Genesis {
    Genesis {
        start_days: group.start_days,
        weeks_total: group.weeks_total,
        ranks: group
            .ranks
            .iter()
            .filter(|(host, _)| shard_of(host, shards) == shard)
            .cloned()
            .collect(),
    }
}

/// Rebuilds the group genesis from per-shard slices (ranks re-sorted by
/// the global rank value).
fn merge_genesis(parts: &[&Genesis]) -> Result<Genesis, StoreError> {
    let first = parts.first().ok_or(StoreError::MissingGenesis)?;
    let mut ranks = Vec::new();
    for part in parts {
        if part.start_days != first.start_days || part.weeks_total != first.weeks_total {
            return Err(StoreError::Mismatch(
                "shard genesis timelines disagree".to_string(),
            ));
        }
        ranks.extend(part.ranks.iter().cloned());
    }
    ranks.sort_by_key(|(_, rank)| *rank);
    Ok(Genesis {
        start_days: first.start_days,
        weeks_total: first.weeks_total,
        ranks,
    })
}

/// A [`ShardedStoreWriter`] reopened on an existing directory, plus
/// everything the group already held — the sharded analogue of
/// [`crate::Resumed`].
pub struct ShardedResumed {
    /// The writer, positioned at the first uncommitted week.
    pub writer: ShardedStoreWriter,
    /// Every committed week, merged across shards, in week order.
    pub weeks: Vec<WeekData>,
    /// The stored filter verdict, present only when finalized.
    pub filtered_out: Option<Vec<String>>,
    /// Torn tail bytes dropped across all shards during recovery.
    pub torn_bytes: u64,
    /// Shards that had run ahead of the manifest and were rolled back to
    /// the committed epoch (each one is a recovery event).
    pub shards_rolled_back: usize,
}

/// Writes a sharded snapshot store: one [`StoreWriter`] per shard plus
/// the group manifest.
pub struct ShardedStoreWriter {
    dir: PathBuf,
    writers: Vec<StoreWriter>,
    manifest: Manifest,
    genesis: Genesis,
    threads: usize,
}

impl ShardedStoreWriter {
    /// Creates (replacing any previous group) a sharded store under
    /// `dir` with `shards` shard files.
    pub fn create(
        dir: &Path,
        genesis: Genesis,
        shards: usize,
    ) -> Result<ShardedStoreWriter, StoreError> {
        if shards == 0 {
            return Err(StoreError::Mismatch(
                "a sharded store needs at least one shard".to_string(),
            ));
        }
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        // Clear leftovers from any previous layout (wider shard counts,
        // quarantined files, a stale manifest) so the directory holds
        // exactly this group.
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("shard-") || name.starts_with("MANIFEST") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let mut writers = Vec::with_capacity(shards);
        for index in 0..shards {
            writers.push(StoreWriter::create(
                &shard_path(dir, index),
                shard_genesis(&genesis, index, shards),
            )?);
        }
        let manifest = Manifest {
            epoch: 1,
            shards: shards as u32,
            weeks: 0,
            finalized: false,
        };
        manifest::commit(dir, &manifest)?;
        Ok(ShardedStoreWriter {
            dir: dir.to_path_buf(),
            writers,
            manifest,
            genesis,
            threads: 1,
        })
    }

    /// Sets the thread count for parallel per-shard commits (the
    /// `webvuln-exec` pool). Purely a scheduling knob: store bytes are
    /// identical at any thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Reopens an existing sharded store: heals each shard's torn tail,
    /// rolls any shard that ran ahead of the manifest back to the
    /// committed epoch, and refuses mixed-epoch groups a crash cannot
    /// produce (a shard *behind* the manifest).
    pub fn resume(dir: &Path) -> Result<ShardedResumed, StoreError> {
        let manifest = manifest::load(dir)?;
        let shards = manifest.shards as usize;
        let committed = manifest.weeks as usize;
        let mut writers = Vec::with_capacity(shards);
        let mut shard_weeks: Vec<Vec<WeekData>> = Vec::with_capacity(shards);
        let mut filtered_out = None;
        let mut torn_bytes = 0;
        let mut shards_rolled_back = 0;
        for index in 0..shards {
            let path = shard_path(dir, index);
            if !path.exists() {
                return Err(StoreError::ShardUnavailable {
                    shard: index,
                    detail: format!("shard file missing: {}", path.display()),
                });
            }
            let mut resumed = StoreWriter::resume(&path)?;
            torn_bytes += resumed.torn_bytes;
            let ahead = resumed.writer.weeks_committed() > committed
                || (resumed.writer.is_finalized() && !manifest.finalized);
            if ahead {
                // The shard committed past the manifest before the crash;
                // the group never published that progress, so drop it.
                resumed = resumed.writer.truncate_to_weeks(committed)?;
                shards_rolled_back += 1;
            }
            if resumed.writer.weeks_committed() < committed
                || (manifest.finalized && !resumed.writer.is_finalized())
            {
                return Err(StoreError::ShardBehind {
                    shard: index,
                    shard_weeks: resumed.writer.weeks_committed(),
                    manifest_weeks: committed,
                });
            }
            if manifest.finalized {
                filtered_out = resumed.filtered_out.clone();
            }
            shard_weeks.push(resumed.weeks);
            writers.push(resumed.writer);
        }
        let genesis = merge_genesis(&writers.iter().map(|w| w.genesis()).collect::<Vec<_>>())?;
        let mut weeks = Vec::with_capacity(committed);
        for week in 0..committed {
            let empty = WeekData {
                week,
                date_days: 0,
                records: Vec::new(),
            };
            let parts: Vec<WeekData> = shard_weeks
                .iter_mut()
                .map(|sw| std::mem::replace(&mut sw[week], empty.clone()))
                .collect();
            let date_days = parts[0].date_days;
            if parts.iter().any(|p| p.date_days != date_days) {
                return Err(StoreError::Mismatch(format!(
                    "shards disagree on the date of week {week}"
                )));
            }
            weeks.push(merge_week(week, date_days, parts));
        }
        Ok(ShardedResumed {
            writer: ShardedStoreWriter {
                dir: dir.to_path_buf(),
                writers,
                manifest,
                genesis,
                threads: 1,
            },
            weeks,
            filtered_out,
            torn_bytes,
            shards_rolled_back,
        })
    }

    /// Commits one group week: splits it by domain hash, appends every
    /// shard's slice in parallel on the exec pool, then publishes the
    /// week with one atomic manifest rename. A kill anywhere in between
    /// leaves the manifest at the previous epoch and the partial shard
    /// progress is rolled back on resume.
    pub fn commit_week(&mut self, week: &WeekData) -> Result<CommitInfo, StoreError> {
        if self.manifest.finalized {
            return Err(StoreError::AlreadyFinalized);
        }
        let expected = self.manifest.weeks as usize;
        if week.week != expected {
            return Err(StoreError::WeekOutOfOrder {
                expected,
                got: week.week,
            });
        }
        let parts = split_week(week, self.writers.len());
        let jobs: Vec<Mutex<Option<(usize, &mut StoreWriter, WeekData)>>> = self
            .writers
            .iter_mut()
            .zip(parts)
            .enumerate()
            .map(|(index, (writer, part))| Mutex::new(Some((index, writer, part))))
            .collect();
        let results = Executor::new(self.threads).chunk_size(1).map(&jobs, |job| {
            let (index, writer, part) = job
                .lock()
                .expect("shard job lock")
                .take()
                .expect("each shard job runs exactly once");
            let key = index.to_string();
            let _ = webvuln_failpoint::failpoint!("store.shard.mid_write", &key)?;
            writer.commit_week(&part)
        });
        let mut info = CommitInfo {
            week: week.week,
            records: 0,
            delta_hits: 0,
            raw_bytes: 0,
            encoded_bytes: 0,
            segment_bytes: 0,
        };
        for result in results {
            let shard_info = result?;
            info.records += shard_info.records;
            info.delta_hits += shard_info.delta_hits;
            info.raw_bytes += shard_info.raw_bytes;
            info.encoded_bytes += shard_info.encoded_bytes;
            info.segment_bytes += shard_info.segment_bytes;
        }
        let next = Manifest {
            epoch: self.manifest.epoch + 1,
            weeks: self.manifest.weeks + 1,
            ..self.manifest
        };
        manifest::commit(&self.dir, &next)?;
        self.manifest = next;
        Ok(info)
    }

    /// Opens an incremental group-week commit: every shard starts staging
    /// the same week. Records then arrive in host-sorted batches via
    /// [`ShardedStoreWriter::append_records`] — routed to their shard by
    /// domain hash as they arrive, so no full group [`WeekData`] is ever
    /// held — and [`ShardedStoreWriter::end_week`] seals every shard in
    /// parallel and publishes the week with one manifest rename.
    pub fn begin_week(&mut self, week: usize, date_days: i64) -> Result<(), StoreError> {
        if self.manifest.finalized {
            return Err(StoreError::AlreadyFinalized);
        }
        let expected = self.manifest.weeks as usize;
        if week != expected {
            return Err(StoreError::WeekOutOfOrder {
                expected,
                got: week,
            });
        }
        for writer in &mut self.writers {
            writer.begin_week(week, date_days)?;
        }
        Ok(())
    }

    /// Routes a host-sorted batch of records to the open per-shard week
    /// commits. The stable per-record routing reproduces the partition
    /// [`split_week`] computes, so the resulting shard files are
    /// byte-identical to a one-shot [`ShardedStoreWriter::commit_week`].
    pub fn append_records(&mut self, records: &[DomainRecord]) -> Result<(), StoreError> {
        let shards = self.writers.len();
        for record in records {
            self.writers[shard_of(&record.host, shards)]
                .append_records(std::slice::from_ref(record))?;
        }
        Ok(())
    }

    /// Seals the open group-week commit: every shard's segment is
    /// finished and appended in parallel on the exec pool, then the week
    /// is published with one atomic manifest rename.
    pub fn end_week(&mut self) -> Result<CommitInfo, StoreError> {
        let week = self.manifest.weeks as usize;
        let jobs: Vec<Mutex<Option<(usize, &mut StoreWriter)>>> = self
            .writers
            .iter_mut()
            .enumerate()
            .map(|(index, writer)| Mutex::new(Some((index, writer))))
            .collect();
        let results = Executor::new(self.threads).chunk_size(1).map(&jobs, |job| {
            let (index, writer) = job
                .lock()
                .expect("shard job lock")
                .take()
                .expect("each shard job runs exactly once");
            let key = index.to_string();
            let _ = webvuln_failpoint::failpoint!("store.shard.mid_write", &key)?;
            writer.end_week()
        });
        let mut info = CommitInfo {
            week,
            records: 0,
            delta_hits: 0,
            raw_bytes: 0,
            encoded_bytes: 0,
            segment_bytes: 0,
        };
        for result in results {
            let shard_info = result?;
            info.records += shard_info.records;
            info.delta_hits += shard_info.delta_hits;
            info.raw_bytes += shard_info.raw_bytes;
            info.encoded_bytes += shard_info.encoded_bytes;
            info.segment_bytes += shard_info.segment_bytes;
        }
        let next = Manifest {
            epoch: self.manifest.epoch + 1,
            weeks: self.manifest.weeks + 1,
            ..self.manifest
        };
        manifest::commit(&self.dir, &next)?;
        self.manifest = next;
        Ok(info)
    }

    /// Writes the finalize verdict to every shard (each carries the full
    /// group list, so scrub can recover it from any healthy shard), then
    /// publishes with one manifest rename.
    pub fn finalize(&mut self, filtered_out: &[String]) -> Result<(), StoreError> {
        if self.manifest.finalized {
            return Err(StoreError::AlreadyFinalized);
        }
        for writer in &mut self.writers {
            writer.finalize(filtered_out)?;
        }
        let next = Manifest {
            epoch: self.manifest.epoch + 1,
            finalized: true,
            ..self.manifest
        };
        manifest::commit(&self.dir, &next)?;
        self.manifest = next;
        Ok(())
    }

    /// Weeks committed (published by the manifest).
    pub fn weeks_committed(&self) -> usize {
        self.manifest.weeks as usize
    }

    /// Whether the group carries the finalize verdict.
    pub fn is_finalized(&self) -> bool {
        self.manifest.finalized
    }

    /// The merged group genesis.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// Number of shard files.
    pub fn shard_count(&self) -> usize {
        self.writers.len()
    }

    /// The current manifest epoch.
    pub fn epoch(&self) -> u64 {
        self.manifest.epoch
    }

    /// The store directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Aggregated writer stats across all shards.
    pub fn stats(&self) -> WriterStats {
        let mut total = WriterStats::default();
        for writer in &self.writers {
            let stats = writer.stats();
            total.segments_written += stats.segments_written;
            total.delta_hits += stats.delta_hits;
            total.delta_misses += stats.delta_misses;
            total.raw_bytes += stats.raw_bytes;
            total.encoded_bytes += stats.encoded_bytes;
            total.torn_bytes_recovered += stats.torn_bytes_recovered;
        }
        total
    }
}

/// Health of one shard as seen by a (possibly degraded) reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard opened and is consistent with the manifest.
    Healthy,
    /// The shard cannot be served; `detail` says why.
    Unavailable {
        /// Human-readable reason (missing file, corruption, mixed epoch).
        detail: String,
    },
}

impl ShardHealth {
    /// Whether this shard can serve queries.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ShardHealth::Healthy)
    }
}

/// Read-only access to a sharded store, merged back into the single-file
/// store's view: group weeks sorted by host, O(1) `(domain, week)`
/// lookups routed by domain hash.
pub struct ShardedStoreReader {
    dir: PathBuf,
    manifest: Manifest,
    readers: Vec<Option<StoreReader>>,
    health: Vec<ShardHealth>,
    genesis: Genesis,
}

impl ShardedStoreReader {
    /// Opens a sharded store strictly: every shard must open and agree
    /// with the manifest, or the open fails with that shard's error.
    pub fn open(dir: &Path) -> Result<ShardedStoreReader, StoreError> {
        let reader = Self::open_degraded(dir)?;
        for (index, health) in reader.health.iter().enumerate() {
            if let ShardHealth::Unavailable { detail } = health {
                return Err(StoreError::ShardUnavailable {
                    shard: index,
                    detail: detail.clone(),
                });
            }
        }
        Ok(reader)
    }

    /// Opens a sharded store tolerantly: shards that are missing, corrupt,
    /// quarantined, or inconsistent with the manifest are marked
    /// [`ShardHealth::Unavailable`] and queries routed to them fail with
    /// [`StoreError::ShardUnavailable`]; everything else serves normally.
    pub fn open_degraded(dir: &Path) -> Result<ShardedStoreReader, StoreError> {
        let manifest = manifest::load(dir)?;
        let shards = manifest.shards as usize;
        let committed = manifest.weeks as usize;
        let mut readers = Vec::with_capacity(shards);
        let mut health = Vec::with_capacity(shards);
        for index in 0..shards {
            let path = shard_path(dir, index);
            let opened = if path.exists() {
                StoreReader::open(&path)
            } else {
                Err(StoreError::ShardUnavailable {
                    shard: index,
                    detail: format!("shard file missing: {}", path.display()),
                })
            };
            match opened {
                Ok(reader) => {
                    // A shard *ahead* of the manifest is a crashed writer
                    // whose extra progress was never published: serve the
                    // committed prefix and ignore the rest. A shard
                    // *behind* is a mixed epoch no crash can produce.
                    if reader.weeks_committed() < committed
                        || (manifest.finalized && !reader.is_finalized())
                    {
                        health.push(ShardHealth::Unavailable {
                            detail: format!(
                                "mixed epoch: shard has {} weeks, manifest requires {committed}",
                                reader.weeks_committed()
                            ),
                        });
                        readers.push(None);
                    } else {
                        health.push(ShardHealth::Healthy);
                        readers.push(Some(reader));
                    }
                }
                Err(err) => {
                    // A ShardUnavailable already names the shard; keep
                    // only its detail so reporters can add their own
                    // "shard N unavailable:" prefix without duplication.
                    let detail = match err {
                        StoreError::ShardUnavailable { detail, .. } => detail,
                        other => other.to_string(),
                    };
                    health.push(ShardHealth::Unavailable { detail });
                    readers.push(None);
                }
            }
        }
        if readers.iter().all(|r| r.is_none()) {
            return Err(StoreError::corrupt(
                0,
                format!("all {shards} shards unavailable in {}", dir.display()),
            ));
        }
        let genesis = merge_genesis(
            &readers
                .iter()
                .flatten()
                .map(|r| r.genesis())
                .collect::<Vec<_>>(),
        )?;
        Ok(ShardedStoreReader {
            dir: dir.to_path_buf(),
            manifest,
            readers,
            health,
            genesis,
        })
    }

    /// The merged genesis over healthy shards (degraded opens miss the
    /// unavailable shards' domains).
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// Weeks committed, as published by the manifest.
    pub fn weeks_committed(&self) -> usize {
        self.manifest.weeks as usize
    }

    /// Whether the group is finalized, as published by the manifest.
    pub fn is_finalized(&self) -> bool {
        self.manifest.finalized
    }

    /// The stored filter verdict from the first healthy shard (every
    /// shard carries the full group list).
    pub fn filtered_out(&self) -> Option<&[String]> {
        if !self.manifest.finalized {
            return None;
        }
        self.readers.iter().flatten().next()?.filtered_out()
    }

    /// The group manifest.
    pub fn manifest(&self) -> Manifest {
        self.manifest
    }

    /// Number of shards in the group.
    pub fn shard_count(&self) -> usize {
        self.health.len()
    }

    /// Per-shard health, indexed by shard.
    pub fn shard_health(&self) -> &[ShardHealth] {
        &self.health
    }

    /// Direct read access to one shard's single-file reader (`None` when
    /// the shard is unavailable). Streaming folds use this to decode
    /// shards in parallel, one worker per shard.
    pub fn shard_reader(&self, index: usize) -> Option<&StoreReader> {
        self.readers.get(index)?.as_ref()
    }

    /// Whether any shard is unavailable.
    pub fn is_degraded(&self) -> bool {
        self.health.iter().any(|h| !h.is_healthy())
    }

    /// The shard a domain routes to, plus its health.
    pub fn shard_for(&self, domain: &str) -> (usize, &ShardHealth) {
        let shard = shard_of(domain, self.health.len());
        (shard, &self.health[shard])
    }

    /// The store directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Torn tail bytes observed across healthy shards.
    pub fn torn_bytes(&self) -> u64 {
        self.readers.iter().flatten().map(|r| r.torn_bytes()).sum()
    }

    /// Total validated data bytes across healthy shards.
    pub fn data_bytes(&self) -> u64 {
        self.readers.iter().flatten().map(|r| r.data_bytes()).sum()
    }

    /// The snapshot date of committed week `week`.
    pub fn week_date_days(&self, week: usize) -> Result<i64, StoreError> {
        if week >= self.weeks_committed() {
            return Err(StoreError::UnknownWeek(week));
        }
        let reader =
            self.readers.iter().flatten().next().ok_or_else(|| {
                StoreError::corrupt(0, "no healthy shard to read the week date from")
            })?;
        reader.week_date_days(week)
    }

    /// Fully decodes group week `week`, merged across healthy shards and
    /// sorted by host. On a degraded open the unavailable shards' records
    /// are absent.
    pub fn week(&self, week: usize) -> Result<WeekData, StoreError> {
        if week >= self.weeks_committed() {
            return Err(StoreError::UnknownWeek(week));
        }
        let mut date_days = None;
        let mut parts = Vec::new();
        for reader in self.readers.iter().flatten() {
            let part = reader.week(week)?;
            date_days.get_or_insert(part.date_days);
            parts.push(part);
        }
        let date_days =
            date_days.ok_or_else(|| StoreError::corrupt(0, "no healthy shard holds this week"))?;
        Ok(merge_week(week, date_days, parts))
    }

    /// Iterates every committed group week in order.
    pub fn iter_weeks(&self) -> impl Iterator<Item = Result<WeekData, StoreError>> + '_ {
        (0..self.weeks_committed()).map(move |week| self.week(week))
    }

    /// O(1) random access, routed to the owning shard by domain hash.
    /// Routing to an unavailable shard fails with
    /// [`StoreError::ShardUnavailable`] — the caller can tell "this
    /// domain's shard is down" (retryable, serve answers 503) apart from
    /// "this domain does not exist" (404).
    pub fn get(&self, domain: &str, week: usize) -> Result<DomainRecord, StoreError> {
        if week >= self.weeks_committed() {
            return Err(StoreError::UnknownWeek(week));
        }
        let (shard, health) = self.shard_for(domain);
        match (&self.readers[shard], health) {
            (Some(reader), _) => reader.get(domain, week),
            (None, ShardHealth::Unavailable { detail }) => Err(StoreError::ShardUnavailable {
                shard,
                detail: detail.clone(),
            }),
            (None, ShardHealth::Healthy) => unreachable!("healthy shards always have a reader"),
        }
    }

    /// Exhaustively verifies every healthy shard (every record of every
    /// committed week, back-references and indexes cross-checked) and
    /// fails on the first unavailable shard. Returns per-week record
    /// counts summed across shards.
    pub fn verify(&self) -> Result<Vec<usize>, StoreError> {
        let committed = self.weeks_committed();
        let mut counts = vec![0usize; committed];
        for (index, reader) in self.readers.iter().enumerate() {
            match reader {
                Some(reader) => {
                    let shard_counts = reader.verify()?;
                    for (week, count) in shard_counts.iter().take(committed).enumerate() {
                        counts[week] += count;
                    }
                }
                None => {
                    if let ShardHealth::Unavailable { detail } = &self.health[index] {
                        return Err(StoreError::ShardUnavailable {
                            shard: index,
                            detail: detail.clone(),
                        });
                    }
                }
            }
        }
        Ok(counts)
    }

    /// Delta statistics summed over healthy shards: `(backref_records,
    /// total_records)`.
    pub fn delta_stats(&self) -> Result<(usize, usize), StoreError> {
        let mut hits = 0;
        let mut total = 0;
        for reader in self.readers.iter().flatten() {
            let (h, t) = reader.delta_stats()?;
            hits += h;
            total += t;
        }
        Ok((hits, total))
    }
}
