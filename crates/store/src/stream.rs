//! [`WeekStream`]: streaming iteration over a snapshot store.
//!
//! The paper-scale pipeline never materializes the whole study: analysis
//! folds over one decoded week at a time, in canonical global order
//! (weeks ascending, records host-sorted within each week — exactly the
//! order the writer committed). `WeekStream` is that iterator, built on
//! [`AnyReader`] so both layouts stream identically; a sharded store's
//! weeks are merged across healthy shards on the fly.
//!
//! Peak memory while streaming is one decoded [`WeekData`] plus the
//! reader's structural index — independent of how many weeks (or
//! domains) the store holds beyond the single week in flight.

use crate::any::AnyReader;
use crate::error::StoreError;
use crate::reader::StoreReader;
use crate::record::WeekData;

/// Iterator over a store's committed weeks, decoding one at a time.
///
/// Yields `Result<WeekData, StoreError>` in week order; a decode error
/// for one week does not end the stream (later weeks may still be
/// intact), so callers decide whether to abort or skip.
pub struct WeekStream<'a> {
    source: Source<'a>,
    next: usize,
    end: usize,
}

enum Source<'a> {
    Any(&'a AnyReader),
    Single(&'a StoreReader),
}

impl<'a> WeekStream<'a> {
    /// Streams every committed week of `reader`, either layout.
    pub fn over(reader: &'a AnyReader) -> WeekStream<'a> {
        WeekStream {
            end: reader.weeks_committed(),
            source: Source::Any(reader),
            next: 0,
        }
    }

    /// Streams every committed week of one single-file store (for a
    /// sharded store, one shard's slice). Per-shard parallel folds use
    /// this via [`crate::ShardedStoreReader::shard_reader`].
    pub fn over_single(reader: &'a StoreReader) -> WeekStream<'a> {
        WeekStream {
            end: reader.weeks_committed(),
            source: Source::Single(reader),
            next: 0,
        }
    }

    /// Restricts the stream to weeks `[from, to)` (clamped to what the
    /// store holds).
    pub fn range(mut self, from: usize, to: usize) -> WeekStream<'a> {
        self.next = from.min(self.end);
        self.end = to.min(self.end);
        self
    }

    /// Weeks not yet yielded.
    pub fn remaining(&self) -> usize {
        self.end - self.next
    }
}

impl Iterator for WeekStream<'_> {
    type Item = Result<WeekData, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let week = self.next;
        self.next += 1;
        Some(match &self.source {
            Source::Any(r) => r.week(week),
            Source::Single(r) => r.week(week),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for WeekStream<'_> {}
