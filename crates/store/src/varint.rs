//! LEB128 variable-length integers and zigzag signed encoding.
//!
//! Every multi-byte integer in the store format is a varint: weekly
//! snapshot records are dominated by small symbols, counts, and offsets,
//! so fixed-width fields would waste most of their bytes. Only envelope
//! fields that must be parseable before their contents (segment payload
//! lengths, CRCs) use fixed-width little-endian integers.

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` zigzag-mapped (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`),
/// so small negative numbers stay small on disk.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// The number of bytes [`write_u64`] would emit for `value`.
#[cfg(test)]
pub fn len_u64(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize).div_ceil(7)
}

/// A bounds-checked forward reader over an in-memory byte slice.
///
/// All decoding errors collapse to `None`; callers translate that into a
/// typed corruption error carrying the file offset.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps `buf`, starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Current position from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once the whole slice has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads an unsigned LEB128 varint. Rejects encodings longer than ten
    /// bytes (the u64 maximum), so corrupt data cannot loop forever.
    pub fn u64(&mut self) -> Option<u64> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(value);
            }
        }
        None
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn i64(&mut self) -> Option<i64> {
        let raw = self.u64()?;
        Some(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a varint and narrows it to `usize`.
    pub fn len(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Advances past `n` bytes without looking at them.
    pub fn skip(&mut self, n: usize) -> Option<()> {
        self.bytes(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(value: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, value);
        assert_eq!(buf.len(), len_u64(value), "length prediction for {value}");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.u64(), Some(value));
        assert!(cur.is_empty());
    }

    #[test]
    fn u64_round_trips() {
        for value in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            round_trip_u64(value);
        }
    }

    #[test]
    fn i64_round_trips() {
        for value in [0i64, -1, 1, -64, 64, i32::MIN as i64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, value);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.i64(), Some(value));
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for value in 0..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, value);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 40);
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert_eq!(cur.u64(), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // Eleven continuation bytes cannot be a u64.
        let evil = [0x80u8; 11];
        assert_eq!(Cursor::new(&evil).u64(), None);
    }

    #[test]
    fn cursor_bounds() {
        let data = [1u8, 2, 3];
        let mut cur = Cursor::new(&data);
        assert_eq!(cur.bytes(2), Some(&data[..2]));
        assert_eq!(cur.bytes(2), None, "past the end");
        assert_eq!(cur.remaining(), 1);
        assert_eq!(cur.skip(1), Some(()));
        assert!(cur.is_empty());
    }
}
