//! The append-only store writer: create, resume, commit, finalize.
//!
//! Commit discipline: each [`StoreWriter::commit_week`] appends one week
//! segment at the current data end, then rewrites the footer after it and
//! syncs. A crash mid-commit therefore tears only the tail — the segment
//! being written and/or the footer — and [`StoreWriter::resume`] recovers
//! by truncating the file back to the last intact segment.

/// Fail-point sites owned by this crate, for the chaos-harness catalog.
///
/// - `store.segment.mid_write` — fires between the two halves of a
///   segment envelope write, leaving a genuinely torn segment for
///   resume to truncate.
/// - `store.footer.rewrite` — fires before the footer is rewritten, so
///   the file ends with data the footer does not index (or no footer).
/// - `store.finalize` — fires before the finalize segment is appended.
/// - `store.shard.mid_write` — fires inside one shard's commit task on
///   the exec pool (keyed by shard index), leaving sibling shards free
///   to finish while this one dies mid-cycle.
/// - `store.manifest.rename` — fires after the new manifest is written
///   and synced but before the atomic rename that commits it, so every
///   shard holds the new week while the group still publishes the old
///   epoch.
/// - `store.scrub` — fires at the top of each shard's scrub step
///   (keyed by shard index); a kill there must leave the store exactly
///   as scrubable as before.
pub const FAILPOINTS: &[&str] = &[
    "store.segment.mid_write",
    "store.footer.rewrite",
    "store.finalize",
    "store.shard.mid_write",
    "store.manifest.rename",
    "store.scrub",
];

use crate::error::StoreError;
use crate::format::{
    self, decode_week_full, encode_footer, encode_genesis, encode_header, encode_segment, kind,
    scan, Genesis, PrevBody, PrevWeek, SegmentMeta, WeekEncoder,
};
use crate::intern::Interner;
use crate::record::WeekData;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Running totals over everything this writer has committed (including
/// segments recovered on resume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Week segments written by this process (excludes recovered ones).
    pub segments_written: usize,
    /// Records stored as back-references to the previous week.
    pub delta_hits: usize,
    /// Records stored with a full body.
    pub delta_misses: usize,
    /// Total body bytes before delta substitution.
    pub raw_bytes: u64,
    /// Bytes of record regions actually written.
    pub encoded_bytes: u64,
    /// Torn tail bytes truncated during resume.
    pub torn_bytes_recovered: u64,
}

/// What one [`StoreWriter::commit_week`] call did.
#[derive(Debug, Clone, Copy)]
pub struct CommitInfo {
    /// The committed week index.
    pub week: usize,
    /// Records in the segment.
    pub records: usize,
    /// Records stored as back-references.
    pub delta_hits: usize,
    /// Body bytes before delta substitution.
    pub raw_bytes: u64,
    /// Record-region bytes actually written.
    pub encoded_bytes: u64,
    /// Total envelope bytes appended (segment only, not the footer).
    pub segment_bytes: u64,
}

/// A [`StoreWriter`] reopened on an existing file, plus everything the
/// file already held.
pub struct Resumed {
    /// The writer, positioned after the last intact segment.
    pub writer: StoreWriter,
    /// Every week already committed, fully decoded, in week order.
    pub weeks: Vec<WeekData>,
    /// The stored filter verdict, present only when finalized.
    pub filtered_out: Option<Vec<String>>,
    /// Torn tail bytes dropped during recovery.
    pub torn_bytes: u64,
}

/// Writes a snapshot store file.
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    table: Interner,
    metas: Vec<SegmentMeta>,
    genesis: Genesis,
    next_week: usize,
    finalized: bool,
    data_end: u64,
    prev: PrevWeek,
    pending: Option<WeekEncoder>,
    stats: WriterStats,
}

impl StoreWriter {
    /// Creates (truncating) a store at `path` and writes header + genesis.
    pub fn create(path: &Path, genesis: Genesis) -> Result<StoreWriter, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        file.write_all(&encode_header())
            .map_err(|e| StoreError::io(path, e))?;
        let mut table = Interner::new();
        let payload = encode_genesis(&genesis, &mut table);
        let envelope = encode_segment(kind::GENESIS, &payload);
        file.write_all(&envelope)
            .map_err(|e| StoreError::io(path, e))?;
        let data_end = format::HEADER_LEN + envelope.len() as u64;
        let metas = vec![SegmentMeta {
            kind: kind::GENESIS,
            week: 0,
            offset: format::HEADER_LEN,
            env_len: envelope.len() as u64,
        }];
        let mut writer = StoreWriter {
            file,
            path: path.to_path_buf(),
            table,
            metas,
            genesis,
            next_week: 0,
            finalized: false,
            data_end,
            prev: PrevWeek::new(),
            pending: None,
            stats: WriterStats::default(),
        };
        writer.rewrite_footer()?;
        Ok(writer)
    }

    /// Reopens an existing store, truncating any torn tail, and rebuilds
    /// the delta state so the next commit continues the sequence.
    pub fn resume(path: &Path) -> Result<Resumed, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        let scanned = scan(&mut file, path)?;
        let mut table = Interner::new();
        let mut genesis = None;
        let mut weeks = Vec::new();
        let mut filtered_out = None;
        let mut metas = Vec::new();
        let mut prev = PrevWeek::new();
        for (i, seg) in scanned.segments.iter().enumerate() {
            let base = seg.payload_offset();
            let mut week_no = 0;
            match seg.kind {
                kind::GENESIS => {
                    genesis = Some(format::decode_genesis(&seg.payload, &mut table, base)?);
                }
                kind::WEEK => {
                    let prefix = format::decode_week_prefix(&seg.payload, &mut table, base)?;
                    week_no = prefix.week;
                    let decoded = decode_week_full(&scanned.segments, i, &prefix, &table)?;
                    prev = decoded
                        .iter()
                        .map(|d| (d.host_sym, PrevBody::of(d.body_offset, &d.body)))
                        .collect();
                    weeks.push(WeekData {
                        week: prefix.week,
                        date_days: prefix.date_days,
                        records: decoded.into_iter().map(|d| d.record).collect(),
                    });
                }
                kind::FINALIZE => {
                    filtered_out = Some(format::decode_finalize(&seg.payload, &mut table, base)?);
                }
                _ => return Err(StoreError::corrupt(seg.offset, "unexpected segment kind")),
            }
            metas.push(seg.meta(week_no));
        }
        let genesis = genesis.ok_or(StoreError::MissingGenesis)?;
        for (expected, week) in weeks.iter().enumerate() {
            if week.week != expected {
                return Err(StoreError::WeekOutOfOrder {
                    expected,
                    got: week.week,
                });
            }
        }

        let mut writer = StoreWriter {
            file,
            path: path.to_path_buf(),
            table,
            metas,
            genesis,
            next_week: weeks.len(),
            finalized: filtered_out.is_some(),
            data_end: scanned.data_end,
            prev,
            pending: None,
            stats: WriterStats {
                torn_bytes_recovered: scanned.torn_bytes,
                ..WriterStats::default()
            },
        };
        // Drop the torn tail (and any stale footer) and re-establish a
        // clean, indexed end of file.
        writer.rewrite_footer()?;
        Ok(Resumed {
            writer,
            weeks,
            filtered_out,
            torn_bytes: scanned.torn_bytes,
        })
    }

    /// Appends one weekly snapshot. Weeks must arrive in order, starting
    /// at 0 (or at the first uncommitted week after a resume).
    ///
    /// Equivalent to `begin_week` + one `append_records` + `end_week`;
    /// streaming callers use those directly to commit a week in batches
    /// without ever materializing its [`WeekData`].
    pub fn commit_week(&mut self, week: &WeekData) -> Result<CommitInfo, StoreError> {
        self.begin_week(week.week, week.date_days)?;
        self.append_records(&week.records)?;
        self.end_week()
    }

    /// Opens an incremental week commit. Records then arrive in
    /// host-sorted batches via [`StoreWriter::append_records`], and
    /// [`StoreWriter::end_week`] seals and appends the segment.
    pub fn begin_week(&mut self, week: usize, date_days: i64) -> Result<(), StoreError> {
        if self.finalized {
            return Err(StoreError::AlreadyFinalized);
        }
        if self.pending.is_some() {
            return Err(StoreError::Mismatch("a week commit is already open".into()));
        }
        if week != self.next_week {
            return Err(StoreError::WeekOutOfOrder {
                expected: self.next_week,
                got: week,
            });
        }
        self.pending = Some(WeekEncoder::begin(week, date_days, &mut self.table));
        Ok(())
    }

    /// Encodes a batch of records onto the open week commit. Batches must
    /// be host-sorted across the whole week (the canonical record order).
    pub fn append_records(
        &mut self,
        records: &[crate::record::DomainRecord],
    ) -> Result<(), StoreError> {
        let enc = self
            .pending
            .as_mut()
            .ok_or_else(|| StoreError::Mismatch("no week commit is open".into()))?;
        enc.append(records, &mut self.table, &self.prev);
        Ok(())
    }

    /// Seals the open week commit: appends the segment, rewrites the
    /// footer, and advances the delta state.
    pub fn end_week(&mut self) -> Result<CommitInfo, StoreError> {
        let enc = self
            .pending
            .take()
            .ok_or_else(|| StoreError::Mismatch("no week commit is open".into()))?;
        let week = enc.week();
        let records = enc.records_staged();
        let _phase = webvuln_trace::phase_scope("store");
        let _week = webvuln_trace::week_scope(week as u64);
        let encoded = enc.finish(&self.table, self.data_end);
        let envelope = encode_segment(kind::WEEK, &encoded.payload);
        self.append_segment(&envelope, kind::WEEK, week)?;

        self.prev = encoded.next_prev;
        self.next_week += 1;
        self.stats.segments_written += 1;
        self.stats.delta_hits += encoded.delta_hits;
        self.stats.delta_misses += records - encoded.delta_hits;
        self.stats.raw_bytes += encoded.raw_bytes;
        self.stats.encoded_bytes += encoded.encoded_bytes;
        // Synthetic cost: proportional to bytes appended, never wall time,
        // so traces stay byte-identical across runs and thread counts.
        webvuln_trace::emit(
            "store.commit",
            "",
            &format!(
                "records={} delta_hits={} segment_bytes={}",
                records,
                encoded.delta_hits,
                envelope.len()
            ),
            envelope.len() as u64 * 200,
            webvuln_trace::Sink::Export,
        );
        Ok(CommitInfo {
            week,
            records,
            delta_hits: encoded.delta_hits,
            raw_bytes: encoded.raw_bytes,
            encoded_bytes: encoded.encoded_bytes,
            segment_bytes: envelope.len() as u64,
        })
    }

    /// Writes the finalize segment (the inaccessibility-filter verdict)
    /// and closes the store to further commits.
    pub fn finalize(&mut self, filtered_out: &[String]) -> Result<(), StoreError> {
        if self.finalized {
            return Err(StoreError::AlreadyFinalized);
        }
        if self.pending.is_some() {
            return Err(StoreError::Mismatch(
                "cannot finalize with a week commit open".into(),
            ));
        }
        let _phase = webvuln_trace::phase_scope("store");
        webvuln_trace::emit(
            "store.finalize.begin",
            "",
            &format!("filtered_out={}", filtered_out.len()),
            0,
            webvuln_trace::Sink::RingOnly,
        );
        let _ = webvuln_failpoint::failpoint!("store.finalize")?;
        let payload = format::encode_finalize(filtered_out, &mut self.table);
        let envelope = encode_segment(kind::FINALIZE, &payload);
        self.append_segment(&envelope, kind::FINALIZE, 0)?;
        self.finalized = true;
        webvuln_trace::emit(
            "store.finalize",
            "",
            &format!("filtered_out={}", filtered_out.len()),
            envelope.len() as u64 * 200,
            webvuln_trace::Sink::Export,
        );
        Ok(())
    }

    fn append_segment(
        &mut self,
        envelope: &[u8],
        seg_kind: u8,
        week: usize,
    ) -> Result<(), StoreError> {
        let offset = self.data_end;
        // The envelope is written in two halves around the mid-write
        // fail-point, so an injected crash leaves a genuinely torn
        // segment (and a stale footer) for resume to truncate.
        let (head, tail) = envelope.split_at(envelope.len() / 2);
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(head))
            .map_err(|e| StoreError::io(&self.path, e))?;
        let _ = webvuln_failpoint::failpoint!("store.segment.mid_write")?;
        self.file
            .write_all(tail)
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.data_end = offset + envelope.len() as u64;
        self.metas.push(SegmentMeta {
            kind: seg_kind,
            week,
            offset,
            env_len: envelope.len() as u64,
        });
        self.rewrite_footer()
    }

    fn rewrite_footer(&mut self) -> Result<(), StoreError> {
        let _ = webvuln_failpoint::failpoint!("store.footer.rewrite")?;
        let footer = encode_footer(&self.metas);
        self.file
            .seek(SeekFrom::Start(self.data_end))
            .and_then(|_| self.file.write_all(&footer))
            .and_then(|_| self.file.set_len(self.data_end + footer.len() as u64))
            .and_then(|_| self.file.sync_data())
            .map_err(|e| StoreError::io(&self.path, e))
    }

    /// Truncates the store back to its first `weeks` committed weeks,
    /// dropping later weeks and any finalize segment, then reopens it.
    ///
    /// Consumes the writer: dropping segments invalidates the file-wide
    /// interner (their string blocks assigned symbols in writer order),
    /// so the surviving prefix is rescanned from disk to rebuild the
    /// table and delta state. The sharded store uses this to roll a
    /// shard that ran ahead of the manifest back to the committed epoch.
    pub fn truncate_to_weeks(self, weeks: usize) -> Result<Resumed, StoreError> {
        if weeks > self.next_week {
            return Err(StoreError::Mismatch(format!(
                "cannot truncate to {weeks} weeks: only {} committed",
                self.next_week
            )));
        }
        let mut cut = format::HEADER_LEN;
        let mut kept = 0usize;
        for meta in &self.metas {
            match meta.kind {
                kind::GENESIS => cut = meta.offset + meta.env_len,
                kind::WEEK if kept < weeks => {
                    kept += 1;
                    cut = meta.offset + meta.env_len;
                }
                _ => break,
            }
        }
        let StoreWriter { file, path, .. } = self;
        file.set_len(cut)
            .and_then(|_| file.sync_data())
            .map_err(|e| StoreError::io(&path, e))?;
        drop(file);
        StoreWriter::resume(&path)
    }

    /// The number of weeks committed so far (including recovered ones).
    pub fn weeks_committed(&self) -> usize {
        self.next_week
    }

    /// Whether the store carries a finalize segment.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// The study metadata this store was created with.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Running totals for telemetry.
    pub fn stats(&self) -> WriterStats {
        self.stats
    }
}
