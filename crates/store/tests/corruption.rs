//! Corruption suite: every damaged-file shape must surface as a typed
//! error or clean tail recovery — never a panic, never silent garbage.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use webvuln_store::{DomainRecord, Genesis, StoreError, StoreReader, StoreWriter, WeekData};

struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let path = std::env::temp_dir().join(format!(
            "wvstore-corrupt-{}-{tag}.wvstore",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        TempStore { path }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn record(host: &str, week: usize) -> DomainRecord {
    DomainRecord {
        host: host.to_string(),
        status: Some(200),
        body_len: 1_000 + week as u64,
        page: None,
    }
}

fn week(week_no: usize, domains: usize) -> WeekData {
    WeekData {
        week: week_no,
        date_days: 17_600 + 7 * week_no as i64,
        records: (0..domains)
            .map(|i| record(&format!("host{i:02}.example"), week_no))
            .collect(),
    }
}

/// Writes a healthy 3-week store and returns its byte image.
fn healthy_store(path: &Path) -> Vec<u8> {
    let genesis = Genesis {
        start_days: 17_600,
        weeks_total: 5,
        ranks: (0..6)
            .map(|i| (format!("host{i:02}.example"), (i + 1) as u64))
            .collect(),
    };
    let mut writer = StoreWriter::create(path, genesis).expect("create");
    for w in 0..3 {
        writer.commit_week(&week(w, 6)).expect("commit");
    }
    std::fs::read(path).expect("read back")
}

#[test]
fn truncation_mid_record_drops_only_the_torn_week() {
    let tmp = TempStore::new("truncate");
    let bytes = healthy_store(&tmp.path);
    // Cut the file inside the last week segment (well before the footer).
    std::fs::write(&tmp.path, &bytes[..bytes.len() * 3 / 4]).expect("truncate");

    let reader = StoreReader::open(&tmp.path).expect("open recovers");
    assert!(reader.weeks_committed() < 3, "torn week dropped");
    assert!(reader.torn_bytes() > 0);
    assert!(!reader.had_footer());
    for w in 0..reader.weeks_committed() {
        assert_eq!(reader.week(w).expect("intact week"), week(w, 6));
    }
}

#[test]
fn every_truncation_point_is_survivable() {
    let tmp = TempStore::new("alltruncs");
    let bytes = healthy_store(&tmp.path);
    // Every cut at or after the header must open (with recovery); cuts
    // into the header itself must yield BadMagic. Nothing may panic.
    for cut in (0..bytes.len()).step_by(7) {
        std::fs::write(&tmp.path, &bytes[..cut]).expect("cut");
        match StoreReader::open(&tmp.path) {
            Ok(reader) => {
                assert!(reader.weeks_committed() <= 3);
            }
            Err(StoreError::BadMagic | StoreError::MissingGenesis | StoreError::Corrupt { .. }) => {
            }
            Err(other) => panic!("unexpected error at cut {cut}: {other}"),
        }
    }
}

#[test]
fn flipped_crc_byte_is_detected() {
    let tmp = TempStore::new("crcflip");
    let bytes = healthy_store(&tmp.path);
    // Flip one byte in the middle of the file: the containing segment's
    // CRC fails and the scan truncates there.
    let mut evil = bytes.clone();
    let mid = evil.len() / 2;
    evil[mid] ^= 0x40;
    std::fs::write(&tmp.path, &evil).expect("write");

    let reader = StoreReader::open(&tmp.path).expect("open recovers");
    assert!(reader.weeks_committed() < 3);
    assert!(reader.torn_bytes() > 0);
    // Whatever survived decodes exactly.
    reader.verify().expect("surviving prefix verifies");
}

#[test]
fn wrong_format_version_is_a_typed_error() {
    let tmp = TempStore::new("version");
    let bytes = healthy_store(&tmp.path);
    let mut evil = bytes.clone();
    evil[8] = 99; // version field, little-endian low byte
    std::fs::write(&tmp.path, &evil).expect("write");
    match StoreReader::open(&tmp.path) {
        Err(StoreError::UnsupportedVersion(99)) => {}
        other => panic!(
            "expected UnsupportedVersion, got {other:?}",
            other = other.err()
        ),
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let tmp = TempStore::new("magic");
    std::fs::write(&tmp.path, b"definitely not a store file").expect("write");
    assert!(matches!(
        StoreReader::open(&tmp.path),
        Err(StoreError::BadMagic)
    ));
    std::fs::write(&tmp.path, b"short").expect("write");
    assert!(matches!(
        StoreReader::open(&tmp.path),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn torn_footer_recovers_every_week() {
    let tmp = TempStore::new("footer");
    let bytes = healthy_store(&tmp.path);
    // Drop the last 5 bytes: the footer trailer is torn but all data
    // segments are intact.
    std::fs::write(&tmp.path, &bytes[..bytes.len() - 5]).expect("truncate");
    let reader = StoreReader::open(&tmp.path).expect("open");
    assert_eq!(reader.weeks_committed(), 3);
    assert!(!reader.had_footer());
    assert!(reader.torn_bytes() > 0);
    reader.verify().expect("all weeks verify");
}

#[test]
fn garbage_after_footer_is_dropped() {
    let tmp = TempStore::new("trailing");
    let mut bytes = healthy_store(&tmp.path);
    bytes.extend_from_slice(b"\xde\xad\xbe\xef trailing junk");
    std::fs::write(&tmp.path, &bytes).expect("write");
    let reader = StoreReader::open(&tmp.path).expect("open");
    assert_eq!(reader.weeks_committed(), 3);
    assert!(reader.torn_bytes() > 0);
}

#[test]
fn resume_truncates_torn_tail_and_continues() {
    let tmp = TempStore::new("resume");
    let bytes = healthy_store(&tmp.path);
    // Simulate a crash mid-commit: walk the tear backwards until it bites
    // into a data segment (small tears only clip the rewritable footer).
    let mut cut = bytes.len() - 10;
    let resumed = loop {
        std::fs::write(&tmp.path, &bytes[..cut]).expect("tear");
        let resumed = StoreWriter::resume(&tmp.path).expect("resume");
        if resumed.writer.weeks_committed() < 3 {
            break resumed;
        }
        cut -= 10;
    };
    assert!(resumed.torn_bytes > 0);
    let committed = resumed.writer.weeks_committed();
    let mut writer = resumed.writer;
    for w in committed..3 {
        writer.commit_week(&week(w, 6)).expect("recommit");
    }
    writer.finalize(&[]).expect("finalize");

    let reader = StoreReader::open(&tmp.path).expect("open");
    assert_eq!(reader.weeks_committed(), 3);
    assert_eq!(reader.torn_bytes(), 0);
    assert!(reader.had_footer());
    for w in 0..3 {
        assert_eq!(reader.week(w).expect("week"), week(w, 6));
    }
}

#[test]
fn flipped_payload_byte_inside_crc_scope_never_decodes() {
    let tmp = TempStore::new("payload");
    let bytes = healthy_store(&tmp.path);
    // Flip every 13th byte (fresh copy each time): either the CRC drops
    // the segment or (for footer/trailer bytes) recovery kicks in. The
    // surviving prefix must always verify; nothing may panic.
    for pos in (16..bytes.len()).step_by(13) {
        let mut evil = bytes.clone();
        evil[pos] ^= 0x01;
        std::fs::write(&tmp.path, &evil).expect("write");
        if let Ok(reader) = StoreReader::open(&tmp.path) {
            reader.verify().expect("surviving prefix verifies");
        }
    }
}

#[test]
fn io_errors_carry_the_path() {
    let missing = Path::new("/nonexistent/dir/x.wvstore");
    match StoreReader::open(missing) {
        Err(StoreError::Io { path, .. }) => assert!(path.contains("x.wvstore")),
        other => panic!("expected Io error, got {other:?}", other = other.err()),
    }
}

#[test]
fn header_only_file_is_missing_genesis() {
    let tmp = TempStore::new("headeronly");
    let bytes = healthy_store(&tmp.path);
    std::fs::write(&tmp.path, &bytes[..16]).expect("header only");
    assert!(matches!(
        StoreReader::open(&tmp.path),
        Err(StoreError::MissingGenesis)
    ));
    assert!(matches!(
        StoreWriter::resume(&tmp.path),
        Err(StoreError::MissingGenesis)
    ));
}

#[test]
fn in_place_edit_of_committed_file_is_caught() {
    // Belt-and-braces: open a healthy store, rewrite one body byte
    // through the file (bypassing the writer), and confirm detection.
    let tmp = TempStore::new("inplace");
    let bytes = healthy_store(&tmp.path);
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&tmp.path)
        .expect("open rw");
    let mut all = Vec::new();
    file.read_to_end(&mut all).expect("read");
    // Flip a byte one quarter in (inside an early data segment).
    let pos = bytes.len() / 4;
    file.seek(SeekFrom::Start(pos as u64)).expect("seek");
    file.write_all(&[all[pos] ^ 0xFF]).expect("flip");
    drop(file);
    // Depending on which segment the flip hits, either the store opens
    // with that segment (and everything after it) dropped, or — if the
    // genesis itself was damaged — open fails with a typed error.
    match StoreReader::open(&tmp.path) {
        Ok(reader) => assert!(reader.weeks_committed() < 3, "damaged segment dropped"),
        Err(StoreError::MissingGenesis | StoreError::Corrupt { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}
