//! # webvuln-telemetry
//!
//! The observability substrate of the `webvuln` pipeline. The paper's
//! crawl ran for 201 weeks over 157.2M pages; a run of that scale is only
//! debuggable with per-stage accounting — which phase burned the time,
//! which hosts faulted, how many pattern-VM steps each page cost. This
//! crate provides the primitives every other layer records into:
//!
//! * [`Counter`] / [`Gauge`] — single atomic adds, safe to hammer from
//!   every crawler worker thread.
//! * [`Histogram`] — fixed power-of-two buckets with lock-free recording
//!   and p50/p90/p99 estimation; used for per-request latency.
//! * [`Span`] — hierarchical wall-clock timers (`crawl`, `crawl/week`)
//!   that aggregate into per-phase totals on drop.
//! * [`Registry`] — names the metrics and snapshots them. Either inject
//!   one per run (isolated, exact) or use [`Registry::global`] for
//!   ambient instrumentation.
//! * [`Progress`] — an opt-in callback (e.g. [`StderrProgress`]) so a
//!   201-week crawl emits weekly progress lines instead of running dark.
//! * [`Snapshot`] — a point-in-time copy of everything, rendered as a
//!   human-readable table or machine-readable JSON.
//!
//! The crate is dependency-free (std only): the instrumentation layer
//! must never be the thing that breaks the build or perturbs the numbers
//! it measures.
//!
//! ```
//! use webvuln_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let fetches = telemetry.registry().counter("net.crawler.fetches_total");
//! {
//!     let _phase = telemetry.registry().span("crawl");
//!     fetches.add(3);
//! }
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("net.crawler.fetches_total"), Some(3));
//! assert_eq!(snap.span("crawl").unwrap().count, 1);
//! assert!(snap.to_json().contains("\"crawl\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod progress;
mod registry;
mod snapshot;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use progress::{NullProgress, Progress, ProgressEvent, StderrProgress};
pub use registry::Registry;
pub use snapshot::{fmt_nanos, HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::Span;

use std::sync::Arc;

/// A cheap-to-clone handle bundling a metric [`Registry`] with an optional
/// [`Progress`] reporter — the single value the pipeline threads through
/// its stages.
///
/// [`Telemetry::new`] gives every run its own registry, so counters in one
/// study never bleed into another (important for tests and for servers
/// running many studies). [`Telemetry::global`] shares the process-wide
/// registry instead.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
    progress: Arc<dyn Progress>,
}

impl Telemetry {
    /// A fresh, isolated registry with no progress reporting.
    pub fn new() -> Telemetry {
        Telemetry {
            registry: Arc::new(Registry::new()),
            progress: Arc::new(NullProgress),
        }
    }

    /// A handle onto the process-wide global registry.
    pub fn global() -> Telemetry {
        Telemetry {
            registry: Registry::global_arc(),
            progress: Arc::new(NullProgress),
        }
    }

    /// Replaces the progress reporter.
    pub fn with_progress(mut self, progress: Arc<dyn Progress>) -> Telemetry {
        self.progress = progress;
        self
    }

    /// Routes progress events to stderr — one line per event.
    pub fn with_stderr_progress(self) -> Telemetry {
        self.with_progress(Arc::new(StderrProgress))
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The underlying registry as a shared handle.
    pub fn registry_arc(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Opens a top-level span; equivalent to `registry().span(name)`.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.registry.span(name)
    }

    /// Emits one progress event to the configured reporter.
    pub fn emit(&self, phase: &str, current: u64, total: u64, detail: &str) {
        self.progress.on_event(&ProgressEvent {
            phase,
            current,
            total,
            detail,
        });
    }

    /// Snapshots every metric in the registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_isolates_registries() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.registry().counter("x").add(5);
        assert_eq!(a.snapshot().counter("x"), Some(5));
        assert_eq!(b.snapshot().counter("x"), None);
    }

    #[test]
    fn global_handles_share_state() {
        let a = Telemetry::global();
        let b = Telemetry::global();
        let before = a.snapshot().counter("lib.test.global_shared").unwrap_or(0);
        a.registry().counter("lib.test.global_shared").add(2);
        b.registry().counter("lib.test.global_shared").add(3);
        let after = b.snapshot().counter("lib.test.global_shared").unwrap_or(0);
        assert!(after >= before + 5);
    }

    #[test]
    fn emit_reaches_custom_reporter() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct CountingReporter(AtomicU64);
        impl Progress for CountingReporter {
            fn on_event(&self, event: &ProgressEvent<'_>) {
                assert_eq!(event.phase, "crawl");
                assert_eq!(event.total, 201);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let reporter = Arc::new(CountingReporter(AtomicU64::new(0)));
        let telemetry = Telemetry::new().with_progress(Arc::<CountingReporter>::clone(&reporter));
        for week in 0..5 {
            telemetry.emit("crawl", week + 1, 201, "ok");
        }
        assert_eq!(reporter.0.load(Ordering::Relaxed), 5);
    }
}
