//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are thin `Arc`s over atomics, so handles are cheap to clone
//! into worker threads and every operation is a single relaxed atomic
//! instruction — recording must cost less than the work it measures.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A new counter at zero, not attached to any registry.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (e.g. in-flight requests).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A new gauge at zero, not attached to any registry.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i`, i.e. `[2^(i-1), 2^i)` (bucket 0 holds exactly zero).
pub const HISTOGRAM_BUCKETS: usize = 64;

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket (power-of-two) histogram with lock-free recording.
///
/// Quantiles are estimated as the upper bound of the bucket containing the
/// requested rank — at most 2x off, which is plenty for latency triage —
/// and clamped to the true observed maximum.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A new empty histogram, not attached to any registry.
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        let count = self.count();
        if count == 0 {
            0
        } else {
            self.sum() / count
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, sorted by
    /// bound. Bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 holds exactly
    /// zero; the top bucket's bound is `u64::MAX`), so the pairs fully
    /// reconstruct the recorded distribution at bucket resolution —
    /// empty buckets are implied by the fixed power-of-two boundaries.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_upper_bound(i), count))
            })
            .collect()
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest observation,
    /// clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_index(value: u64) -> usize {
    // Bit length 0..=64; the top bucket absorbs the (rare) 64-bit values.
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share state");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn multi_thread_counter_sums_exactly() {
        let c = Counter::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn multi_thread_histogram_counts_exactly() {
        let h = Histogram::new();
        let threads = 8u64;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per_thread);
        let n = threads * per_thread;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.max(), n - 1);
    }

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn buckets_expose_the_raw_distribution() {
        let h = Histogram::new();
        for v in [0, 0, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let buckets = h.buckets();
        // (bound, count): zeros, exactly-one, [2,4), [1024,2048), top.
        assert_eq!(
            buckets,
            vec![(0, 2), (1, 1), (3, 2), (2047, 1), (u64::MAX, 1)]
        );
        // Counts reconcile with the summary statistics.
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert!(Histogram::new().buckets().is_empty());
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Power-of-two buckets: estimates are within 2x of the true rank.
        assert!((500..=1000).contains(&p50), "p50 estimate {p50}");
        assert!((990..=1000).contains(&p99), "p99 estimate {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3_000);
    }
}
