//! Opt-in progress reporting for long runs.
//!
//! The paper's crawl spanned 201 weeks; a reproduction run over thousands
//! of domains takes minutes and should not run dark. Pipeline stages emit
//! [`ProgressEvent`]s through a [`Progress`] implementation chosen by the
//! caller — [`StderrProgress`] for CLI runs, [`NullProgress`] (the
//! default) for tests and embedding.

/// One progress update from a pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct ProgressEvent<'a> {
    /// The pipeline phase emitting the event (e.g. `"crawl"`).
    pub phase: &'a str,
    /// Completed units (1-based).
    pub current: u64,
    /// Total units expected (0 when unknown).
    pub total: u64,
    /// Free-form detail (e.g. `"2018-03-05: 483 pages"`).
    pub detail: &'a str,
}

/// Receives progress events. Implementations must be cheap and
/// non-blocking — they run inline with the pipeline.
pub trait Progress: Send + Sync {
    /// Handles one event.
    fn on_event(&self, event: &ProgressEvent<'_>);
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl Progress for NullProgress {
    fn on_event(&self, _event: &ProgressEvent<'_>) {}
}

/// Prints one line per event to stderr:
/// `[crawl  12/201] 2018-05-21: 483 pages`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgress;

impl Progress for StderrProgress {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        if event.total > 0 {
            eprintln!(
                "[{} {:>3}/{}] {}",
                event.phase, event.current, event.total, event.detail
            );
        } else {
            eprintln!("[{} {}] {}", event.phase, event.current, event.detail);
        }
    }
}

impl<F> Progress for F
where
    F: Fn(&ProgressEvent<'_>) + Send + Sync,
{
    fn on_event(&self, event: &ProgressEvent<'_>) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn closures_implement_progress() {
        let seen: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
        let reporter = |event: &ProgressEvent<'_>| {
            seen.lock()
                .expect("lock")
                .push((event.phase.to_string(), event.current));
        };
        for week in 1..=3 {
            reporter.on_event(&ProgressEvent {
                phase: "crawl",
                current: week,
                total: 3,
                detail: "",
            });
        }
        let seen = seen.into_inner().expect("lock");
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], ("crawl".to_string(), 3));
    }

    #[test]
    fn null_progress_is_silent() {
        NullProgress.on_event(&ProgressEvent {
            phase: "x",
            current: 1,
            total: 1,
            detail: "ignored",
        });
    }
}
