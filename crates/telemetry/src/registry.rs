//! The metric registry: names metrics, hands out cheap handles, and
//! snapshots everything at once.
//!
//! Registration (`counter("name")`) takes a short mutex hold; the returned
//! handle then records lock-free forever after. Hot paths register once
//! and keep the handle — never look up a metric per event.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

#[derive(Clone, Copy)]
struct SpanStat {
    /// Order of first entry — keeps the phase table in pipeline order.
    seq: usize,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// A named collection of metrics. Create one per run for exact, isolated
/// accounting, or use [`Registry::global`] for ambient instrumentation.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry used when no registry is injected.
    pub fn global() -> &'static Registry {
        &**Registry::global_cell()
    }

    /// The process-wide registry as a shared handle.
    pub fn global_arc() -> Arc<Registry> {
        Arc::clone(Registry::global_cell())
    }

    fn global_cell() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    /// Gets or creates the counter `name` and returns a recording handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge `name` and returns a recording handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram `name` and returns a recording handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Opens a top-level span named `name`; its wall time is recorded here
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::new(self, name.to_string())
    }

    pub(crate) fn record_span(&self, path: &str, nanos: u64) {
        let mut map = self.spans.lock().expect("registry lock");
        let next_seq = map.len();
        let stat = map.entry(path.to_string()).or_insert(SpanStat {
            seq: next_seq,
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(nanos);
        stat.min_ns = stat.min_ns.min(nanos);
        stat.max_ns = stat.max_ns.max(nanos);
    }

    /// A point-in-time copy of every metric. Counters/histograms written
    /// concurrently with the snapshot land in it or in the next one —
    /// never lost.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
                max: h.max(),
                buckets: h.buckets(),
            })
            .collect();
        let mut spans: Vec<(usize, SpanSnapshot)> = self
            .spans
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(path, stat)| {
                (
                    stat.seq,
                    SpanSnapshot {
                        path: path.clone(),
                        count: stat.count,
                        total: Duration::from_nanos(stat.total_ns),
                        mean: Duration::from_nanos(stat.total_ns / stat.count.max(1)),
                        min: Duration::from_nanos(if stat.count == 0 { 0 } else { stat.min_ns }),
                        max: Duration::from_nanos(stat.max_ns),
                    },
                )
            })
            .collect();
        spans.sort_by_key(|(seq, _)| *seq);
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: spans.into_iter().map(|(_, s)| s).collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_shared_handle() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.add(2);
        b.add(3);
        assert_eq!(registry.snapshot().counter("hits"), Some(5));
    }

    #[test]
    fn distinct_names_are_independent() {
        let registry = Registry::new();
        registry.counter("a").inc();
        registry.counter("b").add(7);
        registry.gauge("depth").set(-4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.counter("b"), Some(7));
        assert_eq!(snap.gauge("depth"), Some(-4));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn concurrent_registration_and_recording() {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = &registry;
                scope.spawn(move || {
                    // Deliberately re-register every iteration: the handle
                    // must always alias the same underlying atomic.
                    for _ in 0..1_000 {
                        registry.counter("contended").inc();
                        registry.histogram("lat").record(42);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("contended"), Some(8_000));
        let lat = snap.histogram("lat").expect("histogram exists");
        assert_eq!(lat.count, 8_000);
        assert_eq!(lat.mean, 42);
    }

    #[test]
    fn snapshot_summarizes_histograms() {
        let registry = Registry::new();
        let h = registry.histogram("bytes");
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let bytes = snap.histogram("bytes").expect("exists");
        assert_eq!(bytes.count, 4);
        assert_eq!(bytes.sum, 1500);
        assert_eq!(bytes.max, 800);
        assert!(bytes.p50 >= 200 && bytes.p99 <= 800);
    }
}
