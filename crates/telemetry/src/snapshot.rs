//! Point-in-time metric snapshots with text and JSON rendering.
//!
//! JSON is hand-rolled (stable key order, integer nanoseconds) so the
//! telemetry crate stays dependency-free; consumers that want typed access
//! parse it with whatever JSON stack they already have.

use std::fmt::Write as _;
use std::time::Duration;

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation (0 when empty).
    pub mean: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets as `(upper_bound, count)` pairs, sorted by
    /// bound (see [`Histogram::buckets`](crate::Histogram::buckets)).
    /// Empty buckets are implied by the fixed power-of-two boundaries,
    /// so these pairs carry the full distribution at bucket resolution.
    pub buckets: Vec<(u64, u64)>,
}

/// Aggregated timings of one span path at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-separated span path (`collect/crawl`).
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall time across entries.
    pub total: Duration,
    /// Mean wall time per entry.
    pub mean: Duration,
    /// Shortest entry.
    pub min: Duration,
    /// Longest entry.
    pub max: Duration,
}

/// Everything a [`Registry`](crate::Registry) held at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span timings, in order of first entry (pipeline order).
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a span by full path.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the snapshot as a human-readable report section: the
    /// phase-timing table first, then counters, gauges, and histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(out, "Phase timings");
            let _ = writeln!(
                out,
                "  {:<34} {:>7} {:>12} {:>12} {:>12}",
                "span", "calls", "total", "mean", "max"
            );
            for span in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>7} {:>12} {:>12} {:>12}",
                    span.path,
                    span.count,
                    fmt_nanos(span.total.as_nanos() as u64),
                    fmt_nanos(span.mean.as_nanos() as u64),
                    fmt_nanos(span.max.as_nanos() as u64),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "Counters");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {value:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "Gauges");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {value:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "Histograms");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<34} count={} mean={} p50={} p90={} p99={} max={}",
                    h.name,
                    h.count,
                    fmt_nanos(h.mean),
                    fmt_nanos(h.p50),
                    fmt_nanos(h.p90),
                    fmt_nanos(h.p99),
                    fmt_nanos(h.max),
                );
            }
        }
        out
    }

    /// Serializes the snapshot as one JSON object with stable key order.
    /// Durations are integer nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(name, &mut out);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(name, &mut out);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&h.name, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max
            );
            out.push_str(",\"buckets\":[");
            for (j, (le, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{le},\"count\":{count}}}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            json_string(&s.path, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                s.count,
                s.total.as_nanos(),
                s.mean.as_nanos(),
                s.min.as_nanos(),
                s.max.as_nanos()
            );
        }
        out.push_str("]}");
        out
    }
}

/// Formats a nanosecond quantity with a human-friendly unit
/// (`421ns`, `3.2µs`, `15.4ms`, `2.41s`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn populated() -> Snapshot {
        let registry = Registry::new();
        registry.counter("net.fetches_total").add(120);
        registry.counter("fp.hits_url_total").add(88);
        registry.gauge("net.inflight").set(3);
        let h = registry.histogram("net.fetch_latency_ns");
        for v in [1_000, 2_000, 4_000, 1_000_000] {
            h.record(v);
        }
        {
            let gen = registry.span("generate");
            let _child = gen.child("render");
        }
        let _ = registry.span("crawl");
        registry.snapshot()
    }

    #[test]
    fn render_contains_all_sections() {
        let text = populated().render();
        assert!(text.contains("Phase timings"), "{text}");
        assert!(text.contains("generate"), "{text}");
        assert!(text.contains("generate/render"), "{text}");
        assert!(text.contains("Counters"), "{text}");
        assert!(text.contains("net.fetches_total"), "{text}");
        assert!(text.contains("120"), "{text}");
        assert!(text.contains("Histograms"), "{text}");
        assert!(text.contains("p99="), "{text}");
        // Raw buckets are JSON-only; the text renderer keeps its shape.
        assert!(!text.contains("buckets"), "{text}");
    }

    #[test]
    fn json_shape_is_stable_and_escaped() {
        let json = populated().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"net.fetches_total\":120"), "{json}");
        assert!(json.contains("\"gauges\":{\"net.inflight\":3}"), "{json}");
        assert!(json.contains("\"histograms\":[{\"name\":"), "{json}");
        // Raw bucket boundaries and counts ride along with the summary:
        // 1000/2000/4000/1000000 land in four distinct power-of-two
        // buckets, one observation each.
        assert!(
            json.contains(
                "\"buckets\":[{\"le\":1023,\"count\":1},{\"le\":2047,\"count\":1},\
                 {\"le\":4095,\"count\":1},{\"le\":1048575,\"count\":1}]"
            ),
            "{json}"
        );
        assert!(json.contains("\"spans\":["), "{json}");
        assert!(json.contains("\"path\":\"generate/render\""), "{json}");
        assert!(json.ends_with("]}"), "{json}");

        let mut escaped = String::new();
        json_string("a\"b\\c\nd\u{1}", &mut escaped);
        assert_eq!(escaped, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.render(), "");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":[],\"spans\":[]}"
        );
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(421), "421ns");
        assert_eq!(fmt_nanos(3_200), "3.2µs");
        assert_eq!(fmt_nanos(15_400_000), "15.4ms");
        assert_eq!(fmt_nanos(2_410_000_000), "2.41s");
    }
}
