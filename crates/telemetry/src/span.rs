//! Hierarchical wall-clock span timers.
//!
//! A [`Span`] measures the time from creation to drop and records it into
//! its [`Registry`](crate::Registry) under a `/`-separated path. Children
//! created with [`Span::child`] extend the path (`collect/crawl`), so a
//! phase entered once per week aggregates into one row with `count = 201`.

use crate::registry::Registry;
use std::time::{Duration, Instant};

/// A running timer; records its elapsed wall time into the registry when
/// dropped (or explicitly via [`Span::finish`]).
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'r> {
    registry: &'r Registry,
    path: String,
    start: Instant,
    recorded: bool,
}

impl<'r> Span<'r> {
    pub(crate) fn new(registry: &'r Registry, path: String) -> Span<'r> {
        Span {
            registry,
            path,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Opens a child span `self.path + "/" + name`.
    pub fn child(&self, name: &str) -> Span<'r> {
        Span::new(self.registry, format!("{}/{}", self.path, name))
    }

    /// The full `/`-separated path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Time elapsed since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now and returns its duration.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.record();
        self.recorded = true;
        elapsed
    }

    fn record(&self) -> Duration {
        let elapsed = self.start.elapsed();
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.registry.record_span(&self.path, nanos);
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.recorded {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = Registry::new();
        {
            let _span = registry.span("phase");
        }
        let snap = registry.snapshot();
        let phase = snap.span("phase").expect("recorded");
        assert_eq!(phase.count, 1);
    }

    #[test]
    fn finish_records_exactly_once() {
        let registry = Registry::new();
        let span = registry.span("once");
        let elapsed = span.finish();
        let snap = registry.snapshot();
        let once = snap.span("once").expect("recorded");
        assert_eq!(once.count, 1);
        assert!(once.total <= elapsed.max(once.total));
    }

    #[test]
    fn children_extend_the_path() {
        let registry = Registry::new();
        {
            let outer = registry.span("collect");
            for _ in 0..3 {
                let _inner = outer.child("crawl");
            }
        }
        let snap = registry.snapshot();
        assert_eq!(snap.span("collect").expect("outer").count, 1);
        assert_eq!(snap.span("collect/crawl").expect("inner").count, 3);
    }

    #[test]
    fn repeated_entries_aggregate() {
        let registry = Registry::new();
        for _ in 0..5 {
            let _span = registry.span("weekly");
        }
        let snap = registry.snapshot();
        let weekly = snap.span("weekly").expect("recorded");
        assert_eq!(weekly.count, 5);
        assert!(weekly.min <= weekly.max);
        assert!(weekly.total >= weekly.max);
    }

    #[test]
    fn spans_record_from_many_threads() {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = &registry;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _span = registry.span("parallel");
                    }
                });
            }
        });
        assert_eq!(
            registry.snapshot().span("parallel").expect("rows").count,
            800
        );
    }

    #[test]
    fn snapshot_orders_spans_by_first_entry() {
        let registry = Registry::new();
        for name in ["generate", "crawl", "fingerprint", "join", "analyze"] {
            let _span = registry.span(name);
        }
        let snap = registry.snapshot();
        let order: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            order,
            vec!["generate", "crawl", "fingerprint", "join", "analyze"]
        );
    }
}
