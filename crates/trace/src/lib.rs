//! Causal event tracing, flight recording, and cost attribution for the
//! study pipeline.
//!
//! Aggregate counters (`webvuln-telemetry`) say *that* a crawl is slow or
//! failing; this crate says *which* domain, fingerprint pattern, or retry
//! storm is responsible. It provides four cooperating pieces:
//!
//! * **Causal events** carrying a task context — phase, week, task index,
//!   worker — held in a thread-local and *propagated across the
//!   work-stealing executor*: `webvuln-exec` captures the caller's context
//!   with [`capture`] and re-installs it with [`task_scope`] on whichever
//!   worker ends up running a stolen chunk, so events land in the right
//!   trace regardless of scheduling.
//! * A fixed-size, lock-sharded **ring-buffer flight recorder**. Every
//!   event also lands in a small per-task tail kept inside the active
//!   scope; [`current_tail`] renders it for attachment to quarantine
//!   records, and [`Tracer::flight_recorder_dump`] renders the shared
//!   rings for panic/budget-exhaustion dumps.
//! * A **self-profiler**: [`pattern_stats_add`] attributes regex-VM steps
//!   to individual fingerprint patterns, [`domain_stat_add`] attributes
//!   retry/backoff/breaker cost to individual domains. Both aggregate
//!   with commutative adds, so totals are identical for any thread count.
//! * A **Chrome trace-event JSON exporter** ([`TraceData::to_chrome_json`],
//!   loadable in Perfetto / `chrome://tracing`) plus a "Top cost centers"
//!   text report ([`TraceData::render_top_cost_centers`]).
//!
//! # Determinism
//!
//! Wall-clock timestamps differ run to run and the virtual clock's
//! *intermediate* readings are interleaving-dependent, so events carry no
//! timestamps at all — only a deterministic `cost_ns`. The exporter sorts
//! events canonically (phase, week, task, seq, …) and *synthesizes* a
//! timeline from the costs; physical worker ids are folded onto
//! [`LANES`] deterministic lanes. The result: the exported JSON is
//! byte-identical for any thread count.
//!
//! # Overhead
//!
//! When no tracer is installed anywhere in the process, every entry point
//! is a single relaxed atomic load (the same design as
//! `webvuln-failpoint`). Scopes and events only pay for allocation and a
//! shard lock once a tracer is installed on the current causal path.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel for "no week" / "no task" in a [`TraceEvent`].
pub const NONE: u64 = u64::MAX;

/// Lock shards in the flight recorder (events shard by task index).
const SHARDS: usize = 16;

/// Events retained per flight-recorder shard.
const RING_CAPACITY: usize = 512;

/// Events retained in the per-task tail attached to quarantine records.
const SCOPE_TAIL: usize = 32;

/// Deterministic export lanes: tasks map to lane `task % LANES`, so the
/// exported timeline is independent of the physical thread count.
pub const LANES: u64 = 8;

/// Count of installed tracers process-wide. The disabled fast path is a
/// single relaxed load of this.
static ACTIVE: AtomicU32 = AtomicU32::new(0);

/// True when any tracer is installed anywhere in the process. A cheap
/// pre-filter only — emission still requires a tracer on the current
/// causal path (installed on this thread or propagated into it).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (a [`Tracer`] in this mode never installs).
    Disabled,
    /// Flight recorder + profilers only: bounded memory, no export.
    Ring,
    /// Everything: flight recorder, profilers, and the full export log.
    Full,
}

/// Where an event is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Flight recorder and per-task tail only — never exported. Use for
    /// high-frequency breadcrumbs (task/fetch begin markers).
    RingOnly,
    /// Also appended to the export log under [`TraceMode::Full`].
    Export,
}

/// One recorded event. `worker` is the physical worker at record time and
/// is excluded from canonical identity (it is normalized to a lane at
/// [`Tracer::finish`]); every other field is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Pipeline phase (`generate`/`crawl`/`fingerprint`/`store`/`join`/
    /// `analyze`, or `""` outside any phase scope).
    pub phase: &'static str,
    /// Snapshot week, or [`NONE`].
    pub week: u64,
    /// Logical task index within the phase, or [`NONE`].
    pub task: u64,
    /// Emission sequence within the enclosing scope (starts at 0).
    pub seq: u64,
    /// Physical worker at record time; lane after [`Tracer::finish`].
    pub worker: u64,
    /// Event name (`fetch.outcome`, `store.commit`, …).
    pub name: &'static str,
    /// Domain the event concerns, or `""`.
    pub domain: String,
    /// Free-form deterministic detail (status, error class, attempt …).
    pub detail: String,
    /// Deterministic cost used to lay out the exported timeline.
    pub cost_ns: u64,
    /// Destination of the event.
    pub sink: Sink,
}

/// Cost attributed to one fingerprint pattern.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PatternStat {
    /// Times the pattern was evaluated.
    pub evals: u64,
    /// Times it matched.
    pub matches: u64,
    /// Regex-VM steps spent evaluating it.
    pub vm_steps: u64,
}

impl PatternStat {
    fn absorb(&mut self, other: PatternStat) {
        self.evals += other.evals;
        self.matches += other.matches;
        self.vm_steps += other.vm_steps;
    }
}

/// Cost attributed to one domain's fetch lifecycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DomainStat {
    /// Fetch lifecycles recorded.
    pub fetches: u64,
    /// Connection attempts across all lifecycles.
    pub attempts: u64,
    /// Retries (attempts beyond the first).
    pub retries: u64,
    /// Virtual backoff time spent between attempts.
    pub backoff_ns: u64,
    /// Fetches skipped by an open circuit breaker.
    pub breaker_skips: u64,
    /// Injected fail-point hits observed.
    pub failpoints: u64,
    /// Lifecycles that ended in an error.
    pub errors: u64,
    /// Total deterministic cost (backoff + per-attempt nominal cost).
    pub cost_ns: u64,
}

impl DomainStat {
    fn absorb(&mut self, other: DomainStat) {
        self.fetches += other.fetches;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.backoff_ns += other.backoff_ns;
        self.breaker_skips += other.breaker_skips;
        self.failpoints += other.failpoints;
        self.errors += other.errors;
        self.cost_ns += other.cost_ns;
    }
}

struct Shard {
    ring: Mutex<VecDeque<TraceEvent>>,
    full: Mutex<Vec<TraceEvent>>,
}

struct TracerInner {
    mode: TraceMode,
    shards: Vec<Shard>,
    patterns: Mutex<BTreeMap<String, PatternStat>>,
    domains: Mutex<BTreeMap<String, DomainStat>>,
}

/// A tracing session. Clone freely — clones share storage. Create one,
/// [`install`](Tracer::install) it around the traced region, then
/// [`finish`](Tracer::finish) to collect the [`TraceData`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mode", &self.inner.mode)
            .finish()
    }
}

impl Tracer {
    /// A tracer recording at `mode`.
    pub fn new(mode: TraceMode) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                mode,
                shards: (0..SHARDS)
                    .map(|_| Shard {
                        ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
                        full: Mutex::new(Vec::new()),
                    })
                    .collect(),
                patterns: Mutex::new(BTreeMap::new()),
                domains: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.inner.mode
    }

    /// Installs this tracer into the current thread's context until the
    /// guard drops. Everything the thread does — and everything executor
    /// workers do on its behalf, via [`capture`]/[`task_scope`] — records
    /// here. A [`TraceMode::Disabled`] tracer installs nothing.
    pub fn install(&self) -> InstallGuard {
        if self.inner.mode == TraceMode::Disabled {
            return InstallGuard {
                prev: None,
                counted: false,
            };
        }
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| {
            c.replace(Ctx {
                tracer: Some(self.clone()),
                ..Ctx::default()
            })
        });
        InstallGuard {
            prev: Some(prev),
            counted: true,
        }
    }

    fn record(&self, ev: TraceEvent) {
        let shard = &self.inner.shards[(ev.task % SHARDS as u64) as usize];
        let export = self.inner.mode == TraceMode::Full && ev.sink == Sink::Export;
        {
            let mut ring = shard.ring.lock().expect("trace ring");
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(ev.clone());
        }
        if export {
            shard.full.lock().expect("trace log").push(ev);
        }
    }

    /// Renders the shared flight-recorder rings — the last events each
    /// shard saw — for a panic or budget-exhaustion dump. Unlike the
    /// canonical export this includes physical worker ids and reflects
    /// real arrival order, so it is *not* deterministic; it exists to be
    /// read by a human next to a stack trace.
    pub fn flight_recorder_dump(&self) -> String {
        let mut out = String::from("flight recorder (most recent events per shard):\n");
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let ring = shard.ring.lock().expect("trace ring");
            if ring.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  shard {i:02} ({} events):", ring.len());
            for ev in ring.iter().rev().take(8) {
                let _ = writeln!(out, "    {} [worker {}]", render_tail_line(ev), ev.worker);
            }
        }
        out
    }

    /// Drains the tracer into an immutable [`TraceData`]: export-log
    /// events canonically sorted with workers normalized to lanes, plus
    /// both profiler aggregations. Call after all traced work finished.
    pub fn finish(&self) -> TraceData {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.inner.shards {
            events.append(&mut shard.full.lock().expect("trace log"));
        }
        for ev in &mut events {
            ev.worker = lane_of(ev.task);
        }
        events.sort_by(canonical_cmp);
        let patterns = self
            .inner
            .patterns
            .lock()
            .expect("pattern stats")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let domains = self
            .inner
            .domains
            .lock()
            .expect("domain stats")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        TraceData {
            mode: self.inner.mode,
            events,
            patterns,
            domains,
        }
    }
}

/// Restores the previous thread context (and the global enablement count)
/// when dropped.
pub struct InstallGuard {
    prev: Option<Ctx>,
    counted: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
        if self.counted {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The thread-local causal context.
struct Ctx {
    tracer: Option<Tracer>,
    phase: &'static str,
    week: u64,
    task: u64,
    worker: u64,
    seq: u64,
    tail: VecDeque<TraceEvent>,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            tracer: None,
            phase: "",
            week: NONE,
            task: NONE,
            worker: 0,
            seq: 0,
            tail: VecDeque::new(),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Ctx> = RefCell::new(Ctx::default());
}

/// A captured causal context, ready to cross a thread boundary. The
/// work-stealing executor captures once per `map` call and re-installs
/// per item with [`task_scope`], so a stolen chunk's events still carry
/// the phase/week of the code that submitted it.
#[derive(Clone)]
pub struct TraceCtx {
    tracer: Tracer,
    phase: &'static str,
    week: u64,
}

impl TraceCtx {
    /// See [`Tracer::flight_recorder_dump`].
    pub fn flight_recorder_dump(&self) -> String {
        self.tracer.flight_recorder_dump()
    }
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("phase", &self.phase)
            .field("week", &self.week)
            .finish()
    }
}

/// Captures the current thread's causal context, or `None` when tracing
/// is off on this path — in which case the subsequent [`task_scope`]
/// calls are free.
pub fn capture() -> Option<TraceCtx> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| {
        let c = c.borrow();
        c.tracer.clone().map(|tracer| TraceCtx {
            tracer,
            phase: c.phase,
            week: c.week,
        })
    })
}

/// Installs `parent` on the current thread as task `task`, run by
/// physical worker `worker`, until the guard drops. Events emitted under
/// the guard carry the parent's phase/week, the task index, and a fresh
/// per-task sequence and tail. A `None` parent yields a no-op guard.
pub fn task_scope(parent: Option<&TraceCtx>, task: u64, worker: u64) -> TaskScope {
    let Some(parent) = parent else {
        return TaskScope { prev: None };
    };
    let prev = CURRENT.with(|c| {
        c.replace(Ctx {
            tracer: Some(parent.tracer.clone()),
            phase: parent.phase,
            week: parent.week,
            task,
            worker,
            seq: 0,
            tail: VecDeque::new(),
        })
    });
    TaskScope { prev: Some(prev) }
}

/// Guard for [`task_scope`].
pub struct TaskScope {
    prev: Option<Ctx>,
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Enters pipeline phase `phase` on the current thread until the guard
/// drops: week/task reset, sequence restarts. No-op when tracing is off
/// on this path.
pub fn phase_scope(phase: &'static str) -> FieldScope {
    if !enabled() {
        return FieldScope { prev: None };
    }
    CURRENT.with(|c| {
        let mut c = c.borrow_mut();
        if c.tracer.is_none() {
            return FieldScope { prev: None };
        }
        let prev = (c.phase, c.week, c.task, c.seq);
        c.phase = phase;
        c.week = NONE;
        c.task = NONE;
        c.seq = 0;
        FieldScope { prev: Some(prev) }
    })
}

/// Enters week `week` of the current phase until the guard drops:
/// task resets, sequence restarts. No-op when tracing is off.
pub fn week_scope(week: u64) -> FieldScope {
    if !enabled() {
        return FieldScope { prev: None };
    }
    CURRENT.with(|c| {
        let mut c = c.borrow_mut();
        if c.tracer.is_none() {
            return FieldScope { prev: None };
        }
        let prev = (c.phase, c.week, c.task, c.seq);
        c.week = week;
        c.task = NONE;
        c.seq = 0;
        FieldScope { prev: Some(prev) }
    })
}

/// Guard for [`phase_scope`]/[`week_scope`]; restores the saved fields.
pub struct FieldScope {
    prev: Option<(&'static str, u64, u64, u64)>,
}

impl Drop for FieldScope {
    fn drop(&mut self) {
        if let Some((phase, week, task, seq)) = self.prev.take() {
            CURRENT.with(|c| {
                let mut c = c.borrow_mut();
                c.phase = phase;
                c.week = week;
                c.task = task;
                c.seq = seq;
            });
        }
    }
}

/// Records an event in the current causal context. A single relaxed load
/// when tracing is disabled process-wide; a no-op when no tracer is on
/// this causal path.
pub fn emit(name: &'static str, domain: &str, detail: &str, cost_ns: u64, sink: Sink) {
    if !enabled() {
        return;
    }
    let (tracer, ev) = match CURRENT.with(|cell| {
        let mut c = cell.borrow_mut();
        let tracer = c.tracer.clone()?;
        let ev = TraceEvent {
            phase: c.phase,
            week: c.week,
            task: c.task,
            seq: c.seq,
            worker: c.worker,
            name,
            domain: domain.to_string(),
            detail: detail.to_string(),
            cost_ns,
            sink,
        };
        c.seq += 1;
        if c.tail.len() == SCOPE_TAIL {
            c.tail.pop_front();
        }
        c.tail.push_back(ev.clone());
        Some((tracer, ev))
    }) {
        Some(pair) => pair,
        None => return,
    };
    tracer.record(ev);
}

/// Renders the current scope's event tail — the last events this task
/// emitted, newest last, physical worker omitted so the rendering is
/// deterministic for any thread count. Empty when tracing is off.
pub fn current_tail() -> Vec<String> {
    if !enabled() {
        return Vec::new();
    }
    CURRENT.with(|c| {
        let c = c.borrow();
        if c.tracer.is_none() {
            return Vec::new();
        }
        c.tail.iter().map(render_tail_line).collect()
    })
}

fn render_tail_line(ev: &TraceEvent) -> String {
    let mut out = String::new();
    let _ = write!(out, "[{}", if ev.phase.is_empty() { "-" } else { ev.phase });
    match ev.week {
        NONE => out.push_str(" w-"),
        w => {
            let _ = write!(out, " w{w}");
        }
    }
    match ev.task {
        NONE => out.push_str(" t-"),
        t => {
            let _ = write!(out, " t{t}");
        }
    }
    let _ = write!(out, " #{}] {}", ev.seq, ev.name);
    if !ev.domain.is_empty() {
        let _ = write!(out, " domain={}", ev.domain);
    }
    if !ev.detail.is_empty() {
        let _ = write!(out, " detail={}", ev.detail);
    }
    if ev.cost_ns > 0 {
        let _ = write!(out, " cost_ns={}", ev.cost_ns);
    }
    out
}

/// True when a tracer is on this causal path — use to gate profiling
/// instrumentation that has its own measurement cost (for example the
/// per-pattern VM-step deltas in the fingerprint engine).
pub fn profiling() -> bool {
    enabled() && CURRENT.with(|c| c.borrow().tracer.is_some())
}

fn current_tracer() -> Option<Tracer> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().tracer.clone())
}

/// Adds per-pattern costs into the profiler, one shared lock hold for the
/// whole batch (callers accumulate per page/task and flush once).
pub fn pattern_stats_add<'a, I>(entries: I)
where
    I: IntoIterator<Item = (&'a str, PatternStat)>,
{
    let Some(tracer) = current_tracer() else {
        return;
    };
    let mut map = tracer.inner.patterns.lock().expect("pattern stats");
    for (label, stat) in entries {
        if stat.evals == 0 && stat.vm_steps == 0 {
            continue;
        }
        map.entry(label.to_string()).or_default().absorb(stat);
    }
}

/// Adds one domain's fetch-lifecycle cost into the profiler.
pub fn domain_stat_add(domain: &str, stat: DomainStat) {
    let Some(tracer) = current_tracer() else {
        return;
    };
    tracer
        .inner
        .domains
        .lock()
        .expect("domain stats")
        .entry(domain.to_string())
        .or_default()
        .absorb(stat);
}

/// Canonical phase order in the exported timeline.
fn phase_rank(phase: &str) -> u8 {
    match phase {
        "generate" => 0,
        "crawl" => 1,
        "fingerprint" => 2,
        "store" => 3,
        "join" => 4,
        "analyze" => 5,
        _ => 6,
    }
}

fn lane_of(task: u64) -> u64 {
    if task == NONE {
        0
    } else {
        1 + task % LANES
    }
}

fn canonical_cmp(a: &TraceEvent, b: &TraceEvent) -> std::cmp::Ordering {
    (
        phase_rank(a.phase),
        a.phase,
        a.week,
        a.task,
        a.seq,
        a.name,
        &a.domain,
        &a.detail,
        a.cost_ns,
    )
        .cmp(&(
            phase_rank(b.phase),
            b.phase,
            b.week,
            b.task,
            b.seq,
            b.name,
            &b.domain,
            &b.detail,
            b.cost_ns,
        ))
}

/// Everything a finished [`Tracer`] collected.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// The mode the tracer recorded at.
    pub mode: TraceMode,
    /// Exportable events in canonical order, workers folded onto lanes.
    /// Empty under [`TraceMode::Ring`].
    pub events: Vec<TraceEvent>,
    /// Per-pattern cost attribution, sorted by label.
    pub patterns: Vec<(String, PatternStat)>,
    /// Per-domain cost attribution, sorted by domain.
    pub domains: Vec<(String, DomainStat)>,
}

impl TraceData {
    /// Serializes the trace in Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load). Timestamps are synthesized
    /// deterministically from event costs: events are laid out in
    /// canonical order on their lane, lanes are re-synchronized at every
    /// phase/week boundary, and enclosing phase and week spans are
    /// emitted on the coordinator track (tid 0) so the timeline nests.
    /// Byte-identical for any thread count.
    pub fn to_chrome_json(&self) -> String {
        let lanes = LANES as usize + 1;
        let mut cursor = vec![0u64; lanes];
        let mut placed: Vec<(usize, u64, u64)> = Vec::with_capacity(self.events.len());
        // (phase, week) -> extent; phase -> extent. Keys stay in canonical
        // order because BTreeMap sorts and ranks are prefix-compatible.
        let mut week_extents: BTreeMap<(u8, &'static str, u64), (u64, u64)> = BTreeMap::new();
        let mut phase_extents: BTreeMap<(u8, &'static str), (u64, u64)> = BTreeMap::new();
        let mut prev_group: Option<(&'static str, u64)> = None;
        for ev in &self.events {
            let group = (ev.phase, ev.week);
            if prev_group != Some(group) {
                let barrier = cursor.iter().copied().max().unwrap_or(0) + 10;
                for c in cursor.iter_mut() {
                    *c = barrier;
                }
                prev_group = Some(group);
            }
            let tid = lane_of(ev.task) as usize;
            let dur = (ev.cost_ns / 1_000).max(1);
            let ts = cursor[tid];
            cursor[tid] = ts + dur + 1;
            placed.push((tid, ts, dur));
            let end = ts + dur;
            if ev.week != NONE {
                let e = week_extents
                    .entry((phase_rank(ev.phase), ev.phase, ev.week))
                    .or_insert((ts, end));
                e.0 = e.0.min(ts);
                e.1 = e.1.max(end);
            }
            let e = phase_extents
                .entry((phase_rank(ev.phase), ev.phase))
                .or_insert((ts, end));
            e.0 = e.0.min(ts);
            e.1 = e.1.max(end);
        }

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };

        sep(&mut out);
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"webvuln study\"}}",
        );
        for tid in 0..lanes {
            sep(&mut out);
            let label = if tid == 0 {
                "coordinator".to_string()
            } else {
                format!("lane-{}", tid - 1)
            };
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            );
        }

        for (&(_, phase), &(start, end)) in &phase_extents {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"phase:{phase}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":0,\"ts\":{start},\"dur\":{},\"args\":{{\"phase\":\"{phase}\",\
                 \"week\":-1,\"task\":-1,\"worker\":0,\"domain\":\"\",\"detail\":\"\"}}}}",
                (end - start).max(1)
            );
        }
        for (&(_, phase, week), &(start, end)) in &week_extents {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{phase} week {week}\",\"cat\":\"week\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":0,\"ts\":{start},\"dur\":{},\"args\":{{\"phase\":\"{phase}\",\
                 \"week\":{week},\"task\":-1,\"worker\":0,\"domain\":\"\",\"detail\":\"\"}}}}",
                (end - start).max(1)
            );
        }
        for (ev, &(tid, ts, dur)) in self.events.iter().zip(&placed) {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{ts},\"dur\":{dur},\"args\":{{\"phase\":\"{}\",\"week\":{},\
                 \"task\":{},\"worker\":{},\"seq\":{},\"domain\":",
                ev.name,
                ev.phase,
                signed(ev.week),
                signed(ev.task),
                ev.worker,
                ev.seq,
            );
            json_string(&ev.domain, &mut out);
            out.push_str(",\"detail\":");
            json_string(&ev.detail, &mut out);
            let _ = write!(out, ",\"cost_ns\":{}}}}}", ev.cost_ns);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the "Top cost centers" report section: the `k` most
    /// expensive fingerprint patterns by VM steps, the `k` slowest
    /// domains by deterministic cost, and the per-phase / per-lane event
    /// timeline summary.
    pub fn render_top_cost_centers(&self, k: usize) -> String {
        let mut out = String::from("Top cost centers\n");

        let _ = writeln!(out, "  Top {k} patterns by VM steps");
        let mut patterns: Vec<&(String, PatternStat)> = self.patterns.iter().collect();
        patterns.sort_by(|a, b| (b.1.vm_steps, &a.0).cmp(&(a.1.vm_steps, &b.0)));
        if patterns.is_empty() {
            let _ = writeln!(out, "    (no pattern evaluations recorded)");
        }
        for (i, (label, s)) in patterns.iter().take(k).enumerate() {
            let _ = writeln!(
                out,
                "    {:>2}. {:<44} vm_steps={:<10} evals={:<8} matches={}",
                i + 1,
                label,
                s.vm_steps,
                s.evals,
                s.matches
            );
        }

        let _ = writeln!(out, "  Top {k} slowest domains");
        let mut domains: Vec<&(String, DomainStat)> = self.domains.iter().collect();
        domains.sort_by(|a, b| (b.1.cost_ns, &a.0).cmp(&(a.1.cost_ns, &b.0)));
        if domains.is_empty() {
            let _ = writeln!(out, "    (no fetch lifecycles recorded)");
        }
        for (i, (domain, s)) in domains.iter().take(k).enumerate() {
            let _ = writeln!(
                out,
                "    {:>2}. {:<34} cost={:<12} attempts={:<5} retries={:<5} \
                 backoff_ns={:<12} breaker_skips={} errors={}",
                i + 1,
                domain,
                s.cost_ns,
                s.attempts,
                s.retries,
                s.backoff_ns,
                s.breaker_skips,
                s.errors
            );
        }

        let _ = writeln!(out, "  Phase timeline");
        let mut phases: BTreeMap<(u8, &'static str), (u64, u64)> = BTreeMap::new();
        let mut lanes: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in &self.events {
            let p = phases
                .entry((phase_rank(ev.phase), ev.phase))
                .or_insert((0, 0));
            p.0 += 1;
            p.1 += ev.cost_ns;
            *lanes.entry(ev.worker).or_insert(0) += 1;
        }
        if phases.is_empty() {
            let _ = writeln!(
                out,
                "    (no exported events — ring mode records profiles only)"
            );
        }
        for ((_, phase), (count, cost)) in &phases {
            let _ = writeln!(
                out,
                "    {:<12} events={:<8} cost_ns={}",
                phase, count, cost
            );
        }
        if !lanes.is_empty() {
            let _ = write!(out, "    per-lane events:");
            for (lane, count) in &lanes {
                let _ = write!(out, " lane{lane}={count}");
            }
            out.push('\n');
        }
        out
    }
}

/// `NONE` renders as `-1` in exported JSON.
fn signed(value: u64) -> i64 {
    if value == NONE {
        -1
    } else {
        value as i64
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tracer_means_no_effect() {
        // Another test may have a tracer installed on *its* thread, but
        // this thread has none: every entry point is a no-op.
        emit("orphan", "x.example", "", 1, Sink::Export);
        CURRENT.with(|c| assert!(c.borrow().tracer.is_none()));
        assert!(capture().is_none());
        assert!(current_tail().is_empty());
        assert!(!profiling());
        domain_stat_add("x.example", DomainStat::default());
        pattern_stats_add([("p", PatternStat::default())]);
    }

    #[test]
    fn install_scopes_and_sequences() {
        let tracer = Tracer::new(TraceMode::Full);
        {
            let _g = tracer.install();
            assert!(profiling());
            let _p = phase_scope("crawl");
            let _w = week_scope(3);
            emit("crawl.week", "", "domains=2", 5_000, Sink::Export);
            let parent = capture().expect("tracing on");
            {
                let _t = task_scope(Some(&parent), 7, 2);
                emit("fetch.begin", "a.example", "", 0, Sink::RingOnly);
                emit("fetch.outcome", "a.example", "200", 2_000, Sink::Export);
            }
            // Scope restored: coordinator sequence continues after task.
            emit("crawl.week.done", "", "", 1_000, Sink::Export);
        }
        let data = tracer.finish();
        // Ring-only events are not exported.
        assert_eq!(data.events.len(), 3);
        // Canonical order: task events first, then coordinator summaries
        // (task == NONE sorts last within the week).
        assert_eq!(data.events[0].name, "fetch.outcome");
        assert_eq!(data.events[0].task, 7);
        assert_eq!(data.events[0].seq, 1, "task seq counts ring-only begin");
        assert_eq!(data.events[0].worker, 1 + 7 % LANES, "lane, not worker 2");
        assert_eq!(data.events[1].name, "crawl.week");
        assert_eq!(data.events[1].week, 3);
        assert_eq!(data.events[1].task, NONE);
        assert_eq!(data.events[1].seq, 0);
        assert_eq!(data.events[2].name, "crawl.week.done");
        assert_eq!(data.events[2].seq, 1, "coordinator seq resumes");
    }

    #[test]
    fn context_propagates_across_threads() {
        let tracer = Tracer::new(TraceMode::Full);
        let _g = tracer.install();
        let _p = phase_scope("fingerprint");
        let _w = week_scope(11);
        let parent = capture().expect("tracing on");
        std::thread::scope(|scope| {
            for (task, worker) in [(0u64, 1u64), (1, 0)] {
                let parent = parent.clone();
                scope.spawn(move || {
                    let _t = task_scope(Some(&parent), task, worker);
                    emit("page.analyzed", "", "", 1_000, Sink::Export);
                });
            }
        });
        let data = tracer.finish();
        assert_eq!(data.events.len(), 2);
        for ev in &data.events {
            assert_eq!(ev.phase, "fingerprint");
            assert_eq!(ev.week, 11);
        }
        assert_eq!(data.events[0].task, 0);
        assert_eq!(data.events[1].task, 1);
    }

    #[test]
    fn ring_is_bounded_and_dump_renders() {
        let tracer = Tracer::new(TraceMode::Ring);
        {
            let _g = tracer.install();
            let parent = capture().expect("on");
            let _t = task_scope(Some(&parent), 0, 0);
            for i in 0..(RING_CAPACITY + 100) {
                emit(
                    "tick",
                    "",
                    if i % 2 == 0 { "even" } else { "odd" },
                    1,
                    Sink::Export,
                );
            }
        }
        let ring_len = tracer.inner.shards[0].ring.lock().expect("ring").len();
        assert_eq!(ring_len, RING_CAPACITY);
        let dump = tracer.flight_recorder_dump();
        assert!(dump.contains("shard 00"), "{dump}");
        assert!(dump.contains("tick"), "{dump}");
        // Ring mode exports nothing.
        assert!(tracer.finish().events.is_empty());
    }

    #[test]
    fn tail_is_capped_deterministic_and_per_task() {
        let tracer = Tracer::new(TraceMode::Ring);
        let _g = tracer.install();
        let parent = capture().expect("on");
        let tail_a = {
            let _t = task_scope(Some(&parent), 4, 3);
            for i in 0..(SCOPE_TAIL + 5) {
                emit("step", "d.example", "", i as u64, Sink::RingOnly);
            }
            current_tail()
        };
        assert_eq!(tail_a.len(), SCOPE_TAIL);
        // Oldest events were dropped; newest survive.
        assert!(tail_a.last().expect("tail").contains("step"));
        assert!(!tail_a.iter().any(|l| l.contains("worker")), "{tail_a:?}");
        // A different physical worker renders the identical tail.
        let tail_b = {
            let _t = task_scope(Some(&parent), 4, 0);
            for i in 0..(SCOPE_TAIL + 5) {
                emit("step", "d.example", "", i as u64, Sink::RingOnly);
            }
            current_tail()
        };
        assert_eq!(tail_a, tail_b);
        // Outside any scope the tail is empty again.
        assert!(current_tail().is_empty());
    }

    #[test]
    fn canonical_export_is_independent_of_interleaving() {
        let run = |order: &[usize]| {
            let tracer = Tracer::new(TraceMode::Full);
            let _g = tracer.install();
            let _p = phase_scope("crawl");
            let _w = week_scope(0);
            let parent = capture().expect("on");
            for &task in order {
                let _t = task_scope(Some(&parent), task as u64, task as u64 % 3);
                emit(
                    "fetch.begin",
                    &format!("d{task}.example"),
                    "",
                    0,
                    Sink::RingOnly,
                );
                emit(
                    "fetch.outcome",
                    &format!("d{task}.example"),
                    "200",
                    1_000 * (task as u64 + 1),
                    Sink::Export,
                );
            }
            tracer.finish().to_chrome_json()
        };
        let a = run(&[0, 1, 2, 3, 4, 5]);
        let b = run(&[5, 3, 1, 4, 2, 0]);
        assert_eq!(a, b, "export must not depend on execution order");
    }

    #[test]
    fn profilers_aggregate_commutatively() {
        let tracer = Tracer::new(TraceMode::Ring);
        let _g = tracer.install();
        pattern_stats_add([
            (
                "jQuery/url#0",
                PatternStat {
                    evals: 2,
                    matches: 1,
                    vm_steps: 40,
                },
            ),
            (
                "Bootstrap/url#0",
                PatternStat {
                    evals: 1,
                    matches: 0,
                    vm_steps: 25,
                },
            ),
        ]);
        pattern_stats_add([(
            "jQuery/url#0",
            PatternStat {
                evals: 1,
                matches: 0,
                vm_steps: 10,
            },
        )]);
        // Zero-eval entries are skipped.
        pattern_stats_add([("Never/url#0", PatternStat::default())]);
        domain_stat_add(
            "slow.example",
            DomainStat {
                fetches: 1,
                attempts: 3,
                retries: 2,
                backoff_ns: 5_000,
                cost_ns: 8_000,
                errors: 1,
                ..DomainStat::default()
            },
        );
        domain_stat_add(
            "slow.example",
            DomainStat {
                fetches: 1,
                attempts: 1,
                cost_ns: 1_000,
                ..DomainStat::default()
            },
        );
        let data = tracer.finish();
        assert_eq!(data.patterns.len(), 2);
        let jq = &data
            .patterns
            .iter()
            .find(|(l, _)| l == "jQuery/url#0")
            .expect("jq")
            .1;
        assert_eq!((jq.evals, jq.matches, jq.vm_steps), (3, 1, 50));
        assert_eq!(data.domains.len(), 1);
        let slow = &data.domains[0].1;
        assert_eq!(slow.fetches, 2);
        assert_eq!(slow.attempts, 4);
        assert_eq!(slow.cost_ns, 9_000);
    }

    #[test]
    fn top_cost_centers_ranks_and_names() {
        let tracer = Tracer::new(TraceMode::Full);
        {
            let _g = tracer.install();
            let _p = phase_scope("crawl");
            let _w = week_scope(0);
            emit("crawl.week", "", "", 1_000, Sink::Export);
            pattern_stats_add([
                (
                    "big/url#0",
                    PatternStat {
                        evals: 5,
                        matches: 2,
                        vm_steps: 900,
                    },
                ),
                (
                    "small/url#0",
                    PatternStat {
                        evals: 5,
                        matches: 2,
                        vm_steps: 10,
                    },
                ),
            ]);
            domain_stat_add(
                "slow.example",
                DomainStat {
                    fetches: 1,
                    attempts: 4,
                    retries: 3,
                    cost_ns: 9_000,
                    ..DomainStat::default()
                },
            );
            domain_stat_add(
                "fast.example",
                DomainStat {
                    fetches: 1,
                    attempts: 1,
                    cost_ns: 100,
                    ..DomainStat::default()
                },
            );
        }
        let report = tracer.finish().render_top_cost_centers(5);
        assert!(report.contains("Top cost centers"), "{report}");
        let big = report.find("big/url#0").expect("big listed");
        let small = report.find("small/url#0").expect("small listed");
        assert!(big < small, "ranked by vm_steps:\n{report}");
        let slow = report.find("slow.example").expect("slow listed");
        let fast = report.find("fast.example").expect("fast listed");
        assert!(slow < fast, "ranked by cost:\n{report}");
        assert!(report.contains("Phase timeline"), "{report}");
        assert!(report.contains("crawl"), "{report}");
    }

    #[test]
    fn chrome_json_shape() {
        let tracer = Tracer::new(TraceMode::Full);
        {
            let _g = tracer.install();
            for (phase, week) in [("generate", NONE), ("crawl", 0), ("crawl", 1)] {
                let _p = phase_scope(phase);
                let _w = (week != NONE).then(|| week_scope(week));
                emit("note", "", "", 2_000, Sink::Export);
                let parent = capture().expect("on");
                let _t = task_scope(Some(&parent), 2, 0);
                emit("work", "d.example", "ok", 3_000, Sink::Export);
            }
        }
        let json = tracer.finish().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
        assert!(json.contains("\"phase:generate\""), "{json}");
        assert!(json.contains("\"phase:crawl\""), "{json}");
        assert!(json.contains("\"crawl week 0\""), "{json}");
        assert!(json.contains("\"crawl week 1\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"domain\":\"d.example\""), "{json}");
        assert!(json.contains("\"worker\":3"), "task 2 -> lane 3: {json}");
        // Phase spans must not overlap: crawl starts after generate ends.
        let gen_span = json.find("\"phase:generate\"").expect("generate span");
        let crawl_span = json.find("\"phase:crawl\"").expect("crawl span");
        assert!(gen_span < crawl_span, "canonical phase order: {json}");
    }

    #[test]
    fn disabled_tracer_installs_nothing() {
        let tracer = Tracer::new(TraceMode::Disabled);
        let _g = tracer.install();
        CURRENT.with(|c| assert!(c.borrow().tracer.is_none()));
        emit("nothing", "", "", 1, Sink::Export);
        let data = tracer.finish();
        assert!(data.events.is_empty());
        assert!(data.patterns.is_empty());
    }

    #[test]
    fn tail_lines_render_all_fields() {
        let line = render_tail_line(&TraceEvent {
            phase: "crawl",
            week: 7,
            task: 19,
            seq: 2,
            worker: 5,
            name: "fetch.retry",
            domain: "x.example".to_string(),
            detail: "attempt=2".to_string(),
            cost_ns: 1_500,
            sink: Sink::Export,
        });
        assert_eq!(
            line,
            "[crawl w7 t19 #2] fetch.retry domain=x.example detail=attempt=2 cost_ns=1500"
        );
        let bare = render_tail_line(&TraceEvent {
            phase: "",
            week: NONE,
            task: NONE,
            seq: 0,
            worker: 0,
            name: "note",
            domain: String::new(),
            detail: String::new(),
            cost_ns: 0,
            sink: Sink::RingOnly,
        });
        assert_eq!(bare, "[- w- t- #0] note");
    }
}
