//! Intervals and interval sets over the [`Version`] order.
//!
//! The paper's §6.4 analysis compares the version range a CVE *claims* is
//! vulnerable against the range a PoC experiment shows is *actually*
//! vulnerable (the "True Vulnerable Versions"). Classifying a CVE as
//! understated/overstated and counting affected websites is set algebra
//! over version ranges — implemented here as sorted, disjoint interval
//! sets with union, intersection and difference.

use crate::version::Version;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// No constraint at this end.
    Unbounded,
    /// Endpoint included in the interval.
    Inclusive(Version),
    /// Endpoint excluded from the interval.
    Exclusive(Version),
}

impl Bound {
    fn version(&self) -> Option<&Version> {
        match self {
            Bound::Unbounded => None,
            Bound::Inclusive(v) | Bound::Exclusive(v) => Some(v),
        }
    }
}

/// Compares two *lower* bounds: which one starts earlier.
fn cmp_lower(a: &Bound, b: &Bound) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Less,
        (_, Bound::Unbounded) => Ordering::Greater,
        _ => {
            let (va, vb) = (a.version().expect("bounded"), b.version().expect("bounded"));
            va.cmp(vb).then_with(|| match (a, b) {
                (Bound::Inclusive(_), Bound::Exclusive(_)) => Ordering::Less,
                (Bound::Exclusive(_), Bound::Inclusive(_)) => Ordering::Greater,
                _ => Ordering::Equal,
            })
        }
    }
}

/// Compares two *upper* bounds: which one ends earlier.
fn cmp_upper(a: &Bound, b: &Bound) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Greater,
        (_, Bound::Unbounded) => Ordering::Less,
        _ => {
            let (va, vb) = (a.version().expect("bounded"), b.version().expect("bounded"));
            va.cmp(vb).then_with(|| match (a, b) {
                (Bound::Exclusive(_), Bound::Inclusive(_)) => Ordering::Less,
                (Bound::Inclusive(_), Bound::Exclusive(_)) => Ordering::Greater,
                _ => Ordering::Equal,
            })
        }
    }
}

/// A contiguous, possibly unbounded range of versions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: Bound,
    /// Upper endpoint.
    pub hi: Bound,
}

impl Interval {
    /// Builds an interval from explicit bounds.
    pub fn new(lo: Bound, hi: Bound) -> Self {
        Interval { lo, hi }
    }

    /// The full space: every version.
    pub fn all() -> Self {
        Interval::new(Bound::Unbounded, Bound::Unbounded)
    }

    /// `< v`.
    pub fn below(v: Version) -> Self {
        Interval::new(Bound::Unbounded, Bound::Exclusive(v))
    }

    /// `<= v`.
    pub fn at_most(v: Version) -> Self {
        Interval::new(Bound::Unbounded, Bound::Inclusive(v))
    }

    /// `>= v`.
    pub fn at_least(v: Version) -> Self {
        Interval::new(Bound::Inclusive(v), Bound::Unbounded)
    }

    /// `> v`.
    pub fn above(v: Version) -> Self {
        Interval::new(Bound::Exclusive(v), Bound::Unbounded)
    }

    /// `[lo, hi)` — the paper's usual "x.y ∼ z.w (excluding z.w)" shape.
    pub fn half_open(lo: Version, hi: Version) -> Self {
        Interval::new(Bound::Inclusive(lo), Bound::Exclusive(hi))
    }

    /// `[lo, hi]`.
    pub fn closed(lo: Version, hi: Version) -> Self {
        Interval::new(Bound::Inclusive(lo), Bound::Inclusive(hi))
    }

    /// Exactly one version.
    pub fn exact(v: Version) -> Self {
        Interval::new(Bound::Inclusive(v.clone()), Bound::Inclusive(v))
    }

    /// True when no version can satisfy both bounds.
    pub fn is_empty(&self) -> bool {
        match (self.lo.version(), self.hi.version()) {
            (Some(lo), Some(hi)) => match lo.cmp(hi) {
                Ordering::Greater => true,
                Ordering::Equal => {
                    !(matches!(self.lo, Bound::Inclusive(_))
                        && matches!(self.hi, Bound::Inclusive(_)))
                }
                Ordering::Less => false,
            },
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &Version) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Inclusive(l) => v >= l,
            Bound::Exclusive(l) => v > l,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Inclusive(h) => v <= h,
            Bound::Exclusive(h) => v < h,
        };
        lo_ok && hi_ok
    }

    /// Intersection of two intervals (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = if cmp_lower(&self.lo, &other.lo) == Ordering::Greater {
            self.lo.clone()
        } else {
            other.lo.clone()
        };
        let hi = if cmp_upper(&self.hi, &other.hi) == Ordering::Less {
            self.hi.clone()
        } else {
            other.hi.clone()
        };
        Interval::new(lo, hi)
    }

    /// True when the union of `self` and `other` is contiguous (they
    /// overlap, or they touch at a point covered by at least one side).
    fn merges_with(&self, other: &Interval) -> bool {
        // Order so that self starts first.
        let (first, second) = if cmp_lower(&self.lo, &other.lo) != Ordering::Greater {
            (self, other)
        } else {
            (other, self)
        };
        match (&first.hi, &second.lo) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (hi, lo) => {
                let (vh, vl) = (
                    hi.version().expect("bounded"),
                    lo.version().expect("bounded"),
                );
                match vh.cmp(vl) {
                    Ordering::Greater => true,
                    Ordering::Less => false,
                    Ordering::Equal => {
                        // Touching: covered unless both endpoints exclusive.
                        matches!(hi, Bound::Inclusive(_)) || matches!(lo, Bound::Inclusive(_))
                    }
                }
            }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.lo, &self.hi) {
            (Bound::Unbounded, Bound::Unbounded) => write!(f, "all versions"),
            (Bound::Unbounded, Bound::Exclusive(v)) => write!(f, "< {v}"),
            (Bound::Unbounded, Bound::Inclusive(v)) => write!(f, "<= {v}"),
            (Bound::Exclusive(v), Bound::Unbounded) => write!(f, "> {v}"),
            (Bound::Inclusive(v), Bound::Unbounded) => write!(f, ">= {v}"),
            (Bound::Inclusive(a), Bound::Inclusive(b)) if a == b => write!(f, "= {a}"),
            (lo, hi) => {
                match lo {
                    Bound::Inclusive(v) => write!(f, ">= {v}")?,
                    Bound::Exclusive(v) => write!(f, "> {v}")?,
                    Bound::Unbounded => unreachable!(),
                }
                f.write_str(", ")?;
                match hi {
                    Bound::Inclusive(v) => write!(f, "<= {v}"),
                    Bound::Exclusive(v) => write!(f, "< {v}"),
                    Bound::Unbounded => unreachable!(),
                }
            }
        }
    }
}

/// A set of versions represented as sorted, disjoint, non-empty intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// The full space.
    pub fn all() -> Self {
        IntervalSet {
            intervals: vec![Interval::all()],
        }
    }

    /// Builds a set from arbitrary intervals (they may overlap; empties are
    /// dropped).
    pub fn from_intervals(intervals: impl IntoIterator<Item = Interval>) -> Self {
        let mut iv: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        iv.sort_by(|a, b| cmp_lower(&a.lo, &b.lo).then_with(|| cmp_upper(&a.hi, &b.hi)));
        let mut out: Vec<Interval> = Vec::with_capacity(iv.len());
        for next in iv {
            match out.last_mut() {
                Some(last) if last.merges_with(&next) => {
                    if cmp_upper(&next.hi, &last.hi) == Ordering::Greater {
                        last.hi = next.hi;
                    }
                }
                _ => out.push(next),
            }
        }
        IntervalSet { intervals: out }
    }

    /// The set containing a single interval.
    pub fn from_interval(interval: Interval) -> Self {
        Self::from_intervals([interval])
    }

    /// The disjoint intervals, sorted ascending.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: &Version) -> bool {
        self.intervals.iter().any(|i| i.contains(v))
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).cloned())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                let x = a.intersect(b);
                if !x.is_empty() {
                    out.push(x);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Set complement (relative to the full version space).
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::new();
        let mut lo = Bound::Unbounded;
        for iv in &self.intervals {
            let hi = match &iv.lo {
                Bound::Unbounded => {
                    // Set starts at -inf; no gap before it.
                    lo = flip_upper_to_lower(&iv.hi);
                    continue;
                }
                Bound::Inclusive(v) => Bound::Exclusive(v.clone()),
                Bound::Exclusive(v) => Bound::Inclusive(v.clone()),
            };
            let gap = Interval::new(lo.clone(), hi);
            if !gap.is_empty() {
                out.push(gap);
            }
            lo = flip_upper_to_lower(&iv.hi);
        }
        // Emit the final gap unless the set is unbounded above.
        let unbounded_above = self
            .intervals
            .last()
            .is_some_and(|i| matches!(i.hi, Bound::Unbounded));
        if !unbounded_above {
            out.push(Interval::new(lo, Bound::Unbounded));
        }
        IntervalSet::from_intervals(out)
    }

    /// Set difference: versions in `self` but not in `other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        self.intersect(&other.complement())
    }

    /// True when every version in `self` is also in `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.subtract(other).is_empty()
    }
}

/// Converts an interval's *upper* bound into the lower bound of the gap
/// that follows it.
fn flip_upper_to_lower(hi: &Bound) -> Bound {
    match hi {
        Bound::Unbounded => Bound::Unbounded, // no gap will follow
        Bound::Inclusive(v) => Bound::Exclusive(v.clone()),
        Bound::Exclusive(v) => Bound::Inclusive(v.clone()),
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "(empty)");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                f.write_str(" or ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).expect("valid version")
    }

    #[test]
    fn interval_contains() {
        let iv = Interval::half_open(v("1.2"), v("3.5.0"));
        assert!(iv.contains(&v("1.2")));
        assert!(iv.contains(&v("2.0")));
        assert!(iv.contains(&v("3.4.9")));
        assert!(!iv.contains(&v("3.5.0")));
        assert!(!iv.contains(&v("1.1")));
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::half_open(v("2.0"), v("1.0")).is_empty());
        assert!(Interval::half_open(v("1.0"), v("1.0")).is_empty());
        assert!(!Interval::closed(v("1.0"), v("1.0")).is_empty());
        assert!(!Interval::all().is_empty());
    }

    #[test]
    fn from_intervals_merges() {
        let set = IntervalSet::from_intervals([
            Interval::half_open(v("1.0"), v("2.0")),
            Interval::half_open(v("1.5"), v("3.0")),
            Interval::half_open(v("4.0"), v("5.0")),
        ]);
        assert_eq!(set.intervals().len(), 2);
        assert!(set.contains(&v("2.5")));
        assert!(!set.contains(&v("3.5")));
        assert!(set.contains(&v("4.5")));
    }

    #[test]
    fn touching_intervals_merge_when_covered() {
        // [1,2) ∪ [2,3) = [1,3)
        let set = IntervalSet::from_intervals([
            Interval::half_open(v("1"), v("2")),
            Interval::half_open(v("2"), v("3")),
        ]);
        assert_eq!(set.intervals().len(), 1);
        assert!(set.contains(&v("2")));

        // [1,2) ∪ (2,3) leaves 2 uncovered
        let set = IntervalSet::from_intervals([
            Interval::half_open(v("1"), v("2")),
            Interval::new(Bound::Exclusive(v("2")), Bound::Exclusive(v("3"))),
        ]);
        assert_eq!(set.intervals().len(), 2);
        assert!(!set.contains(&v("2")));
    }

    #[test]
    fn complement_round_trips() {
        let set = IntervalSet::from_intervals([
            Interval::half_open(v("1.0"), v("2.0")),
            Interval::at_least(v("3.0")),
        ]);
        let comp = set.complement();
        assert!(comp.contains(&v("0.5")));
        assert!(!comp.contains(&v("1.5")));
        assert!(comp.contains(&v("2.5")));
        assert!(!comp.contains(&v("3.5")));
        assert_eq!(comp.complement(), set);
        assert!(IntervalSet::all().complement().is_empty());
        assert_eq!(IntervalSet::empty().complement(), IntervalSet::all());
    }

    #[test]
    fn subtraction() {
        // The CVE-2020-7656 shape: TVV < 3.6.0 minus CVE < 1.9.0 gives the
        // undisclosed-vulnerable slice [1.9.0, 3.6.0).
        let tvv = IntervalSet::from_interval(Interval::below(v("3.6.0")));
        let cve = IntervalSet::from_interval(Interval::below(v("1.9.0")));
        let hidden = tvv.subtract(&cve);
        assert_eq!(hidden.intervals().len(), 1);
        assert!(hidden.contains(&v("1.10.1")), "paper's example version");
        assert!(hidden.contains(&v("3.5.1")), "microsoft.com's version");
        assert!(!hidden.contains(&v("1.8.3")));
        assert!(!hidden.contains(&v("3.6.0")));
    }

    #[test]
    fn intersect_and_subset() {
        let a = IntervalSet::from_interval(Interval::half_open(v("1.2"), v("3.5")));
        let b = IntervalSet::from_interval(Interval::half_open(v("1.12"), v("3.5")));
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let x = a.intersect(&b);
        assert_eq!(x, b);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(Interval::below(v("1.9.0")).to_string(), "< 1.9.0");
        assert_eq!(
            Interval::half_open(v("1.2"), v("3.5.0")).to_string(),
            ">= 1.2, < 3.5.0"
        );
        assert_eq!(Interval::exact(v("2.2")).to_string(), "= 2.2");
        assert_eq!(Interval::all().to_string(), "all versions");
        assert_eq!(IntervalSet::empty().to_string(), "(empty)");
    }

    #[test]
    fn exclusive_touch_in_intersect() {
        let a = IntervalSet::from_interval(Interval::at_most(v("2.0")));
        let b = IntervalSet::from_interval(Interval::at_least(v("2.0")));
        let x = a.intersect(&b);
        assert!(x.contains(&v("2.0")));
        assert_eq!(x.intervals().len(), 1);
    }
}
