//! # webvuln-version
//!
//! Version handling for the `webvuln` workspace: parsing the loose version
//! strings found in client-side JavaScript library URLs, ordering them,
//! evaluating CVE-style requirements against them, and doing set algebra
//! over version ranges.
//!
//! The interval algebra is what powers the paper's §6.4 CVE-accuracy
//! analysis: given the range a CVE *claims* is vulnerable and the range the
//! PoC lab *measured* as vulnerable (the True Vulnerable Versions), the
//! understated slice is `TVV \ CVE` and the overstated slice is
//! `CVE \ TVV`.
//!
//! ```
//! use webvuln_version::{Version, VersionReq};
//!
//! // CVE-2020-7656 claims "< 1.9.0"; the paper's experiment shows "< 3.6.0".
//! let claimed = VersionReq::parse("< 1.9.0").unwrap().to_interval_set();
//! let measured = VersionReq::parse("< 3.6.0").unwrap().to_interval_set();
//!
//! let understated = measured.subtract(&claimed);
//! assert!(understated.contains(&Version::parse("1.10.1").unwrap()));
//! assert!(understated.contains(&Version::parse("3.5.1").unwrap())); // microsoft.com
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod req;
mod version;

pub use interval::{Bound, Interval, IntervalSet};
pub use req::{Comparator, Op, ParseReqError, VersionReq};
pub use version::{ParseVersionError, Version};

/// Sorts a vector of version strings ascending, dropping unparseable ones.
///
/// Convenience used by analysis code that works with raw detected strings.
pub fn sort_version_strings(strings: &mut Vec<String>) {
    let mut parsed: Vec<(Version, String)> = strings
        .drain(..)
        .filter_map(|s| Version::parse(&s).ok().map(|v| (v, s)))
        .collect();
    parsed.sort_by(|a, b| a.0.cmp(&b.0));
    *strings = parsed.into_iter().map(|(_, s)| s).collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_version_strings_orders_and_drops_garbage() {
        let mut v = vec![
            "3.5.1".to_string(),
            "not-a-version".to_string(),
            "1.12.4".to_string(),
            "1.9".to_string(),
        ];
        sort_version_strings(&mut v);
        assert_eq!(v, vec!["1.9", "1.12.4", "3.5.1"]);
    }
}
