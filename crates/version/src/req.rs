//! [`VersionReq`]: textual version requirements as they appear in CVE
//! reports ("< 1.9.0", ">= 1.2 and < 3.5.0", "all versions"), parsed into
//! comparators and convertible to [`IntervalSet`]s.

use crate::interval::{Interval, IntervalSet};
use crate::version::{ParseVersionError, Version};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Eq => "=",
        })
    }
}

/// A single comparison against a version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparator {
    /// The operator.
    pub op: Op,
    /// The right-hand side.
    pub version: Version,
}

impl Comparator {
    /// Evaluates the comparison for `v`.
    pub fn matches(&self, v: &Version) -> bool {
        match self.op {
            Op::Lt => v < &self.version,
            Op::Le => v <= &self.version,
            Op::Gt => v > &self.version,
            Op::Ge => v >= &self.version,
            Op::Eq => v == &self.version,
        }
    }

    /// The half-space this comparator describes.
    pub fn to_interval(&self) -> Interval {
        match self.op {
            Op::Lt => Interval::below(self.version.clone()),
            Op::Le => Interval::at_most(self.version.clone()),
            Op::Gt => Interval::above(self.version.clone()),
            Op::Ge => Interval::at_least(self.version.clone()),
            Op::Eq => Interval::exact(self.version.clone()),
        }
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.version)
    }
}

/// A conjunction of comparators, or the universal requirement.
///
/// Examples of accepted syntax (matching the phrasing of CVE reports and
/// the paper's Table 2):
///
/// * `< 1.9.0`
/// * `>= 1.4.2, < 1.6.2` (comma conjunction)
/// * `>= 1.0.3 and < 3.5.0` (`and` conjunction)
/// * `1.0.3 ~ 3.5.0` (inclusive-start, **inclusive**-end tilde range)
/// * `= 2.2` or bare `2.2` (exact)
/// * `*`, `all`, `all versions` (everything)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionReq {
    comparators: Vec<Comparator>,
}

/// Error parsing a [`VersionReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseReqError {
    /// An individual version failed to parse.
    Version(ParseVersionError),
    /// The requirement's structure is invalid.
    Syntax(String),
}

impl fmt::Display for ParseReqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseReqError::Version(e) => write!(f, "{e}"),
            ParseReqError::Syntax(s) => write!(f, "invalid requirement: {s}"),
        }
    }
}

impl std::error::Error for ParseReqError {}

impl From<ParseVersionError> for ParseReqError {
    fn from(e: ParseVersionError) -> Self {
        ParseReqError::Version(e)
    }
}

impl VersionReq {
    /// The requirement matching every version.
    pub fn any() -> Self {
        VersionReq {
            comparators: Vec::new(),
        }
    }

    /// Builds a requirement from comparators (conjunction).
    pub fn from_comparators(comparators: Vec<Comparator>) -> Self {
        VersionReq { comparators }
    }

    /// Parses a requirement string; see the type docs for accepted syntax.
    pub fn parse(input: &str) -> Result<Self, ParseReqError> {
        let s = input.trim();
        if s.is_empty() {
            return Err(ParseReqError::Syntax("empty requirement".into()));
        }
        let lower = s.to_ascii_lowercase();
        if s == "*" || lower == "all" || lower == "all versions" || lower == "any" {
            return Ok(VersionReq::any());
        }
        // Tilde range: "1.0.3 ~ 3.5.0" (both endpoints inclusive, the
        // notation used in the paper's Table 2).
        if let Some((lo, hi)) = s.split_once('~') {
            let lo = Version::parse(lo.trim())?;
            let hi = Version::parse(hi.trim())?;
            return Ok(VersionReq {
                comparators: vec![
                    Comparator {
                        op: Op::Ge,
                        version: lo,
                    },
                    Comparator {
                        op: Op::Le,
                        version: hi,
                    },
                ],
            });
        }
        let mut comparators = Vec::new();
        for clause in split_conjunction(s) {
            let clause = clause.trim();
            if clause.is_empty() {
                return Err(ParseReqError::Syntax("empty clause".into()));
            }
            comparators.push(parse_comparator(clause)?);
        }
        Ok(VersionReq { comparators })
    }

    /// Evaluates the requirement.
    pub fn matches(&self, v: &Version) -> bool {
        self.comparators.iter().all(|c| c.matches(v))
    }

    /// The comparators of this requirement (empty = matches everything).
    pub fn comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// Converts to an interval set (a single interval, since requirements
    /// are conjunctions; empty conjunction yields the full space).
    pub fn to_interval_set(&self) -> IntervalSet {
        let mut acc = Interval::all();
        for c in &self.comparators {
            acc = acc.intersect(&c.to_interval());
        }
        IntervalSet::from_interval(acc)
    }
}

impl FromStr for VersionReq {
    type Err = ParseReqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VersionReq::parse(s)
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.comparators.is_empty() {
            return f.write_str("all versions");
        }
        for (i, c) in self.comparators.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

fn split_conjunction(s: &str) -> Vec<&str> {
    // Split on commas and the word "and" (with surrounding whitespace).
    let mut out = Vec::new();
    for part in s.split(',') {
        let mut rest = part;
        while let Some(idx) = find_word(rest, "and") {
            out.push(&rest[..idx]);
            rest = &rest[idx + 3..];
        }
        out.push(rest);
    }
    out
}

/// Finds `word` in `s` at word boundaries (surrounded by whitespace or
/// string edges).
fn find_word(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut from = 0;
    while let Some(rel) = s[from..].find(word) {
        let idx = from + rel;
        let before_ok = idx == 0 || bytes[idx - 1].is_ascii_whitespace();
        let after = idx + word.len();
        let after_ok = after == s.len() || bytes[after].is_ascii_whitespace();
        if before_ok && after_ok {
            return Some(idx);
        }
        from = idx + word.len();
    }
    None
}

fn parse_comparator(clause: &str) -> Result<Comparator, ParseReqError> {
    let (op, rest) = if let Some(r) = clause.strip_prefix("<=") {
        (Op::Le, r)
    } else if let Some(r) = clause.strip_prefix(">=") {
        (Op::Ge, r)
    } else if let Some(r) = clause.strip_prefix("==") {
        (Op::Eq, r)
    } else if let Some(r) = clause.strip_prefix('<') {
        (Op::Lt, r)
    } else if let Some(r) = clause.strip_prefix('>') {
        (Op::Gt, r)
    } else if let Some(r) = clause.strip_prefix('=') {
        (Op::Eq, r)
    } else {
        (Op::Eq, clause)
    };
    Ok(Comparator {
        op,
        version: Version::parse(rest.trim())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).expect("valid version")
    }

    fn req(s: &str) -> VersionReq {
        VersionReq::parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn parses_cve_shapes() {
        assert!(req("< 1.9.0").matches(&v("1.8.3")));
        assert!(!req("< 1.9.0").matches(&v("1.9.0")));
        assert!(req(">= 1.2, < 3.5.0").matches(&v("2.2.4")));
        assert!(req(">= 1.4.2 and < 1.6.2").matches(&v("1.5.0")));
        assert!(!req(">= 1.4.2 and < 1.6.2").matches(&v("1.6.2")));
        assert!(
            req("1.0.3 ~ 3.5.0").matches(&v("3.5.0")),
            "tilde end is inclusive"
        );
        assert!(req("= 2.2").matches(&v("2.2")));
        assert!(req("2.2").matches(&v("2.2.0")));
        assert!(req("<= 1.7.3").matches(&v("1.7.3")));
        assert!(req("all versions").matches(&v("0.0.1")));
        assert!(req("*").matches(&v("99")));
    }

    #[test]
    fn rejects_garbage() {
        assert!(VersionReq::parse("").is_err());
        assert!(VersionReq::parse("< ").is_err());
        assert!(VersionReq::parse("~").is_err());
        assert!(VersionReq::parse("< x.y").is_err());
        assert!(VersionReq::parse(">= 1.0 and").is_err());
    }

    #[test]
    fn interval_set_agrees_with_matches() {
        for spec in ["< 1.9.0", ">= 1.2, < 3.5.0", "1.0.3 ~ 3.5.0", "= 2.2", "*"] {
            let r = req(spec);
            let set = r.to_interval_set();
            for probe in ["0.1", "1.2", "1.9.0", "2.2", "3.5.0", "3.5.1", "99"] {
                let pv = v(probe);
                assert_eq!(
                    r.matches(&pv),
                    set.contains(&pv),
                    "spec {spec} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn contradiction_yields_empty_set() {
        let r = req("> 3.0 and < 2.0");
        assert!(r.to_interval_set().is_empty());
        assert!(!r.matches(&v("2.5")));
    }

    #[test]
    fn display_round_trip_semantics() {
        for spec in ["< 1.9.0", ">= 1.2, < 3.5.0", "= 2.2"] {
            let r = req(spec);
            let reparsed = req(&r.to_string());
            assert_eq!(r, reparsed, "{spec}");
        }
        assert_eq!(VersionReq::any().to_string(), "all versions");
    }

    #[test]
    fn word_and_is_not_split_inside_tokens() {
        // "android" contains "and" but not at word boundaries; the clause
        // fails version parsing rather than being mis-split.
        assert!(VersionReq::parse("android").is_err());
    }
}
