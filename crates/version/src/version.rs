//! The [`Version`] type: parsing and total ordering for the version strings
//! seen in client-side JavaScript library URLs.
//!
//! JavaScript library projects nominally use Semantic Versioning
//! (`MAJOR.MINOR.PATCH`), but what actually appears in the wild is looser:
//! `2.2` (two components), `3` (one), `1.6.0.1` (four — Prototype), `2.1.0-beta.1`
//! (pre-release tags), and a leading `v` in file names. This type accepts
//! all of those and orders them the way the paper's analysis needs:
//! numeric components compared positionally with missing components treated
//! as zero, and pre-releases ordered before the corresponding release.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A parsed library version.
///
/// Equality, ordering and hashing all treat trailing zero components as
/// absent (`1.9 == 1.9.0`), while [`fmt::Display`] preserves the components
/// as written so that version strings round-trip.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct Version {
    /// Numeric components, most significant first. Never empty.
    parts: Vec<u32>,
    /// Pre-release identifier (the part after `-`), if any.
    pre: Option<String>,
}

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl std::hash::Hash for Version {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let trimmed = {
            let mut end = self.parts.len();
            while end > 1 && self.parts[end - 1] == 0 {
                end -= 1;
            }
            &self.parts[..end]
        };
        trimmed.hash(state);
        // Pre-release segments hash the way they compare: numeric
        // segments by value (`rc.2` == `rc.02`), others by text.
        if let Some(pre) = &self.pre {
            for segment in pre.split('.') {
                match segment.parse::<u64>() {
                    Ok(n) => n.hash(state),
                    Err(_) => segment.hash(state),
                }
            }
        }
    }
}

/// Error parsing a version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid version {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseVersionError {}

impl Version {
    /// Builds a version from explicit numeric components.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: &[u32]) -> Self {
        assert!(!parts.is_empty(), "a version needs at least one component");
        Version {
            parts: parts.to_vec(),
            pre: None,
        }
    }

    /// Convenience constructor for the common three-component case.
    pub fn semver(major: u32, minor: u32, patch: u32) -> Self {
        Version::new(&[major, minor, patch])
    }

    /// Parses a version string.
    ///
    /// Accepts an optional leading `v`, one to six dot-separated numeric
    /// components, and an optional pre-release suffix introduced by `-`
    /// (e.g. `1.0.0-rc.1`) or by a letter glued to the last component
    /// (e.g. `1.0b2`, seen in very old jQuery releases).
    pub fn parse(input: &str) -> Result<Self, ParseVersionError> {
        let err = |reason| ParseVersionError {
            input: input.to_string(),
            reason,
        };
        let s = input.trim();
        let s = s
            .strip_prefix('v')
            .or_else(|| s.strip_prefix('V'))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(err("empty"));
        }
        // Split off an explicit pre-release suffix.
        let (num_part, mut pre) = match s.split_once('-') {
            Some((n, p)) if !p.is_empty() => (n, Some(p.to_string())),
            Some(_) => return Err(err("trailing '-'")),
            None => (s, None),
        };
        let mut parts = Vec::with_capacity(4);
        for (i, comp) in num_part.split('.').enumerate() {
            if i >= 6 {
                return Err(err("too many components"));
            }
            if comp.is_empty() {
                return Err(err("empty component"));
            }
            // Allow a glued alpha suffix on the last component: "0b2" etc.
            let digits_end = comp
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(comp.len());
            if digits_end == 0 {
                return Err(err("component does not start with a digit"));
            }
            let n: u32 = comp[..digits_end]
                .parse()
                .map_err(|_| err("component out of range"))?;
            parts.push(n);
            if digits_end < comp.len() {
                if pre.is_some() {
                    return Err(err("two pre-release markers"));
                }
                pre = Some(comp[digits_end..].to_string());
                // A glued suffix must be on the final component.
                if num_part.split('.').count() != i + 1 {
                    return Err(err("alpha suffix before last component"));
                }
                break;
            }
        }
        if parts.is_empty() {
            return Err(err("no numeric components"));
        }
        Ok(Version { parts, pre })
    }

    /// The numeric components.
    pub fn parts(&self) -> &[u32] {
        &self.parts
    }

    /// Major (first) component.
    pub fn major(&self) -> u32 {
        self.parts[0]
    }

    /// Minor (second) component, 0 when absent.
    pub fn minor(&self) -> u32 {
        self.parts.get(1).copied().unwrap_or(0)
    }

    /// Patch (third) component, 0 when absent.
    pub fn patch(&self) -> u32 {
        self.parts.get(2).copied().unwrap_or(0)
    }

    /// The pre-release identifier, if any.
    pub fn pre(&self) -> Option<&str> {
        self.pre.as_deref()
    }

    /// True when this is a pre-release (`-beta`, `rc1`, …).
    pub fn is_prerelease(&self) -> bool {
        self.pre.is_some()
    }
}

impl FromStr for Version {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Version::parse(s)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{p}")?;
        }
        if let Some(pre) = &self.pre {
            // Round-trip glued suffixes without the dash; dashed otherwise.
            if pre.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                && !pre.contains('.')
                && pre.len() <= 3
            {
                write!(f, "{pre}")?;
            } else {
                write!(f, "-{pre}")?;
            }
        }
        Ok(())
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        let len = self.parts.len().max(other.parts.len());
        for i in 0..len {
            let a = self.parts.get(i).copied().unwrap_or(0);
            let b = other.parts.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        match (&self.pre, &other.pre) {
            (None, None) => Ordering::Equal,
            (Some(_), None) => Ordering::Less, // pre-release sorts first
            (None, Some(_)) => Ordering::Greater,
            (Some(a), Some(b)) => cmp_prerelease(a, b),
        }
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compares pre-release identifiers semver-style: dot-separated fields,
/// numeric fields compare numerically and sort before alphanumeric ones.
fn cmp_prerelease(a: &str, b: &str) -> Ordering {
    let mut xs = a.split('.');
    let mut ys = b.split('.');
    loop {
        match (xs.next(), ys.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(x), Some(y)) => {
                let ord = match (x.parse::<u64>(), y.parse::<u64>()) {
                    (Ok(nx), Ok(ny)) => nx.cmp(&ny),
                    (Ok(_), Err(_)) => Ordering::Less,
                    (Err(_), Ok(_)) => Ordering::Greater,
                    (Err(_), Err(_)) => x.cmp(y),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn parses_common_shapes() {
        assert_eq!(v("1.12.4").parts(), &[1, 12, 4]);
        assert_eq!(v("2.2").parts(), &[2, 2]);
        assert_eq!(v("3").parts(), &[3]);
        assert_eq!(v("1.6.0.1").parts(), &[1, 6, 0, 1]);
        assert_eq!(v("v3.5.1").parts(), &[3, 5, 1]);
    }

    #[test]
    fn parses_prereleases() {
        assert_eq!(v("2.1.0-beta.1").pre(), Some("beta.1"));
        assert_eq!(v("1.0b2").pre(), Some("b2"));
        assert_eq!(v("1.0rc1").pre(), Some("rc1"));
        assert!(v("1.0").pre().is_none());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "v",
            "a.b.c",
            "1..2",
            "1.2.3.4.5.6.7",
            ".",
            "-rc",
            "1.2-",
        ] {
            assert!(Version::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn ordering_pads_missing_components() {
        assert_eq!(v("1.9"), v("1.9.0"));
        assert!(v("1.9") < v("1.9.1"));
        assert!(v("1.12.4") < v("1.13"));
        assert!(v("2") > v("1.99.99"));
        assert!(v("1.6.0.1") > v("1.6"));
        assert!(v("1.6.0.1") < v("1.6.1"));
    }

    #[test]
    fn prerelease_sorts_before_release() {
        assert!(v("3.0.0-rc1") < v("3.0.0"));
        assert!(v("3.0.0-alpha") < v("3.0.0-beta"));
        assert!(v("3.0.0-rc.1") < v("3.0.0-rc.2"));
        assert!(
            v("3.0.0-rc.2") < v("3.0.0-rc.10"),
            "numeric fields compare numerically"
        );
        assert!(v("1.0b1") < v("1.0"));
        assert!(v("3.0.0") < v("3.0.1-rc1"));
    }

    #[test]
    fn display_round_trips() {
        for s in ["1.12.4", "2.2", "3", "1.6.0.1", "2.1.0-beta.1", "1.0b2"] {
            assert_eq!(v(s).to_string(), s, "round trip {s}");
        }
        assert_eq!(v("v3.5.1").to_string(), "3.5.1");
    }

    #[test]
    fn paper_version_facts_hold() {
        // Orderings the paper's analysis depends on.
        assert!(
            v("1.12.4") < v("3.5.0"),
            "dominant jQuery is older than patch"
        );
        assert!(v("2.2.3") < v("3.6.0"), "docusign's jQuery in TVV range");
        assert!(v("3.5.1") < v("3.6.0"), "microsoft's jQuery in TVV range");
        assert!(v("1.4.1") < v("3.3.2"), "jQuery-Migrate dominant vs latest");
    }

    #[test]
    fn serde_round_trip() {
        let x = v("1.12.4");
        let json = serde_json::to_string(&x).expect("serialize");
        let back: Version = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(x, back);
    }

    #[test]
    fn hash_matches_numeric_prerelease_equality() {
        use std::collections::HashSet;
        // rc.2 and rc.02 compare equal (numeric segments), so they must
        // hash identically.
        assert_eq!(v("1.0-rc.2"), v("1.0-rc.02"));
        let mut set = HashSet::new();
        assert!(set.insert(v("1.0-rc.2")));
        assert!(!set.insert(v("1.0-rc.02")));
    }

    #[test]
    fn eq_and_hash_ignore_trailing_zeros() {
        use std::collections::HashSet;
        assert_eq!(v("1.9"), v("1.9.0"));
        assert_ne!(v("1.9"), v("1.9.1"));
        let mut set = HashSet::new();
        assert!(set.insert(v("1.9")));
        assert!(!set.insert(v("1.9.0")), "1.9.0 hashes like 1.9");
        assert!(set.insert(v("1.9.1")));
        assert!(set.insert(v("1.9.0-rc1")), "pre-release is distinct");
    }
}
