//! Property-based tests for version ordering and interval-set algebra.

use proptest::prelude::*;
use webvuln_version::{Interval, IntervalSet, Version, VersionReq};

/// Strategy producing arbitrary (small) versions.
fn arb_version() -> impl Strategy<Value = Version> {
    (0u32..8, 0u32..8, 0u32..8).prop_map(|(a, b, c)| Version::semver(a, b, c))
}

/// Strategy producing an interval set built from random half-open ranges.
fn arb_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec((arb_version(), arb_version()), 0..5).prop_map(|pairs| {
        IntervalSet::from_intervals(pairs.into_iter().map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::half_open(lo, hi)
        }))
    })
}

proptest! {
    /// Version ordering is total and consistent with equality.
    #[test]
    fn ordering_is_total(a in arb_version(), b in arb_version()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert!(b > a),
            Greater => prop_assert!(b < a),
            Equal => prop_assert_eq!(&a, &b),
        }
    }

    /// Parsing a displayed version yields an equal version.
    #[test]
    fn display_parse_round_trip(v in arb_version()) {
        let s = v.to_string();
        let back = Version::parse(&s).expect("displayed versions parse");
        prop_assert_eq!(v, back);
    }

    /// De Morgan over interval sets: ¬(A ∪ B) = ¬A ∩ ¬B, checked pointwise.
    #[test]
    fn de_morgan_pointwise(a in arb_set(), b in arb_set(), probe in arb_version()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert_eq!(lhs.contains(&probe), rhs.contains(&probe));
    }

    /// Subtraction semantics: x ∈ A \ B ⇔ x ∈ A ∧ x ∉ B.
    #[test]
    fn subtract_pointwise(a in arb_set(), b in arb_set(), probe in arb_version()) {
        let diff = a.subtract(&b);
        prop_assert_eq!(diff.contains(&probe), a.contains(&probe) && !b.contains(&probe));
    }

    /// Union semantics, pointwise.
    #[test]
    fn union_pointwise(a in arb_set(), b in arb_set(), probe in arb_version()) {
        prop_assert_eq!(
            a.union(&b).contains(&probe),
            a.contains(&probe) || b.contains(&probe)
        );
    }

    /// Double complement is identity.
    #[test]
    fn double_complement(a in arb_set(), probe in arb_version()) {
        prop_assert_eq!(a.complement().complement().contains(&probe), a.contains(&probe));
    }

    /// Canonical invariant: interval sets never hold empty or overlapping
    /// intervals after construction.
    #[test]
    fn canonical_form(a in arb_set()) {
        for iv in a.intervals() {
            prop_assert!(!iv.is_empty());
        }
        for w in a.intervals().windows(2) {
            // Strictly disjoint and ordered: the intersection must be empty.
            prop_assert!(w[0].intersect(&w[1]).is_empty());
        }
    }

    /// A requirement built from any single comparator string agrees with
    /// its interval-set form on arbitrary probes.
    #[test]
    fn req_matches_interval_set(
        op in prop::sample::select(vec!["<", "<=", ">", ">=", "="]),
        v in arb_version(),
        probe in arb_version(),
    ) {
        let spec = format!("{op} {v}");
        let req = VersionReq::parse(&spec).expect("valid requirement");
        prop_assert_eq!(req.matches(&probe), req.to_interval_set().contains(&probe));
    }
}
