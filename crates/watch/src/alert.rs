//! Exposure alerts: the unit the retro-scanner emits and the outbox
//! journals.

use crate::wal::{write_str, write_u64, Cursor};

/// How much of the store a retro-scan actually covered. A degraded store
/// (quarantined or missing shard files) downgrades coverage instead of
/// failing the scan; every alert carries the fraction so a consumer can
/// tell "clean sweep" from "best effort".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards the scan could read.
    pub shards_scanned: u32,
    /// Shards the store is declared to hold.
    pub shards_total: u32,
}

impl Coverage {
    /// True when every shard was readable.
    pub fn is_full(&self) -> bool {
        self.shards_scanned == self.shards_total
    }
}

/// One per-domain exposure alert: `domain` served a version of
/// `library` inside `cve_id`'s claimed range during the week span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Deterministic identifier (see [`alert_id`]); dedup key for
    /// exactly-once-effective delivery.
    pub id: u64,
    /// The vulnerability report that triggered the scan.
    pub cve_id: String,
    /// Affected library slug.
    pub library: String,
    /// The exposed domain.
    pub domain: String,
    /// First week (0-based) the exposure was observed.
    pub first_week: u32,
    /// Last week the exposure was observed.
    pub last_week: u32,
    /// Number of weeks with an observed exposure (≤ the span when the
    /// domain dropped the library in between).
    pub weeks_exposed: u32,
    /// Scan coverage when this alert was produced.
    pub coverage: Coverage,
}

/// Deterministic alert identifier: FNV-1a over the identifying fields.
///
/// A re-run of the same retro-scan — after a crash, a re-delivered CVE
/// delta, or a supervisor restart — produces byte-identical IDs, which is
/// what lets at-least-once journaling collapse to exactly-once delivery.
/// The week span is part of the identity: a *longer* exposure discovered
/// after more weeks arrive is a new alert, not a duplicate.
pub fn alert_id(cve_id: &str, domain: &str, first_week: u32, last_week: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cve_id
        .bytes()
        .chain([0u8])
        .chain(domain.bytes())
        .chain([0u8])
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    for part in [first_week, last_week] {
        for b in part.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

impl Alert {
    /// Builds an alert, deriving its deterministic ID.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cve_id: &str,
        library: &str,
        domain: &str,
        first_week: u32,
        last_week: u32,
        weeks_exposed: u32,
        coverage: Coverage,
    ) -> Alert {
        Alert {
            id: alert_id(cve_id, domain, first_week, last_week),
            cve_id: cve_id.to_string(),
            library: library.to_string(),
            domain: domain.to_string(),
            first_week,
            last_week,
            weeks_exposed,
            coverage,
        }
    }

    /// Encodes the alert into the outbox's frame payload format.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_u64(out, self.id);
        write_str(out, &self.cve_id);
        write_str(out, &self.library);
        write_str(out, &self.domain);
        write_u64(out, u64::from(self.first_week));
        write_u64(out, u64::from(self.last_week));
        write_u64(out, u64::from(self.weeks_exposed));
        write_u64(out, u64::from(self.coverage.shards_scanned));
        write_u64(out, u64::from(self.coverage.shards_total));
    }

    /// Decodes an alert encoded by [`Alert::encode`].
    pub fn decode(cur: &mut Cursor<'_>) -> Option<Alert> {
        Some(Alert {
            id: cur.u64()?,
            cve_id: cur.str()?,
            library: cur.str()?,
            domain: cur.str()?,
            first_week: u32::try_from(cur.u64()?).ok()?,
            last_week: u32::try_from(cur.u64()?).ok()?,
            weeks_exposed: u32::try_from(cur.u64()?).ok()?,
            coverage: Coverage {
                shards_scanned: u32::try_from(cur.u64()?).ok()?,
                shards_total: u32::try_from(cur.u64()?).ok()?,
            },
        })
    }

    /// The delivered-log line for this alert. The ID leads the line so a
    /// reopened outbox can recover the delivered set with a prefix scan.
    pub fn log_line(&self) -> String {
        format!(
            "{:016x} {} {} {} weeks {}-{} exposed {} coverage {}/{}",
            self.id,
            self.cve_id,
            self.library,
            self.domain,
            self.first_week,
            self.last_week,
            self.weeks_exposed,
            self.coverage.shards_scanned,
            self.coverage.shards_total,
        )
    }

    /// Parses the leading ID of a delivered-log line; `None` for torn or
    /// foreign lines.
    pub fn log_line_id(line: &str) -> Option<u64> {
        let token = line.split_whitespace().next()?;
        if token.len() != 16 {
            return None;
        }
        u64::from_str_radix(token, 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Alert {
        Alert::new(
            "CVE-2020-11022",
            "jquery",
            "site001.example",
            3,
            9,
            5,
            Coverage {
                shards_scanned: 3,
                shards_total: 4,
            },
        )
    }

    #[test]
    fn ids_are_deterministic_and_identity_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.id, b.id);
        assert_ne!(
            alert_id("CVE-2020-11022", "site001.example", 3, 9),
            alert_id("CVE-2020-11023", "site001.example", 3, 9)
        );
        assert_ne!(
            alert_id("CVE-2020-11022", "site001.example", 3, 9),
            alert_id("CVE-2020-11022", "site002.example", 3, 9)
        );
        assert_ne!(
            alert_id("CVE-2020-11022", "site001.example", 3, 9),
            alert_id("CVE-2020-11022", "site001.example", 3, 10),
            "a longer exposure is a new alert"
        );
        // Field boundaries matter: moving a byte across the separator
        // must change the hash.
        assert_ne!(
            alert_id("CVE-1a", "b.example", 0, 0),
            alert_id("CVE-1", "ab.example", 0, 0)
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let alert = sample();
        let mut buf = Vec::new();
        alert.encode(&mut buf);
        let mut cur = Cursor::new(&buf);
        assert_eq!(Alert::decode(&mut cur), Some(alert));
        assert!(cur.is_empty());
    }

    #[test]
    fn log_lines_lead_with_the_id() {
        let alert = sample();
        let line = alert.log_line();
        assert_eq!(Alert::log_line_id(&line), Some(alert.id));
        assert!(line.contains("coverage 3/4"));
        assert_eq!(Alert::log_line_id("torn garbag"), None);
        assert_eq!(Alert::log_line_id(""), None);
    }
}
