//! The watch crate's error type.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use webvuln_store::StoreError;

/// Everything that can go wrong in the watch loop.
#[derive(Debug)]
pub enum WatchError {
    /// Filesystem failure, with the path involved.
    Io {
        /// The file or directory being touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The snapshot store refused an operation.
    Store(StoreError),
    /// A spool, genesis, or outbox file failed to decode.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to decode.
        detail: String,
    },
    /// A CVE delta file failed to parse.
    Delta {
        /// The offending file.
        path: PathBuf,
        /// The parser's message.
        detail: String,
    },
    /// A fail-point injected an error.
    Injected(webvuln_failpoint::Injected),
}

impl WatchError {
    /// Wraps an [`io::Error`] with its path.
    pub fn io(path: &Path, source: io::Error) -> WatchError {
        WatchError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    /// A decode failure at `path`.
    pub fn corrupt(path: &Path, detail: impl Into<String>) -> WatchError {
        WatchError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::Io { path, source } => {
                write!(f, "watch i/o error at {}: {source}", path.display())
            }
            WatchError::Store(e) => write!(f, "watch store error: {e}"),
            WatchError::Corrupt { path, detail } => {
                write!(f, "corrupt watch file {}: {detail}", path.display())
            }
            WatchError::Delta { path, detail } => {
                write!(f, "bad CVE delta {}: {detail}", path.display())
            }
            WatchError::Injected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WatchError::Io { source, .. } => Some(source),
            WatchError::Store(e) => Some(e),
            WatchError::Injected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for WatchError {
    fn from(e: StoreError) -> WatchError {
        WatchError::Store(e)
    }
}

impl From<webvuln_failpoint::Injected> for WatchError {
    fn from(e: webvuln_failpoint::Injected) -> WatchError {
        WatchError::Injected(e)
    }
}
