//! # webvuln-watch
//!
//! The supervised live-ingestion daemon: keeps a sharded snapshot store
//! growing as weekly crawls arrive, keeps the full study accumulator
//! *live* by absorbing each new week incrementally (never a full refold
//! on the hot path), and turns newly-disclosed CVEs into per-domain
//! exposure alerts by retro-scanning the committed history.
//!
//! The robustness headline is that every side effect is journaled and
//! idempotent, so crashing the daemon anywhere and restarting it loses
//! nothing and duplicates nothing:
//!
//! * **Ingestion** is keyed on the store's manifest epoch — a spool week
//!   at or below the committed count is a no-op ([`Watcher`]).
//! * **Retro-scans** commit by appending to an applied-journal; a crash
//!   mid-scan replays the scan and the outbox dedups the alerts by
//!   their deterministic ID ([`alert_id`]).
//! * **Delivery** runs through a CRC-framed write-ahead log with
//!   at-least-once semantics plus ID dedup — exactly-once effective
//!   ([`Outbox`]).
//! * **Supervision** catches faults and panics, backs restarts off with
//!   seeded full jitter on the virtual clock, and reopens the watcher
//!   from disk — reopen *is* the recovery path ([`supervise`]).
//! * **Degradation**: a quarantined shard downgrades retro-scan
//!   [`Coverage`] (annotated on every alert) instead of stopping the
//!   daemon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fail-point sites owned by this crate, for the chaos-harness catalog.
///
/// - `watch.ingest` — fires after a spool week is read but before it is
///   committed to the store (key: the week index).
/// - `watch.outbox.append` — fires before an alert's ENQUEUE frame is
///   journaled (key: the alert ID in hex).
/// - `watch.outbox.deliver` — fires twice per owed alert: before the
///   delivery-log append (key `<id>:deliver`) and between the append
///   and the ACK frame (key `<id>:ack`).
/// - `watch.retro` — fires before a delta file's retro-scan begins
///   (key: the delta file name).
pub const FAILPOINTS: &[&str] = &[
    "watch.ingest",
    "watch.outbox.append",
    "watch.outbox.deliver",
    "watch.retro",
];

pub mod alert;
pub mod error;
pub mod outbox;
pub mod spool;
pub mod supervisor;
pub mod wal;
pub mod watcher;

pub use alert::{alert_id, Alert, Coverage};
pub use error::WatchError;
pub use outbox::{DeliveryReport, Outbox, OutboxRecovery, OutboxSnapshot};
pub use spool::{
    read_genesis_file, read_week_file, scan_spool, week_file_name, write_genesis_file,
    write_week_file, GENESIS_FILE,
};
pub use supervisor::{supervise, SupervisorConfig, SupervisorReport};
pub use watcher::{load_watch_state, scan_deltas, TickReport, WatchConfig, WatchState, Watcher};
