//! The crash-journaled alert outbox.
//!
//! Two files make the guarantee:
//!
//! * `outbox.wal` — a CRC-framed WAL of `ENQUEUE(alert)` and `ACK(id)`
//!   records. An alert is *owed* from the moment its ENQUEUE frame is
//!   durable until an ACK frame for its ID lands.
//! * `alerts.log` — the delivery target: one text line per alert, ID
//!   first. Appending the line *is* the delivery.
//!
//! The protocol is at-least-once: a crash after the log append but
//! before the ACK leaves the alert owed, and a reopened outbox will try
//! again. Delivery is idempotent — the reopened outbox reloads the
//! delivered-ID set from `alerts.log` and skips IDs already present, so
//! the log never carries a duplicate: at-least-once journaling plus
//! deterministic IDs is exactly-once effective.

use crate::alert::Alert;
use crate::error::WatchError;
use crate::wal::{Cursor, FrameLog, write_u64};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const TAG_ENQUEUE: u8 = 1;
const TAG_ACK: u8 = 2;

/// What an [`Outbox::open`] found in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutboxRecovery {
    /// ENQUEUE records replayed from the WAL.
    pub replayed: usize,
    /// Alerts still owed (enqueued, never acked) at open.
    pub pending: usize,
    /// IDs already present in the delivery log.
    pub delivered: usize,
}

/// One `deliver_pending` round's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryReport {
    /// Alert lines appended to the delivery log this round.
    pub delivered: usize,
    /// Owed alerts whose ID was already in the log (crash between
    /// delivery and ACK on a previous run); acked without re-appending.
    pub deduped: usize,
}

/// The crash-journaled alert outbox. See the module docs for the
/// protocol.
pub struct Outbox {
    wal: FrameLog,
    wal_path: PathBuf,
    delivery_path: PathBuf,
    /// Owed and acked alerts by ID, in enqueue order.
    enqueued: BTreeMap<u64, Alert>,
    order: Vec<u64>,
    acked: BTreeSet<u64>,
    /// IDs present in the delivery log.
    delivered: BTreeSet<u64>,
}

impl Outbox {
    /// Opens the outbox, healing torn tails in both files and replaying
    /// the WAL into the owed set.
    pub fn open(wal_path: &Path, delivery_log: &Path) -> Result<(Outbox, OutboxRecovery), WatchError> {
        let (wal, frames) =
            FrameLog::open(wal_path).map_err(|e| WatchError::io(wal_path, e))?;
        let mut enqueued = BTreeMap::new();
        let mut order = Vec::new();
        let mut acked = BTreeSet::new();
        let mut replayed = 0usize;
        for payload in &frames.payloads {
            let mut cur = Cursor::new(payload);
            match cur.u8() {
                Some(TAG_ENQUEUE) => {
                    let alert = Alert::decode(&mut cur).ok_or_else(|| {
                        WatchError::corrupt(wal_path, "undecodable ENQUEUE frame")
                    })?;
                    if !enqueued.contains_key(&alert.id) {
                        order.push(alert.id);
                    }
                    enqueued.insert(alert.id, alert);
                    replayed += 1;
                }
                Some(TAG_ACK) => {
                    let id = cur
                        .u64()
                        .ok_or_else(|| WatchError::corrupt(wal_path, "undecodable ACK frame"))?;
                    acked.insert(id);
                }
                _ => return Err(WatchError::corrupt(wal_path, "unknown frame tag")),
            }
        }
        let delivered = heal_delivery_log(delivery_log)?;
        let pending = order.iter().filter(|id| !acked.contains(id)).count();
        let recovery = OutboxRecovery {
            replayed,
            pending,
            delivered: delivered.len(),
        };
        Ok((
            Outbox {
                wal,
                wal_path: wal_path.to_path_buf(),
                delivery_path: delivery_log.to_path_buf(),
                enqueued,
                order,
                acked,
                delivered,
            },
            recovery,
        ))
    }

    /// Journals an alert as owed. Re-enqueueing an ID already journaled
    /// (a retro-scan replayed after a crash) is a no-op returning
    /// `false` — the WAL stays append-only and duplicate-free.
    pub fn enqueue(&mut self, alert: &Alert) -> Result<bool, WatchError> {
        if self.enqueued.contains_key(&alert.id) {
            return Ok(false);
        }
        let key = format!("{:016x}", alert.id);
        let _ = webvuln_failpoint::failpoint!("watch.outbox.append", &key)?;
        let mut payload = Vec::new();
        payload.push(TAG_ENQUEUE);
        alert.encode(&mut payload);
        self.wal
            .append(&payload)
            .map_err(|e| WatchError::io(&self.wal_path, e))?;
        self.order.push(alert.id);
        self.enqueued.insert(alert.id, alert.clone());
        Ok(true)
    }

    /// Delivers every owed alert: appends its line to the delivery log
    /// (unless its ID is already there), then ACKs it in the WAL. The
    /// `watch.outbox.deliver` fail-point fires twice per alert — before
    /// the log append (`…:deliver`) and between the append and the ACK
    /// (`…:ack`) — so the chaos harness can kill inside either window.
    pub fn deliver_pending(&mut self) -> Result<DeliveryReport, WatchError> {
        let mut report = DeliveryReport::default();
        let owed: Vec<u64> = self
            .order
            .iter()
            .copied()
            .filter(|id| !self.acked.contains(id))
            .collect();
        for id in owed {
            let alert = self.enqueued[&id].clone();
            let key = format!("{id:016x}:deliver");
            let _ = webvuln_failpoint::failpoint!("watch.outbox.deliver", &key)?;
            if self.delivered.contains(&id) {
                report.deduped += 1;
            } else {
                self.append_delivery_line(&alert)?;
                self.delivered.insert(id);
                report.delivered += 1;
            }
            let key = format!("{id:016x}:ack");
            let _ = webvuln_failpoint::failpoint!("watch.outbox.deliver", &key)?;
            let mut payload = Vec::new();
            payload.push(TAG_ACK);
            write_u64(&mut payload, id);
            self.wal
                .append(&payload)
                .map_err(|e| WatchError::io(&self.wal_path, e))?;
            self.acked.insert(id);
        }
        Ok(report)
    }

    fn append_delivery_line(&self, alert: &Alert) -> Result<(), WatchError> {
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.delivery_path)
            .map_err(|e| WatchError::io(&self.delivery_path, e))?;
        let line = format!("{}\n", alert.log_line());
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| WatchError::io(&self.delivery_path, e))
    }

    /// Alerts journaled but not yet acked, in enqueue order.
    pub fn pending(&self) -> Vec<&Alert> {
        self.order
            .iter()
            .filter(|id| !self.acked.contains(id))
            .map(|id| &self.enqueued[id])
            .collect()
    }

    /// Count of owed alerts.
    pub fn pending_count(&self) -> usize {
        self.order.iter().filter(|id| !self.acked.contains(id)).count()
    }

    /// Count of IDs present in the delivery log.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// Count of distinct alerts ever journaled.
    pub fn enqueued_count(&self) -> usize {
        self.order.len()
    }
}

/// Truncates a torn (unterminated) last line, then returns the set of
/// alert IDs the delivery log already holds.
fn heal_delivery_log(path: &Path) -> Result<BTreeSet<u64>, WatchError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .open(path)
        .map_err(|e| WatchError::io(path, e))?;
    let mut text = String::new();
    let mut raw = Vec::new();
    file.read_to_end(&mut raw).map_err(|e| WatchError::io(path, e))?;
    // The log is ASCII by construction; lossy decode keeps a torn
    // multi-byte write from wedging recovery.
    text.push_str(&String::from_utf8_lossy(&raw));
    let clean_len = match text.rfind('\n') {
        Some(pos) => pos + 1,
        None => 0,
    };
    if clean_len < raw.len() {
        file.set_len(clean_len as u64)
            .and_then(|()| file.sync_all())
            .map_err(|e| WatchError::io(path, e))?;
    }
    file.seek(SeekFrom::End(0)).map_err(|e| WatchError::io(path, e))?;
    Ok(text[..clean_len]
        .lines()
        .filter_map(Alert::log_line_id)
        .collect())
}

/// A read-only view of an outbox, safe to take while a daemon owns the
/// files: scans both files without healing or truncating anything (a
/// torn tail is simply ignored). The serve layer's `/alerts` endpoint
/// reads through this.
#[derive(Debug, Clone, Default)]
pub struct OutboxSnapshot {
    /// Every alert ever journaled, in enqueue order.
    pub alerts: Vec<Alert>,
    /// IDs acked in the WAL.
    pub acked: BTreeSet<u64>,
    /// IDs present in the delivery log.
    pub delivered: BTreeSet<u64>,
}

impl OutboxSnapshot {
    /// Loads the snapshot; missing files read as empty.
    pub fn load(wal_path: &Path, delivery_log: &Path) -> Result<OutboxSnapshot, WatchError> {
        let mut snapshot = OutboxSnapshot::default();
        if let Ok(data) = std::fs::read(wal_path) {
            let frames = crate::wal::read_frames(&data);
            let mut seen = BTreeSet::new();
            for payload in &frames.payloads {
                let mut cur = Cursor::new(payload);
                match cur.u8() {
                    Some(TAG_ENQUEUE) => {
                        if let Some(alert) = Alert::decode(&mut cur) {
                            if seen.insert(alert.id) {
                                snapshot.alerts.push(alert);
                            }
                        }
                    }
                    Some(TAG_ACK) => {
                        if let Some(id) = cur.u64() {
                            snapshot.acked.insert(id);
                        }
                    }
                    _ => break,
                }
            }
        }
        if let Ok(raw) = std::fs::read(delivery_log) {
            let text = String::from_utf8_lossy(&raw);
            snapshot.delivered = text.lines().filter_map(Alert::log_line_id).collect();
        }
        Ok(snapshot)
    }

    /// Alerts not yet acked.
    pub fn pending(&self) -> Vec<&Alert> {
        self.alerts
            .iter()
            .filter(|a| !self.acked.contains(&a.id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::Coverage;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wvoutbox-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn alert(n: u32) -> Alert {
        Alert::new(
            "CVE-2020-11022",
            "jquery",
            &format!("site{n:03}.example"),
            0,
            3,
            4,
            Coverage {
                shards_scanned: 1,
                shards_total: 1,
            },
        )
    }

    fn log_ids(path: &Path) -> Vec<u64> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .filter_map(Alert::log_line_id)
            .collect()
    }

    #[test]
    fn enqueue_deliver_ack_round_trip() {
        let dir = tmp("round");
        let wal = dir.join("outbox.wal");
        let log = dir.join("alerts.log");
        let (mut outbox, recovery) = Outbox::open(&wal, &log).unwrap();
        assert_eq!(recovery, OutboxRecovery::default());
        assert!(outbox.enqueue(&alert(1)).unwrap());
        assert!(outbox.enqueue(&alert(2)).unwrap());
        assert!(!outbox.enqueue(&alert(1)).unwrap(), "duplicate is a no-op");
        assert_eq!(outbox.pending_count(), 2);
        let report = outbox.deliver_pending().unwrap();
        assert_eq!(report.delivered, 2);
        assert_eq!(report.deduped, 0);
        assert_eq!(outbox.pending_count(), 0);
        assert_eq!(log_ids(&log), vec![alert(1).id, alert(2).id]);
        // A reopened outbox owes nothing and redelivers nothing.
        let (mut outbox, recovery) = Outbox::open(&wal, &log).unwrap();
        assert_eq!(recovery.pending, 0);
        assert_eq!(recovery.delivered, 2);
        let report = outbox.deliver_pending().unwrap();
        assert_eq!((report.delivered, report.deduped), (0, 0));
        assert_eq!(log_ids(&log).len(), 2);
    }

    #[test]
    fn crash_between_delivery_and_ack_is_deduped() {
        let dir = tmp("dedup");
        let wal = dir.join("outbox.wal");
        let log = dir.join("alerts.log");
        {
            let (mut outbox, _) = Outbox::open(&wal, &log).unwrap();
            outbox.enqueue(&alert(7)).unwrap();
            // Simulate delivery-then-crash: append the line by hand,
            // never ack.
            outbox.append_delivery_line(&alert(7)).unwrap();
        }
        let (mut outbox, recovery) = Outbox::open(&wal, &log).unwrap();
        assert_eq!(recovery.pending, 1);
        assert_eq!(recovery.delivered, 1);
        let report = outbox.deliver_pending().unwrap();
        assert_eq!(report.delivered, 0);
        assert_eq!(report.deduped, 1);
        assert_eq!(outbox.pending_count(), 0);
        assert_eq!(log_ids(&log).len(), 1, "no duplicate line");
    }

    #[test]
    fn torn_delivery_log_line_is_healed() {
        let dir = tmp("torn");
        let wal = dir.join("outbox.wal");
        let log = dir.join("alerts.log");
        {
            let (mut outbox, _) = Outbox::open(&wal, &log).unwrap();
            outbox.enqueue(&alert(1)).unwrap();
            outbox.deliver_pending().unwrap();
        }
        // Tear the log mid-line.
        let mut bytes = std::fs::read(&log).unwrap();
        let healthy = bytes.len();
        bytes.extend_from_slice(b"deadbeef00");
        std::fs::write(&log, &bytes).unwrap();
        let (_, recovery) = Outbox::open(&wal, &log).unwrap();
        assert_eq!(recovery.delivered, 1);
        assert_eq!(std::fs::metadata(&log).unwrap().len(), healthy as u64);
    }

    #[test]
    fn snapshot_reads_without_mutating() {
        let dir = tmp("snap");
        let wal = dir.join("outbox.wal");
        let log = dir.join("alerts.log");
        {
            let (mut outbox, _) = Outbox::open(&wal, &log).unwrap();
            outbox.enqueue(&alert(1)).unwrap();
            outbox.enqueue(&alert(2)).unwrap();
            outbox.deliver_pending().unwrap();
            outbox.enqueue(&alert(3)).unwrap();
        }
        let before = std::fs::read(&wal).unwrap();
        let snapshot = OutboxSnapshot::load(&wal, &log).unwrap();
        assert_eq!(snapshot.alerts.len(), 3);
        assert_eq!(snapshot.acked.len(), 2);
        assert_eq!(snapshot.delivered.len(), 2);
        assert_eq!(snapshot.pending().len(), 1);
        assert_eq!(std::fs::read(&wal).unwrap(), before, "read-only");
        // Missing files are empty, not errors.
        let empty = OutboxSnapshot::load(&dir.join("nope.wal"), &dir.join("nope.log")).unwrap();
        assert!(empty.alerts.is_empty());
    }
}
