//! The spool: how new weeks arrive.
//!
//! A producer (a crawler on another machine, a test, the bench) drops
//! `week-NNNNN.wvweek` files into the spool directory; the watcher
//! commits them through the sharded store writer in week order. Files
//! are self-checking (magic + CRC over the payload) so a torn or
//! half-copied spool file is rejected — the producer re-drops it —
//! rather than committed. `genesis.wvgenesis` bootstraps a store the
//! first time a watcher opens an empty root.
//!
//! The format is this crate's own (varint/CRC, mirroring the store's
//! codec idiom) because the store keeps its interned segment codec
//! private — and a spool file is a transport envelope, not a store
//! segment: it must be decodable standalone, without shard context.

use crate::error::WatchError;
use crate::wal::{crc32, write_i64, write_str, write_u64, Cursor};
use std::path::{Path, PathBuf};
use webvuln_store::{
    DetectionRecord, DomainRecord, FlashRecord, Genesis, PageRecord, ScriptRecord, WeekData,
    WordPressRecord,
};

const WEEK_MAGIC: &[u8; 8] = b"WVWEEK01";
const GENESIS_MAGIC: &[u8; 8] = b"WVGENES1";

/// The spool file name for week `index`.
pub fn week_file_name(index: usize) -> String {
    format!("week-{index:05}.wvweek")
}

/// The genesis bootstrap file name.
pub const GENESIS_FILE: &str = "genesis.wvgenesis";

fn opt_str(out: &mut Vec<u8>, value: Option<&str>) {
    match value {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            write_str(out, s);
        }
    }
}

fn encode_week(week: &WeekData) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64(&mut out, week.week as u64);
    write_i64(&mut out, week.date_days);
    write_u64(&mut out, week.records.len() as u64);
    for record in &week.records {
        write_str(&mut out, &record.host);
        match record.status {
            None => out.push(0),
            Some(status) => {
                out.push(1);
                write_u64(&mut out, u64::from(status));
            }
        }
        write_u64(&mut out, record.body_len);
        match &record.page {
            None => out.push(0),
            Some(page) => {
                out.push(1);
                encode_page(&mut out, page);
            }
        }
    }
    out
}

fn encode_page(out: &mut Vec<u8>, page: &PageRecord) {
    write_u64(out, page.detections.len() as u64);
    for det in &page.detections {
        write_str(out, &det.library);
        opt_str(out, det.version.as_deref());
        opt_str(out, det.external_host.as_deref());
        out.push(u8::from(det.integrity));
        opt_str(out, det.crossorigin.as_deref());
        write_str(out, &det.url);
    }
    match &page.wordpress {
        WordPressRecord::Absent => out.push(0),
        WordPressRecord::DetectedUnknownVersion => out.push(1),
        WordPressRecord::Detected(version) => {
            out.push(2);
            write_str(out, version);
        }
    }
    write_u64(out, page.flash.len() as u64);
    for flash in &page.flash {
        write_str(out, &flash.swf_url);
        opt_str(out, flash.allow_script_access.as_deref());
    }
    write_u64(out, page.resource_types.len() as u64);
    out.extend_from_slice(&page.resource_types);
    write_u64(out, page.github_scripts.len() as u64);
    for script in &page.github_scripts {
        write_str(out, &script.host);
        write_str(out, &script.url);
        out.push(u8::from(script.integrity));
        opt_str(out, script.crossorigin.as_deref());
    }
    write_u64(out, page.external_scripts);
    write_u64(out, page.external_scripts_without_integrity);
    write_u64(out, page.crossorigin_values.len() as u64);
    for value in &page.crossorigin_values {
        write_str(out, value);
    }
}

struct WeekReader<'a, 'b> {
    cur: &'b mut Cursor<'a>,
    path: &'b Path,
}

impl WeekReader<'_, '_> {
    fn bad(&self, what: &str) -> WatchError {
        WatchError::corrupt(self.path, format!("{what} at byte {}", self.cur.pos()))
    }

    fn u8(&mut self, what: &str) -> Result<u8, WatchError> {
        self.cur.u8().ok_or_else(|| self.bad(what))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WatchError> {
        self.cur.u64().ok_or_else(|| self.bad(what))
    }

    fn str(&mut self, what: &str) -> Result<String, WatchError> {
        self.cur.str().ok_or_else(|| self.bad(what))
    }

    fn opt_str(&mut self, what: &str) -> Result<Option<String>, WatchError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(what)?)),
            _ => Err(self.bad(what)),
        }
    }

    fn bool(&mut self, what: &str) -> Result<bool, WatchError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.bad(what)),
        }
    }
}

fn decode_week(path: &Path, payload: &[u8]) -> Result<WeekData, WatchError> {
    let mut cur = Cursor::new(payload);
    let mut r = WeekReader {
        cur: &mut cur,
        path,
    };
    let week = r.u64("week index")? as usize;
    let date_days = r.cur.i64().ok_or_else(|| {
        WatchError::corrupt(path, "week date")
    })?;
    let n_records = r.u64("record count")?;
    if n_records > payload.len() as u64 {
        return Err(r.bad("record count"));
    }
    let mut records = Vec::with_capacity(n_records as usize);
    for _ in 0..n_records {
        let host = r.str("host")?;
        let status = match r.u8("status tag")? {
            0 => None,
            1 => {
                let raw = r.u64("status")?;
                Some(u16::try_from(raw).map_err(|_| r.bad("status range"))?)
            }
            _ => return Err(r.bad("status tag")),
        };
        let body_len = r.u64("body length")?;
        let page = match r.u8("page tag")? {
            0 => None,
            1 => Some(decode_page(&mut r)?),
            _ => return Err(r.bad("page tag")),
        };
        records.push(DomainRecord {
            host,
            status,
            body_len,
            page,
        });
    }
    if !r.cur.is_empty() {
        return Err(WatchError::corrupt(path, "trailing bytes"));
    }
    Ok(WeekData {
        week,
        date_days,
        records,
    })
}

fn decode_page(r: &mut WeekReader<'_, '_>) -> Result<PageRecord, WatchError> {
    let n_det = r.u64("detection count")?;
    let mut detections = Vec::with_capacity(n_det.min(1024) as usize);
    for _ in 0..n_det {
        detections.push(DetectionRecord {
            library: r.str("library")?,
            version: r.opt_str("version")?,
            external_host: r.opt_str("external host")?,
            integrity: r.bool("integrity")?,
            crossorigin: r.opt_str("crossorigin")?,
            url: r.str("detection url")?,
        });
    }
    let wordpress = match r.u8("wordpress tag")? {
        0 => WordPressRecord::Absent,
        1 => WordPressRecord::DetectedUnknownVersion,
        2 => WordPressRecord::Detected(r.str("wordpress version")?),
        _ => return Err(r.bad("wordpress tag")),
    };
    let n_flash = r.u64("flash count")?;
    let mut flash = Vec::with_capacity(n_flash.min(1024) as usize);
    for _ in 0..n_flash {
        flash.push(FlashRecord {
            swf_url: r.str("swf url")?,
            allow_script_access: r.opt_str("allow_script_access")?,
        });
    }
    let n_types = r.u64("resource-type count")? as usize;
    let mut resource_types = Vec::with_capacity(n_types.min(1024));
    for _ in 0..n_types {
        resource_types.push(r.u8("resource type")?);
    }
    let n_github = r.u64("github script count")?;
    let mut github_scripts = Vec::with_capacity(n_github.min(1024) as usize);
    for _ in 0..n_github {
        github_scripts.push(ScriptRecord {
            host: r.str("script host")?,
            url: r.str("script url")?,
            integrity: r.bool("script integrity")?,
            crossorigin: r.opt_str("script crossorigin")?,
        });
    }
    let external_scripts = r.u64("external script count")?;
    let external_scripts_without_integrity = r.u64("unprotected script count")?;
    let n_co = r.u64("crossorigin value count")?;
    let mut crossorigin_values = Vec::with_capacity(n_co.min(1024) as usize);
    for _ in 0..n_co {
        crossorigin_values.push(r.str("crossorigin value")?);
    }
    Ok(PageRecord {
        detections,
        wordpress,
        flash,
        resource_types,
        github_scripts,
        external_scripts,
        external_scripts_without_integrity,
        crossorigin_values,
    })
}

fn write_checked(path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<(), WatchError> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(magic);
    let mut header = Vec::new();
    write_u64(&mut header, payload.len() as u64);
    write_u64(&mut header, u64::from(crc32(payload)));
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
    // Write to a temp name then rename, so a producer crash never leaves
    // a plausible-but-partial spool file under the real name.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &out).map_err(|e| WatchError::io(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| WatchError::io(path, e))
}

fn read_checked(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, WatchError> {
    let data = std::fs::read(path).map_err(|e| WatchError::io(path, e))?;
    if data.len() < 8 || &data[..8] != magic {
        return Err(WatchError::corrupt(path, "bad magic"));
    }
    let mut cur = Cursor::new(&data[8..]);
    let len = cur
        .u64()
        .ok_or_else(|| WatchError::corrupt(path, "payload length"))?;
    let crc = cur
        .u64()
        .ok_or_else(|| WatchError::corrupt(path, "payload crc"))?;
    let start = 8 + cur.pos();
    if len != (data.len() - start) as u64 {
        return Err(WatchError::corrupt(path, "payload length mismatch"));
    }
    let payload = &data[start..];
    if u64::from(crc32(payload)) != crc {
        return Err(WatchError::corrupt(path, "payload crc mismatch"));
    }
    Ok(payload.to_vec())
}

/// Writes `week` as a self-checking spool file under `spool_dir`.
pub fn write_week_file(spool_dir: &Path, week: &WeekData) -> Result<PathBuf, WatchError> {
    std::fs::create_dir_all(spool_dir).map_err(|e| WatchError::io(spool_dir, e))?;
    let path = spool_dir.join(week_file_name(week.week));
    write_checked(&path, WEEK_MAGIC, &encode_week(week))?;
    Ok(path)
}

/// Reads and verifies one spool week file.
pub fn read_week_file(path: &Path) -> Result<WeekData, WatchError> {
    let payload = read_checked(path, WEEK_MAGIC)?;
    decode_week(path, &payload)
}

/// Lists spool week files as `(week index, path)`, sorted by week.
pub fn scan_spool(spool_dir: &Path) -> Result<Vec<(usize, PathBuf)>, WatchError> {
    let mut weeks = Vec::new();
    let entries = match std::fs::read_dir(spool_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(weeks),
        Err(e) => return Err(WatchError::io(spool_dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| WatchError::io(spool_dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(index) = name
            .strip_prefix("week-")
            .and_then(|rest| rest.strip_suffix(".wvweek"))
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        weeks.push((index, entry.path()));
    }
    weeks.sort();
    Ok(weeks)
}

/// Writes the genesis bootstrap file under `spool_dir`.
pub fn write_genesis_file(spool_dir: &Path, genesis: &Genesis) -> Result<PathBuf, WatchError> {
    std::fs::create_dir_all(spool_dir).map_err(|e| WatchError::io(spool_dir, e))?;
    let mut payload = Vec::new();
    write_i64(&mut payload, genesis.start_days);
    write_u64(&mut payload, genesis.weeks_total as u64);
    write_u64(&mut payload, genesis.ranks.len() as u64);
    for (host, rank) in &genesis.ranks {
        write_str(&mut payload, host);
        write_u64(&mut payload, *rank);
    }
    let path = spool_dir.join(GENESIS_FILE);
    write_checked(&path, GENESIS_MAGIC, &payload)?;
    Ok(path)
}

/// Reads the genesis bootstrap file.
pub fn read_genesis_file(path: &Path) -> Result<Genesis, WatchError> {
    let payload = read_checked(path, GENESIS_MAGIC)?;
    let mut cur = Cursor::new(&payload);
    let bad = |what: &str| WatchError::corrupt(path, what);
    let start_days = cur.i64().ok_or_else(|| bad("start_days"))?;
    let weeks_total = cur.u64().ok_or_else(|| bad("weeks_total"))? as usize;
    let n_ranks = cur.u64().ok_or_else(|| bad("rank count"))?;
    if n_ranks > payload.len() as u64 {
        return Err(bad("rank count"));
    }
    let mut ranks = Vec::with_capacity(n_ranks as usize);
    for _ in 0..n_ranks {
        let host = cur.str().ok_or_else(|| bad("rank host"))?;
        let rank = cur.u64().ok_or_else(|| bad("rank value"))?;
        ranks.push((host, rank));
    }
    if !cur.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok(Genesis {
        start_days,
        weeks_total,
        ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_week(index: usize) -> WeekData {
        WeekData {
            week: index,
            date_days: 17_600 + 7 * index as i64,
            records: vec![
                DomainRecord {
                    host: "site000.example".into(),
                    status: Some(200),
                    body_len: 4_200,
                    page: Some(PageRecord {
                        detections: vec![DetectionRecord {
                            library: "jquery".into(),
                            version: Some("1.12.4".into()),
                            external_host: Some("cdn.example".into()),
                            integrity: true,
                            crossorigin: Some("anonymous".into()),
                            url: "https://cdn.example/jq.js".into(),
                        }],
                        wordpress: WordPressRecord::Detected("5.5.1".into()),
                        flash: vec![FlashRecord {
                            swf_url: "/banner.swf".into(),
                            allow_script_access: Some("always".into()),
                        }],
                        resource_types: vec![0, 3],
                        github_scripts: vec![ScriptRecord {
                            host: "w.github.io".into(),
                            url: "https://w.github.io/w.js".into(),
                            integrity: false,
                            crossorigin: None,
                        }],
                        external_scripts: 2,
                        external_scripts_without_integrity: 1,
                        crossorigin_values: vec!["anonymous".into()],
                    }),
                },
                DomainRecord {
                    host: "site001.example".into(),
                    status: None,
                    body_len: 0,
                    page: None,
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wvspool-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn week_files_round_trip_and_scan_in_order() {
        let dir = tmp("roundtrip");
        for index in [2usize, 0, 1] {
            write_week_file(&dir, &sample_week(index)).unwrap();
        }
        let scanned = scan_spool(&dir).unwrap();
        assert_eq!(
            scanned.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        for (index, path) in scanned {
            assert_eq!(read_week_file(&path).unwrap(), sample_week(index));
        }
        assert!(scan_spool(&dir.join("missing")).unwrap().is_empty());
    }

    #[test]
    fn corrupt_and_truncated_week_files_are_rejected() {
        let dir = tmp("corrupt");
        let path = write_week_file(&dir, &sample_week(0)).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip a payload byte.
        let mut evil = good.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x01;
        std::fs::write(&path, &evil).unwrap();
        assert!(read_week_file(&path).is_err(), "crc must catch the flip");
        // Truncate anywhere.
        for cut in [0, 4, 8, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(read_week_file(&path).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn genesis_round_trips() {
        let dir = tmp("genesis");
        let genesis = Genesis {
            start_days: 17_600,
            weeks_total: 12,
            ranks: vec![
                ("site000.example".into(), 1),
                ("site001.example".into(), 2),
            ],
        };
        let path = write_genesis_file(&dir, &genesis).unwrap();
        assert_eq!(read_genesis_file(&path).unwrap(), genesis);
    }
}
