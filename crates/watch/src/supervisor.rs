//! The supervisor: keeps a [`Watcher`] ticking through failures.
//!
//! A failed or panicked tick drops the watcher entirely and reopens it
//! from disk — the whole point of the crash-journaled design is that a
//! reopen *is* the recovery path, so the supervisor gets to treat every
//! fault identically. Restarts back off with the seeded full-jitter
//! schedule, recorded on a [`VirtualClock`] (the supervisor never
//! sleeps simulated time for real, so a hostile run costs the same
//! wall-clock as a clean one). A real-time watchdog thread flags ticks
//! that exceed the stall budget.

use crate::error::WatchError;
use crate::watcher::{TickReport, WatchConfig, Watcher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webvuln_resilience::{RetryPolicy, VirtualClock};
use webvuln_telemetry::Telemetry;

/// The retry identity the supervisor backs off under.
const SUPERVISOR_HOST: &str = "watch.supervisor";

/// How the supervisor paces and gives up.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Restart budget and backoff schedule. `max_attempts` bounds
    /// *consecutive* failures — any successful tick resets the count.
    pub policy: RetryPolicy,
    /// Real-time budget for a single tick before the watchdog flags a
    /// stall. Zero disables the watchdog.
    pub stall_limit: Duration,
    /// Real pause between ticks (zero for tests; a daemon wants a poll
    /// interval).
    pub tick_pause: Duration,
    /// Stop after this many successful ticks.
    pub max_ticks: usize,
}

impl SupervisorConfig {
    /// A supervisor that runs `max_ticks` ticks back-to-back with the
    /// standard restart budget (5 consecutive failures) and no watchdog.
    pub fn bounded(max_ticks: usize) -> SupervisorConfig {
        SupervisorConfig {
            policy: RetryPolicy::standard(4),
            stall_limit: Duration::ZERO,
            tick_pause: Duration::ZERO,
            max_ticks,
        }
    }

    /// Returns the config with `policy`.
    pub fn policy(mut self, policy: RetryPolicy) -> SupervisorConfig {
        self.policy = policy;
        self
    }

    /// Returns the config with a stall watchdog budget.
    pub fn stall_limit(mut self, limit: Duration) -> SupervisorConfig {
        self.stall_limit = limit;
        self
    }

    /// Returns the config with a pause between ticks.
    pub fn tick_pause(mut self, pause: Duration) -> SupervisorConfig {
        self.tick_pause = pause;
        self
    }
}

/// What a supervised run did.
#[derive(Debug, Clone, Default)]
pub struct SupervisorReport {
    /// Successful ticks completed.
    pub ticks: usize,
    /// Watcher reopens forced by a failed or panicked open/tick.
    pub restarts: usize,
    /// Ticks the watchdog flagged as exceeding the stall budget.
    pub stalls: u64,
    /// True when consecutive failures exhausted the restart budget.
    pub gave_up: bool,
    /// Total simulated backoff recorded on the virtual clock.
    pub backoff_ns: u64,
    /// The most recent failure, if any.
    pub last_error: Option<String>,
    /// Sum of every successful tick's report.
    pub totals: TickReport,
}

impl SupervisorReport {
    fn absorb_tick(&mut self, tick: &TickReport) {
        self.ticks += 1;
        self.totals.weeks_ingested += tick.weeks_ingested;
        self.totals.weeks_skipped += tick.weeks_skipped;
        self.totals.refolds += tick.refolds;
        self.totals.deltas_applied += tick.deltas_applied;
        self.totals.alerts_enqueued += tick.alerts_enqueued;
        self.totals.alerts_deduped += tick.alerts_deduped;
        self.totals.alerts_delivered += tick.alerts_delivered;
        self.totals.alerts_redelivered += tick.alerts_redelivered;
    }
}

/// Shared state between the tick loop and the watchdog thread.
struct Heartbeat {
    /// Nanoseconds (since `base`) when the in-flight tick started, or 0
    /// when idle.
    busy_since_ns: AtomicU64,
    /// Whether the in-flight tick was already counted as stalled.
    flagged: AtomicBool,
    stalls: AtomicU64,
    stop: AtomicBool,
}

/// Runs a watcher under supervision until `max_ticks` successful ticks
/// complete or the restart budget is exhausted.
///
/// Faults — a `Result::Err` from open or tick, or a panic injected
/// through a fail-point — are caught, counted as a restart, backed off
/// with [`RetryPolicy::full_jitter_backoff_ns`] on the virtual clock,
/// and answered by reopening the watcher from disk.
pub fn supervise(
    watch_cfg: &WatchConfig,
    cfg: SupervisorConfig,
    telemetry: &Telemetry,
) -> SupervisorReport {
    let clock = VirtualClock::new();
    let registry = telemetry.registry();
    let mut report = SupervisorReport::default();
    let mut consecutive_failures: u32 = 0;

    let heartbeat = Arc::new(Heartbeat {
        busy_since_ns: AtomicU64::new(0),
        flagged: AtomicBool::new(false),
        stalls: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let base = Instant::now();
    let watchdog = if cfg.stall_limit > Duration::ZERO {
        let shared = Arc::clone(&heartbeat);
        let limit = cfg.stall_limit;
        let poll = (limit / 4).max(Duration::from_millis(1));
        Some(std::thread::spawn(move || {
            while !shared.stop.load(Ordering::Relaxed) {
                std::thread::sleep(poll);
                let since = shared.busy_since_ns.load(Ordering::Relaxed);
                if since == 0 {
                    continue;
                }
                let elapsed = Instant::now().duration_since(base).as_nanos() as u64;
                let over = elapsed.saturating_sub(since) > limit.as_nanos() as u64;
                if over && !shared.flagged.swap(true, Ordering::Relaxed) {
                    shared.stalls.fetch_add(1, Ordering::Relaxed);
                }
            }
        }))
    } else {
        None
    };

    'supervise: while report.ticks < cfg.max_ticks {
        let opened = run_guarded(AssertUnwindSafe(|| Watcher::open(watch_cfg.clone(), telemetry)));
        let mut watcher = match opened {
            Ok(watcher) => watcher,
            Err(detail) => {
                if fail(&mut report, &mut consecutive_failures, detail, &cfg, &clock) {
                    break 'supervise;
                }
                registry.counter("watch.restarts_total").inc();
                continue 'supervise;
            }
        };
        while report.ticks < cfg.max_ticks {
            let start = Instant::now().duration_since(base).as_nanos() as u64;
            heartbeat.flagged.store(false, Ordering::Relaxed);
            heartbeat.busy_since_ns.store(start.max(1), Ordering::Relaxed);
            let ticked = run_guarded(AssertUnwindSafe(|| watcher.tick()));
            heartbeat.busy_since_ns.store(0, Ordering::Relaxed);
            match ticked {
                Ok(tick) => {
                    consecutive_failures = 0;
                    report.absorb_tick(&tick);
                    if !cfg.tick_pause.is_zero() {
                        std::thread::sleep(cfg.tick_pause);
                    }
                }
                Err(detail) => {
                    if fail(&mut report, &mut consecutive_failures, detail, &cfg, &clock) {
                        break 'supervise;
                    }
                    registry.counter("watch.restarts_total").inc();
                    // Drop the faulted watcher; the reopen is the
                    // recovery path.
                    continue 'supervise;
                }
            }
        }
        break;
    }

    heartbeat.stop.store(true, Ordering::Relaxed);
    if let Some(handle) = watchdog {
        let _ = handle.join();
    }
    report.stalls = heartbeat.stalls.load(Ordering::Relaxed);
    registry.counter("watch.stalls_total").add(report.stalls);
    report.backoff_ns = clock.now_ns();
    report
}

/// Records a failure; returns true when the restart budget is spent.
fn fail(
    report: &mut SupervisorReport,
    consecutive_failures: &mut u32,
    detail: String,
    cfg: &SupervisorConfig,
    clock: &VirtualClock,
) -> bool {
    *consecutive_failures += 1;
    report.last_error = Some(detail);
    if !cfg.policy.allows_retry(*consecutive_failures) {
        report.gave_up = true;
        return true;
    }
    report.restarts += 1;
    let backoff = cfg
        .policy
        .full_jitter_backoff_ns(SUPERVISOR_HOST, *consecutive_failures - 1);
    clock.advance(backoff);
    false
}

/// Runs `f`, converting both `Err` and panic into an error string.
fn run_guarded<T>(f: impl FnOnce() -> Result<T, WatchError> + std::panic::UnwindSafe) -> Result<T, String> {
    match catch_unwind(f) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}
