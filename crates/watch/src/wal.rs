//! Framed, CRC-checked append-only log — the journaling primitive under
//! the alert outbox.
//!
//! Frame layout: `[len varint][crc32 varint][payload bytes]`, where the
//! CRC covers the payload only. A crash can tear at most the last frame;
//! [`read_frames`] stops at the first incomplete or CRC-failing frame and
//! reports how many clean bytes precede it, so reopening truncates the
//! torn tail and appends resume from a consistent prefix — the same heal
//! discipline as the snapshot store's segment log, re-implemented here
//! because the store keeps its codec private.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — table-driven, byte-at-a-time.
// ---------------------------------------------------------------------------

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init and xor-out `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints (LEB128; zigzag for signed).
// ---------------------------------------------------------------------------

/// Appends `value` as a LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` zigzag-encoded.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, value: &str) {
    write_u64(out, value.len() as u64);
    out.extend_from_slice(value.as_bytes());
}

/// Sequential reader over an encoded byte slice; every accessor returns
/// `None` on underrun instead of panicking, so torn or corrupt input
/// degrades into a decode error at the caller.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Next raw byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Next LEB128 varint.
    pub fn u64(&mut self) -> Option<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return None;
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Some(value);
            }
            shift += 7;
        }
    }

    /// Next zigzag-encoded i64.
    pub fn i64(&mut self) -> Option<i64> {
        let raw = self.u64()?;
        Some(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u64()? as usize;
        if len > self.data.len().saturating_sub(self.pos) {
            return None;
        }
        let bytes = &self.data[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Appends one CRC-framed payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    write_u64(out, payload.len() as u64);
    write_u64(out, u64::from(crc32(payload)));
    out.extend_from_slice(payload);
}

/// The clean prefix of a frame log: every fully-written, CRC-verified
/// payload plus the byte offset where the clean prefix ends.
pub struct Frames {
    /// Decoded payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Length of the clean prefix; anything past it is a torn tail.
    pub clean_len: u64,
}

/// Scans `data`, stopping at the first incomplete or corrupt frame.
pub fn read_frames(data: &[u8]) -> Frames {
    let mut cur = Cursor::new(data);
    let mut payloads = Vec::new();
    let mut clean_len = 0u64;
    loop {
        if cur.is_empty() {
            break;
        }
        let Some(len) = cur.u64() else { break };
        let Some(crc) = cur.u64() else { break };
        let len = len as usize;
        if len > data.len().saturating_sub(cur.pos()) {
            break;
        }
        let payload = &data[cur.pos()..cur.pos() + len];
        if u64::from(crc32(payload)) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        for _ in 0..len {
            cur.u8();
        }
        clean_len = cur.pos() as u64;
    }
    Frames {
        payloads,
        clean_len,
    }
}

/// An append handle on a frame log whose torn tail (if any) has been
/// truncated away. Every append is flushed before returning.
pub struct FrameLog {
    file: File,
}

impl FrameLog {
    /// Opens (creating if absent) the log at `path`, heals the torn
    /// tail, and returns the handle plus the surviving payloads.
    pub fn open(path: &Path) -> io::Result<(FrameLog, Frames)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let frames = read_frames(&data);
        if frames.clean_len < data.len() as u64 {
            file.set_len(frames.clean_len)?;
            file.sync_all()?;
        }
        // Position at the end of the clean prefix for appends.
        file.seek(io::SeekFrom::End(0))?;
        Ok((FrameLog { file }, frames))
    }

    /// Appends one framed payload and flushes it to disk.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(payload.len() + 12);
        write_frame(&mut buf, payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            write_u64(&mut buf, v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -7_000_000] {
            write_i64(&mut buf, v);
        }
        write_str(&mut buf, "alert.example");
        let mut cur = Cursor::new(&buf);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(cur.u64(), Some(v));
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -7_000_000] {
            assert_eq!(cur.i64(), Some(v));
        }
        assert_eq!(cur.str().as_deref(), Some("alert.example"));
        assert!(cur.is_empty());
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"second payload");
        let whole = read_frames(&buf);
        assert_eq!(whole.payloads.len(), 2);
        assert_eq!(whole.clean_len, buf.len() as u64);
        let first_end = {
            let mut one = Vec::new();
            write_frame(&mut one, b"first");
            one.len()
        };
        for cut in first_end..buf.len() {
            let frames = read_frames(&buf[..cut]);
            assert_eq!(frames.payloads.len(), 1, "cut at {cut}");
            assert_eq!(frames.clean_len, first_end as u64, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_payload_stops_the_scan() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        let clean = buf.len();
        write_frame(&mut buf, b"second");
        let flip = clean + 3;
        buf[flip] ^= 0x40;
        let frames = read_frames(&buf);
        assert_eq!(frames.payloads.len(), 1);
        assert_eq!(frames.clean_len, clean as u64);
    }

    #[test]
    fn frame_log_heals_and_appends() {
        let dir = std::env::temp_dir().join(format!("wvwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heal.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, frames) = FrameLog::open(&path).unwrap();
            assert!(frames.payloads.is_empty());
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
        }
        // Tear the tail by hand.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0x09, 0xFF, 0xFF]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let (mut log, frames) = FrameLog::open(&path).unwrap();
            assert_eq!(frames.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
            assert_eq!(frames.clean_len, full as u64);
            log.append(b"three").unwrap();
        }
        let (_, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(
            frames.payloads,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
