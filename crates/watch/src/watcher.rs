//! The watch loop: idempotent week ingestion, incremental live analysis
//! state, and CVE retro-scan alerting.
//!
//! One watcher owns a root directory:
//!
//! ```text
//! root/
//!   store/           sharded snapshot store (manifest-epoch commits)
//!   spool/           incoming week-NNNNN.wvweek files (+ genesis);
//!                    week files are consumed once committed
//!   deltas/          incoming *.cvedelta files
//!   outbox.wal       alert outbox journal
//!   alerts.log       delivered alerts, one line per alert
//!   deltas.applied   retro-scans completed, one file name per line
//! ```
//!
//! Every tick is crash-safe by construction: the store commit is the
//! manifest-epoch rename (a re-delivered or re-ingested week is a no-op
//! keyed on the committed week count), retro-scan completion is the
//! applied-journal append (a crash mid-scan replays the scan, and the
//! outbox dedups the replayed alerts by deterministic ID), and delivery
//! is the outbox's journaled two-phase append. The live accumulator is
//! *not* persisted — the store is its journal: a cold open refolds it
//! with [`fold_study`], and every incremental absorb afterwards is
//! exactly the fold's per-week step ([`apply_filter`] + `absorb`). The
//! §4.1 filter window rides along the same way: the trailing
//! [`FINAL_WEEKS`] alive sets are held in memory (rebuilt from the
//! store on open), so an arrival tick costs one week — read, commit,
//! absorb — independent of how much history the store holds. Verdict
//! drift (domains crossing the trailing-inaccessibility boundary, a
//! weekly occurrence at scale) marks the live state stale rather than
//! refolding inline; the catch-up refold settles on the next quiet
//! tick, so idle still means exactly cold-fold-equal.

use crate::alert::{Alert, Coverage};
use crate::error::WatchError;
use crate::outbox::{Outbox, OutboxRecovery};
use crate::spool::{read_genesis_file, read_week_file, scan_spool, GENESIS_FILE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use webvuln_analysis::store_io::week_to_snapshot;
use webvuln_analysis::{
    apply_filter, fold_study, genesis_ranks, snapshot_alive_set, AccumCtx, Accumulate, StudyAccum,
    FINAL_WEEKS,
};
use webvuln_cvedb::{parse_delta, LibraryId, VulnDb, VulnRecord};
use webvuln_store::{AnyReader, ShardedStoreWriter, MANIFEST_FILE};
use webvuln_telemetry::Telemetry;
use webvuln_version::Version;

/// Where a watcher lives and how wide it runs.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    root: PathBuf,
    /// Worker threads for store commits and refolds.
    pub threads: usize,
    /// Shard count used when bootstrapping a fresh store.
    pub shards: usize,
}

impl WatchConfig {
    /// A watcher rooted at `root`, single-threaded, one shard.
    pub fn new(root: impl Into<PathBuf>) -> WatchConfig {
        WatchConfig {
            root: root.into(),
            threads: 1,
            shards: 1,
        }
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> WatchConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the shard count for a bootstrapped store.
    pub fn shards(mut self, shards: usize) -> WatchConfig {
        self.shards = shards.max(1);
        self
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The sharded store directory.
    pub fn store_dir(&self) -> PathBuf {
        self.root.join("store")
    }

    /// The incoming-week spool directory.
    pub fn spool_dir(&self) -> PathBuf {
        self.root.join("spool")
    }

    /// The incoming CVE delta directory.
    pub fn deltas_dir(&self) -> PathBuf {
        self.root.join("deltas")
    }

    /// The alert outbox journal.
    pub fn outbox_wal(&self) -> PathBuf {
        self.root.join("outbox.wal")
    }

    /// The delivered-alert log.
    pub fn alert_log(&self) -> PathBuf {
        self.root.join("alerts.log")
    }

    /// The retro-scan completion journal.
    pub fn applied_journal(&self) -> PathBuf {
        self.root.join("deltas.applied")
    }
}

/// What one [`Watcher::tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickReport {
    /// Spool weeks committed to the store and absorbed live.
    pub weeks_ingested: usize,
    /// Spool weeks skipped as already committed (idempotent redelivery).
    pub weeks_skipped: usize,
    /// Full refolds of the live accumulator: a CVE delta extending the
    /// database, or §4.1 verdict drift settling on a quiet tick.
    pub refolds: usize,
    /// Delta files whose retro-scan completed this tick.
    pub deltas_applied: usize,
    /// Alerts newly journaled into the outbox.
    pub alerts_enqueued: usize,
    /// Alerts a replayed retro-scan re-produced (dedup by ID; no-op).
    pub alerts_deduped: usize,
    /// Alert lines appended to the delivery log.
    pub alerts_delivered: usize,
    /// Owed alerts found already delivered at delivery time (crash
    /// between delivery and ack on a previous run).
    pub alerts_redelivered: usize,
}

impl TickReport {
    /// True when the tick changed nothing.
    pub fn is_idle(&self) -> bool {
        *self == TickReport::default()
    }
}

/// A point-in-time summary of a watch root, readable by outside
/// observers (the serve layer's `/healthz`) without a [`Watcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchState {
    /// True when a store exists under the root.
    pub store_present: bool,
    /// Weeks committed to the store.
    pub weeks_committed: u64,
    /// Store manifest epoch.
    pub epoch: u64,
    /// Shard count.
    pub shards: u32,
    /// True when at least one shard is unavailable.
    pub degraded: bool,
    /// Distinct alerts ever journaled.
    pub alerts_enqueued: u64,
    /// Alerts journaled but not yet acked.
    pub alerts_pending: u64,
    /// Alert IDs in the delivery log.
    pub alerts_delivered: u64,
    /// Delta files whose retro-scan completed.
    pub deltas_applied: u64,
}

/// Reads a [`WatchState`] off disk. Missing pieces (no store yet, no
/// outbox yet) read as zeros — the daemon may not have bootstrapped.
pub fn load_watch_state(root: &Path) -> WatchState {
    let cfg = WatchConfig::new(root);
    let mut state = WatchState::default();
    if let Ok(reader) = AnyReader::open_degraded(&cfg.store_dir()) {
        state.store_present = true;
        state.weeks_committed = reader.weeks_committed() as u64;
        state.shards = reader.shard_count() as u32;
        state.degraded = reader.is_degraded();
        if let AnyReader::Sharded(sharded) = &reader {
            state.epoch = sharded.manifest().epoch;
        }
    }
    if let Ok(snapshot) = crate::outbox::OutboxSnapshot::load(&cfg.outbox_wal(), &cfg.alert_log()) {
        state.alerts_enqueued = snapshot.alerts.len() as u64;
        state.alerts_pending = snapshot.pending().len() as u64;
        state.alerts_delivered = snapshot.delivered.len() as u64;
    }
    state.deltas_applied = read_applied(&cfg.applied_journal()).len() as u64;
    state
}

/// The live-ingestion daemon state. See the module docs for the layout
/// and crash-safety story.
pub struct Watcher {
    cfg: WatchConfig,
    telemetry: Telemetry,
    writer: ShardedStoreWriter,
    db: VulnDb,
    live: StudyAccum,
    filtered: BTreeSet<String>,
    /// Per-week alive sets of the trailing [`FINAL_WEEKS`] committed
    /// weeks, newest last — the §4.1 verdict is derived from this in
    /// memory, so a steady-state tick never re-reads the store.
    filter_window: VecDeque<BTreeSet<String>>,
    /// True when `live` was folded under an older verdict than
    /// `filtered` — settled by a refold on the next quiet tick.
    live_stale: bool,
    ranks: BTreeMap<String, usize>,
    outbox: Outbox,
    recovery: OutboxRecovery,
    /// Delta files whose records are already in `db`.
    known_deltas: BTreeSet<String>,
    /// Delta files whose retro-scan completed (journaled).
    applied_deltas: BTreeSet<String>,
}

impl Watcher {
    /// Opens (or bootstraps) the watcher at `cfg.root()`.
    ///
    /// Resumes an existing store — healing torn shard tails and rolling
    /// back uncommitted shard progress — or creates one from the spool's
    /// `genesis.wvgenesis`. The live accumulator is rebuilt with a cold
    /// fold over whatever the store holds.
    pub fn open(cfg: WatchConfig, telemetry: &Telemetry) -> Result<Watcher, WatchError> {
        std::fs::create_dir_all(cfg.root()).map_err(|e| WatchError::io(cfg.root(), e))?;
        let store_dir = cfg.store_dir();
        let writer = if store_dir.join(MANIFEST_FILE).exists() {
            ShardedStoreWriter::resume(&store_dir)?.writer
        } else {
            let genesis_path = cfg.spool_dir().join(GENESIS_FILE);
            if !genesis_path.exists() {
                return Err(WatchError::corrupt(
                    &genesis_path,
                    "no store to resume and no genesis file to bootstrap from",
                ));
            }
            let genesis = read_genesis_file(&genesis_path)?;
            ShardedStoreWriter::create(&store_dir, genesis, cfg.shards)?
        };
        let writer = writer.threads(cfg.threads);
        let ranks = genesis_ranks(writer.genesis());

        let mut db = VulnDb::builtin();
        let mut known_deltas = BTreeSet::new();
        for (name, path) in scan_deltas(&cfg.deltas_dir())? {
            let records = parse_delta_file(&path)?;
            db.extend(records);
            known_deltas.insert(name);
        }
        let applied_deltas = read_applied(&cfg.applied_journal());

        let (outbox, recovery) = Outbox::open(&cfg.outbox_wal(), &cfg.alert_log())?;
        let registry = telemetry.registry();
        registry
            .counter("watch.outbox_replayed_total")
            .add(recovery.replayed as u64);

        let weeks = writer.weeks_committed();
        let (live, filter_window) = if weeks > 0 {
            let reader = AnyReader::open_degraded(&store_dir)?;
            let mut filter_window = VecDeque::with_capacity(FINAL_WEEKS);
            for week in reader.stream().range(weeks - FINAL_WEEKS.min(weeks), weeks) {
                filter_window.push_back(snapshot_alive_set(&week_to_snapshot(&week?)?));
            }
            let live = fold_study(&reader, &db, cfg.threads)?;
            (live, filter_window)
        } else {
            (StudyAccum::default(), VecDeque::new())
        };
        let filtered = window_verdict(&ranks, &filter_window);

        Ok(Watcher {
            cfg,
            telemetry: telemetry.clone(),
            writer,
            db,
            live,
            filtered,
            filter_window,
            live_stale: false,
            ranks,
            outbox,
            recovery,
            known_deltas,
            applied_deltas,
        })
    }

    /// What the outbox found when this watcher opened.
    pub fn recovery(&self) -> OutboxRecovery {
        self.recovery
    }

    /// One supervised pass: ingest newly-arrived spool weeks, apply
    /// newly-arrived CVE deltas (retro-scanning history for exposure),
    /// then deliver owed alerts.
    pub fn tick(&mut self) -> Result<TickReport, WatchError> {
        let registry = self.telemetry.registry_arc();
        registry.counter("watch.ticks_total").inc();
        let mut report = TickReport::default();
        self.ingest_spool(&mut report)?;
        self.apply_deltas(&mut report)?;
        let delivery = self.outbox.deliver_pending()?;
        report.alerts_delivered = delivery.delivered;
        report.alerts_redelivered = delivery.deduped;
        registry
            .counter("watch.alerts_delivered_total")
            .add(delivery.delivered as u64);
        // Settle verdict drift on a quiet tick: arrival ticks stay
        // O(one week) and the catch-up refold lands in the poll gap
        // that follows. A settling tick reports its refold, so the
        // daemon is never idle while the live state lags the filter.
        if self.live_stale && report.weeks_ingested == 0 {
            let reader = AnyReader::open_degraded(&self.cfg.store_dir())?;
            self.refold(&reader, &mut report)?;
        }
        Ok(report)
    }

    fn ingest_spool(&mut self, report: &mut TickReport) -> Result<(), WatchError> {
        let registry = self.telemetry.registry_arc();
        for (index, path) in scan_spool(&self.cfg.spool_dir())? {
            let committed = self.writer.weeks_committed();
            if index < committed {
                // Idempotent ingestion: the manifest epoch already
                // covers this week; a redelivered (or crash-orphaned)
                // file is consumed without re-committing.
                std::fs::remove_file(&path).map_err(|e| WatchError::io(&path, e))?;
                report.weeks_skipped += 1;
                registry.counter("watch.weeks_skipped_total").inc();
                continue;
            }
            if index > committed {
                // A gap: the missing week has not arrived yet. Weeks
                // are strictly ordered, so stop and wait.
                break;
            }
            let week = read_week_file(&path)?;
            let key = index.to_string();
            let _ = webvuln_failpoint::failpoint!("watch.ingest", &key)?;
            self.writer.commit_week(&week)?;
            // The incremental step: absorb exactly what a cold fold's
            // per-week iteration would.
            let mut snapshot = week_to_snapshot(&week)?;
            // Slide the §4.1 window before filtering: the alive set is
            // read from the summaries, which apply_filter leaves alone.
            if self.filter_window.len() == FINAL_WEEKS {
                self.filter_window.pop_front();
            }
            self.filter_window.push_back(snapshot_alive_set(&snapshot));
            apply_filter(&mut snapshot, &self.filtered);
            let ctx = AccumCtx {
                db: &self.db,
                ranks: &self.ranks,
            };
            self.live.absorb(&snapshot, &ctx);
            // Consume the spool file only after the commit: a crash
            // between the two re-skips the week above, then cleans up.
            std::fs::remove_file(&path).map_err(|e| WatchError::io(&path, e))?;
            report.weeks_ingested += 1;
            registry.counter("watch.weeks_ingested_total").inc();
        }
        if report.weeks_ingested > 0 {
            self.refresh_filter();
        }
        Ok(())
    }

    /// Re-derives the §4.1 filter verdict from the in-memory trailing
    /// window — the same answer [`store_filter_verdict`] would read back
    /// from the store, without touching it. A changed verdict cannot be
    /// applied retroactively to an incremental accumulator, so it marks
    /// the live state stale; the refold that settles it is deferred to
    /// the next quiet tick. Domains cross the trailing-inaccessibility
    /// boundary most weeks at scale (the marginal population flaps), so
    /// paying the refold inside the arrival tick would make every
    /// arrival cost a full history scan.
    ///
    /// [`store_filter_verdict`]: webvuln_analysis::store_filter_verdict
    fn refresh_filter(&mut self) {
        let fresh = window_verdict(&self.ranks, &self.filter_window);
        if fresh != self.filtered {
            let flips = fresh.symmetric_difference(&self.filtered).count();
            self.telemetry
                .registry()
                .counter("watch.filter_flips_total")
                .add(flips as u64);
            self.filtered = fresh;
            self.live_stale = true;
        }
    }

    fn refold(&mut self, reader: &AnyReader, report: &mut TickReport) -> Result<(), WatchError> {
        self.live = fold_study(reader, &self.db, self.cfg.threads)?;
        self.live_stale = false;
        report.refolds += 1;
        self.telemetry.registry().counter("watch.refolds_total").inc();
        Ok(())
    }

    fn apply_deltas(&mut self, report: &mut TickReport) -> Result<(), WatchError> {
        let registry = self.telemetry.registry_arc();
        let mut db_grew = false;
        let deltas = scan_deltas(&self.cfg.deltas_dir())?;
        for (name, path) in &deltas {
            if self.known_deltas.contains(name) {
                continue;
            }
            let records = parse_delta_file(path)?;
            if self.db.extend(records) > 0 {
                db_grew = true;
            }
            self.known_deltas.insert(name.clone());
        }
        if db_grew && self.writer.weeks_committed() > 0 {
            // The exposure accumulators consult the database while
            // absorbing, so new records invalidate the live state.
            let reader = AnyReader::open_degraded(&self.cfg.store_dir())?;
            self.refold(&reader, report)?;
        }
        for (name, path) in &deltas {
            if self.applied_deltas.contains(name) {
                continue;
            }
            let _ = webvuln_failpoint::failpoint!("watch.retro", name)?;
            let records = parse_delta_file(path)?;
            let (enqueued, deduped) = self.retro_scan(&records)?;
            report.alerts_enqueued += enqueued;
            report.alerts_deduped += deduped;
            registry
                .counter("watch.alerts_enqueued_total")
                .add(enqueued as u64);
            registry
                .counter("watch.alerts_deduped_total")
                .add(deduped as u64);
            // Journaling completion is the commit point: a crash before
            // this line replays the scan, and the outbox dedups it.
            self.journal_applied(name)?;
            self.applied_deltas.insert(name.clone());
            report.deltas_applied += 1;
            registry.counter("watch.deltas_applied_total").inc();
        }
        Ok(())
    }

    /// Scans the full committed history for domains exposed to
    /// `records`. A degraded store downgrades coverage (annotated on
    /// every alert) instead of failing the scan.
    fn retro_scan(&mut self, records: &[VulnRecord]) -> Result<(usize, usize), WatchError> {
        if records.is_empty() || self.writer.weeks_committed() == 0 {
            return Ok((0, 0));
        }
        let reader = AnyReader::open_degraded(&self.cfg.store_dir())?;
        let health = reader.shard_health();
        let coverage = Coverage {
            shards_scanned: health.iter().filter(|h| h.is_healthy()).count() as u32,
            shards_total: health.len() as u32,
        };
        // (record index, domain) → (first week, last week, weeks seen).
        let mut spans: BTreeMap<(usize, String), (u32, u32, u32)> = BTreeMap::new();
        for week in reader.stream() {
            let week = week?;
            let wk = week.week as u32;
            for domain in &week.records {
                let Some(page) = &domain.page else { continue };
                for det in &page.detections {
                    let Some(version) = det.version.as_deref() else {
                        continue;
                    };
                    let Ok(version) = Version::parse(version) else {
                        continue;
                    };
                    let Some(library) = LibraryId::from_slug(&det.library) else {
                        continue;
                    };
                    for (index, record) in records.iter().enumerate() {
                        if record.library != library || !record.claims(&version) {
                            continue;
                        }
                        spans
                            .entry((index, domain.host.clone()))
                            .and_modify(|(_, last, seen)| {
                                if *last != wk {
                                    *seen += 1;
                                }
                                *last = wk;
                            })
                            .or_insert((wk, wk, 1));
                    }
                }
            }
        }
        let mut enqueued = 0;
        let mut deduped = 0;
        for ((index, domain), (first, last, seen)) in spans {
            let record = &records[index];
            let alert = Alert::new(
                &record.id,
                record.library.slug(),
                &domain,
                first,
                last,
                seen,
                coverage,
            );
            if self.outbox.enqueue(&alert)? {
                enqueued += 1;
            } else {
                deduped += 1;
            }
        }
        Ok((enqueued, deduped))
    }

    fn journal_applied(&self, name: &str) -> Result<(), WatchError> {
        let path = self.cfg.applied_journal();
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| WatchError::io(&path, e))?;
        file.write_all(format!("{name}\n").as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| WatchError::io(&path, e))
    }

    /// The live study accumulator.
    pub fn live(&self) -> &StudyAccum {
        &self.live
    }

    /// The (possibly delta-extended) vulnerability database.
    pub fn db(&self) -> &VulnDb {
        &self.db
    }

    /// The store writer's committed week count.
    pub fn weeks_committed(&self) -> usize {
        self.writer.weeks_committed()
    }

    /// The store's manifest epoch.
    pub fn epoch(&self) -> u64 {
        self.writer.epoch()
    }

    /// The alert outbox.
    pub fn outbox(&self) -> &Outbox {
        &self.outbox
    }

    /// This watcher's configuration.
    pub fn config(&self) -> &WatchConfig {
        &self.cfg
    }
}

/// Lists `*.cvedelta` files as `(file name, path)`, sorted by name.
pub fn scan_deltas(dir: &Path) -> Result<Vec<(String, PathBuf)>, WatchError> {
    let mut deltas = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(deltas),
        Err(e) => return Err(WatchError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| WatchError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.ends_with(".cvedelta") {
            deltas.push((name, entry.path()));
        }
    }
    deltas.sort();
    Ok(deltas)
}

/// The §4.1 verdict from a trailing window of per-week alive sets: a
/// ranked domain is dropped when no window week saw it reachable. With
/// the window rebuilt from (or maintained in lockstep with) the store's
/// trailing [`FINAL_WEEKS`] weeks, this equals what
/// [`store_filter_verdict`](webvuln_analysis::store_filter_verdict)
/// reads back from the store — an empty window (empty store) drops
/// nothing, matching its zero-week case.
fn window_verdict(
    ranks: &BTreeMap<String, usize>,
    window: &VecDeque<BTreeSet<String>>,
) -> BTreeSet<String> {
    if window.is_empty() {
        return BTreeSet::new();
    }
    ranks
        .keys()
        .filter(|host| !window.iter().any(|alive| alive.contains(*host)))
        .cloned()
        .collect()
}

fn parse_delta_file(path: &Path) -> Result<Vec<VulnRecord>, WatchError> {
    let text = std::fs::read_to_string(path).map_err(|e| WatchError::io(path, e))?;
    parse_delta(&text).map_err(|e| WatchError::Delta {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })
}

/// Reads the applied-delta journal; only complete (newline-terminated)
/// lines count, so a torn final append reads as not-applied and the
/// retro-scan replays (harmless under ID dedup).
fn read_applied(path: &Path) -> BTreeSet<String> {
    let Ok(raw) = std::fs::read(path) else {
        return BTreeSet::new();
    };
    let text = String::from_utf8_lossy(&raw);
    let clean = match text.rfind('\n') {
        Some(pos) => &text[..pos + 1],
        None => "",
    };
    clean.lines().map(str::to_string).collect()
}
