//! Per-domain models: profile generation and weekly state resolution.
//!
//! A [`DomainModel`] is generated once from `(seed, rank)` and captures the
//! site's whole four-year life as a small set of *events* (updates,
//! adoptions, removals, WordPress upgrades, death). Resolving the state at
//! a week replays events up to that week — O(#events), so crawling 201
//! snapshots never re-simulates anything.
//!
//! The dynamics encode the paper's documented mechanics:
//!
//! * most sites never update; a minority update slowly (§7's 531-day
//!   window of vulnerability emerges from this),
//! * WordPress auto-update waves move bundled jQuery to 3.5.1 in Dec 2020
//!   and 3.6.0 in Aug 2021, and toggle jQuery-Migrate off (WP 5.5, Aug
//!   2020) and back on (WP 5.6, Dec 2020) — Figures 3 and 7,
//! * Flash decays with a post-EOL floor, slower on `.cn` sites (§8),
//! * discontinued jQuery-Cookie slowly migrates to JS-Cookie (§6.3).

use crate::rng::{stream, Pcg32};
use crate::shares::{
    library_models, LibraryModel, ResourceTargets, CROSSORIGIN_WEIGHTS, EXTRA_SCRIPT_HOSTS,
    EXTRA_SCRIPT_PERMILLE, FULL_SRI_PERMILLE, GITHUB_HOSTED_PERMILLE, GITHUB_HOSTS,
    GITHUB_SRI_PERMILLE, PARTIAL_SRI_PERMILLE, WORDPRESS_PERMILLE,
};
use crate::timeline::Timeline;
use webvuln_cvedb::{catalog, Date, LibraryId};
use webvuln_version::Version;

/// How a library file is included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inclusion {
    /// Served from the site's own origin.
    Internal,
    /// Served from another origin.
    External {
        /// Serving host.
        host: String,
        /// True when the host is a public CDN (vs. a private origin).
        cdn: bool,
    },
}

/// One library deployed on a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// Which library.
    pub library: LibraryId,
    /// Deployed version.
    pub version: Version,
    /// Inclusion type.
    pub inclusion: Inclusion,
    /// Whether the `<script>` tag carries an `integrity` hash.
    pub integrity: bool,
    /// `crossorigin` attribute value (`Some("")` = bare attribute).
    pub crossorigin: Option<String>,
    /// Rendered WordPress-style (`/wp-includes/... ?ver=x.y.z`).
    pub via_wordpress: bool,
    /// Whether the version is observable (URL or banner). A few percent
    /// of deployments hide it, matching Wappalyzer's blind spots.
    pub version_visible: bool,
    /// The library is pasted into the page as an inline `<script>` (with
    /// its banner comment) instead of referenced by URL.
    pub inlined: bool,
}

/// Flash presence on a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashState {
    /// URL of the movie.
    pub swf_url: String,
    /// `AllowScriptAccess` value, when the site sets the parameter.
    pub allow_script_access: Option<String>,
}

/// Static resource-type flags of a site (Figure 2(b) inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceFlags {
    /// Any JavaScript at all.
    pub javascript: bool,
    /// A stylesheet link.
    pub css: bool,
    /// A favicon link.
    pub favicon: bool,
    /// A `.php`-generated resource.
    pub imported_html: bool,
    /// An XML resource (RSS etc.).
    pub xml: bool,
    /// An SVG image.
    pub svg: bool,
    /// An `.axd` resource.
    pub axd: bool,
}

/// A generic third-party script (analytics, tag manager, social SDK).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtraScript {
    /// Serving host.
    pub host: String,
    /// Path (may include a query string).
    pub path: String,
}

/// An extra (non-top-15) script pulled from a GitHub-hosted repository
/// (§6.5 / Table 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GithubScript {
    /// `host/path` of the script.
    pub url_path: String,
    /// Whether it carries `integrity`.
    pub integrity: bool,
}

/// The resolved state of a domain at one snapshot week.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainState {
    /// False when the domain is dead/unreachable this week.
    pub online: bool,
    /// True when the site answers with an anti-bot block page.
    pub antibot: bool,
    /// Library deployments.
    pub deployments: Vec<Deployment>,
    /// WordPress core version when the site runs WordPress.
    pub wordpress: Option<Version>,
    /// Flash content, if any.
    pub flash: Option<FlashState>,
    /// GitHub-hosted extra script, if any.
    pub github_script: Option<GithubScript>,
    /// Generic third-party scripts (never SRI-protected).
    pub extra_scripts: Vec<ExtraScript>,
    /// Resource-type flags.
    pub resources: ResourceFlags,
}

/// A change in a domain's life.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Replace `library`'s version.
    SetVersion(LibraryId, Version),
    /// Remove `library`.
    Remove(LibraryId),
    /// Add a deployment.
    Add(Deployment),
    /// Change the WordPress core version.
    WordPress(Version),
    /// Remove Flash content.
    FlashRemoved,
}

/// A generated domain.
#[derive(Debug, Clone)]
pub struct DomainModel {
    /// Host name.
    pub name: String,
    /// Alexa-style rank (1-based).
    pub rank: usize,
    resources: ResourceFlags,
    base_deployments: Vec<Deployment>,
    base_wordpress: Option<Version>,
    base_flash: Option<FlashState>,
    github_script: Option<GithubScript>,
    extra_scripts: Vec<ExtraScript>,
    events: Vec<(usize, Event)>,
    dead_from_start: bool,
    death_week: Option<usize>,
    unstable: bool,
    antibot_from: Option<usize>,
    /// Seed for the per-week stability stream.
    seed: u64,
}

/// Late-trend adjustments, ‰ of the whole population over the study:
/// `(droppers, late_adopters)` per library — encodes Figure 3's declining
/// and rising curves.
fn trend(lib: LibraryId) -> (u32, u32) {
    use LibraryId::*;
    match lib {
        JQuery => (70, 0), // 67.2% → 63.1% of sites
        Bootstrap => (40, 20),
        JQueryMigrate => (0, 0), // WordPress dominates its dynamics
        JQueryUi => (120, 0),
        Modernizr => (150, 0),
        JsCookie => (0, 12), // rising (Fig 3b)
        Underscore => (0, 6),
        Isotope => (80, 0),
        Popper => (0, 8),
        MomentJs => (60, 0),
        RequireJs => (60, 0),
        SwfObject => (150, 0),
        Prototype => (100, 0),
        JQueryCookie => (0, 0), // migration handled explicitly
        PolyfillIo => (0, 7),
    }
}

/// Updater behaviour classes: `(weight, mean weeks between updates,
/// crosses major versions)`. Most of the web never updates; slow updaters
/// stay within their major version — §6.3's compatibility wall — while
/// the active minority tracks the latest release outright.
const UPDATER_CLASSES: &[(u32, Option<(f64, bool)>)] = &[
    (550, None),                 // never
    (300, Some((170.0, false))), // slow: ~3.3 years, same-major only
    (150, Some((55.0, true))),   // active: ~1 year, crosses majors
];

const TLDS: &[(&str, u32)] = &[
    ("com", 520),
    ("org", 90),
    ("net", 80),
    ("ru", 60),
    ("de", 50),
    ("cn", 45),
    ("jp", 40),
    ("io", 35),
    ("co.uk", 30),
    ("fr", 25),
    ("br", 25),
];

const NAME_PARTS: &[&str] = &[
    "news", "shop", "blog", "tech", "media", "cloud", "data", "game", "home", "life", "web",
    "star", "east", "blue", "fast", "soft", "live", "play", "gold", "city", "open", "plus", "line",
    "link", "zone", "base", "mart", "port", "cast", "wave",
];

impl DomainModel {
    /// Generates the model for `(seed, rank)` on `timeline` with
    /// `domain_count` total domains (for rank-relative probabilities).
    pub fn generate(
        seed: u64,
        rank: usize,
        domain_count: usize,
        timeline: &Timeline,
    ) -> DomainModel {
        let name = domain_name(seed, rank);
        Generator {
            seed,
            rank,
            domain_count,
            timeline: *timeline,
            name: name.clone(),
            models: library_models(),
        }
        .build()
    }

    /// Resolves the state at `week`.
    pub fn state_at(&self, week: usize) -> DomainState {
        let online = self.online_at(week);
        let antibot = self.antibot_from.is_some_and(|w| week >= w);
        let mut deployments = self.base_deployments.clone();
        let mut wordpress = self.base_wordpress.clone();
        let mut flash = self.base_flash.clone();
        for (event_week, event) in &self.events {
            if *event_week > week {
                break;
            }
            match event {
                Event::SetVersion(lib, version) => {
                    for d in deployments.iter_mut().filter(|d| d.library == *lib) {
                        d.version = version.clone();
                    }
                }
                Event::Remove(lib) => deployments.retain(|d| d.library != *lib),
                Event::Add(dep) => {
                    if !deployments.iter().any(|d| d.library == dep.library) {
                        deployments.push(dep.clone());
                    }
                }
                Event::WordPress(v) => wordpress = Some(v.clone()),
                Event::FlashRemoved => flash = None,
            }
        }
        DomainState {
            online,
            antibot,
            deployments,
            wordpress,
            flash,
            github_script: self.github_script.clone(),
            extra_scripts: self.extra_scripts.clone(),
            resources: self.resources,
        }
    }

    /// Whether the domain answers at all in `week`.
    pub fn online_at(&self, week: usize) -> bool {
        if self.dead_from_start {
            return false;
        }
        if self.death_week.is_some_and(|w| week >= w) {
            return false;
        }
        if self.unstable {
            // Independent coin per (domain, week).
            let mut r = stream(self.seed, &self.name, &format!("online:{week}"));
            return r.permille(500);
        }
        true
    }
}

fn domain_name(seed: u64, rank: usize) -> String {
    let mut r = stream(seed, &format!("rank:{rank}"), "name");
    let a = NAME_PARTS[r.below(NAME_PARTS.len() as u32) as usize];
    let b = NAME_PARTS[r.below(NAME_PARTS.len() as u32) as usize];
    let tld_idx = r.pick_weighted_index(&TLDS.iter().map(|(_, w)| *w).collect::<Vec<_>>());
    // Case-study domains at the paper's ranks (§6.4): real high-profile
    // sites shown to run understated-vulnerable versions.
    match rank {
        46 => "microsoft.example".to_string(),
        111 => "onlinesbi.example".to_string(),
        1693 => "docusign.example".to_string(),
        _ => format!("{a}{b}{rank}.{}", TLDS[tld_idx].0),
    }
}

struct Generator {
    seed: u64,
    rank: usize,
    domain_count: usize,
    timeline: Timeline,
    name: String,
    models: Vec<LibraryModel>,
}

impl Generator {
    fn rng(&self, purpose: &str) -> Pcg32 {
        stream(self.seed, &self.name, purpose)
    }

    fn rank_frac(&self) -> f64 {
        self.rank as f64 / self.domain_count.max(1) as f64
    }

    fn build(self) -> DomainModel {
        let weeks = self.timeline.weeks;
        let mut fate = self.rng("fate");

        // Accessibility model: ~22% of the list is not collectible each
        // week (Fig 2a: 782,300 of 1M). Low-ranked sites are flakier.
        let dead_permille = (130.0 + 110.0 * self.rank_frac()) as u32;
        let dead_from_start = fate.permille(dead_permille);
        let death_week = if !dead_from_start && fate.permille(40) {
            Some(fate.below(weeks.max(1) as u32) as usize)
        } else {
            None
        };
        let unstable = !dead_from_start && fate.permille(60);
        let antibot_from = if !dead_from_start && fate.permille(12) {
            Some(fate.below(weeks.max(1) as u32) as usize)
        } else {
            None
        };

        let resources = self.resource_flags();
        let mut events: Vec<(usize, Event)> = Vec::new();
        let mut deployments: Vec<Deployment> = Vec::new();

        // WordPress trajectory first: it decides jQuery/Migrate handling.
        let mut wp = self.rng("wordpress");
        let is_wordpress = wp.permille(WORDPRESS_PERMILLE);
        let mut base_wordpress = None;
        if is_wordpress {
            base_wordpress = Some(self.wordpress_setup(&mut wp, &mut deployments, &mut events));
        }

        // Organic library adoption.
        for model in &self.models {
            if is_wordpress && matches!(model.library, LibraryId::JQuery | LibraryId::JQueryMigrate)
            {
                continue; // WordPress bundles these
            }
            self.maybe_adopt(model, &mut deployments, &mut events);
        }

        // jQuery-Cookie → JS-Cookie migration (§6.3: ~39% migrated).
        if let Some(_jqc) = deployments
            .iter()
            .find(|d| d.library == LibraryId::JQueryCookie)
        {
            let mut r = self.rng("jqc-migration");
            if r.permille(430) {
                let week = r.below(weeks.max(1) as u32) as usize;
                events.push((week, Event::Remove(LibraryId::JQueryCookie)));
                let model = self
                    .models
                    .iter()
                    .find(|m| m.library == LibraryId::JsCookie)
                    .expect("JS-Cookie model exists");
                let version = self.version_at_adoption(model, week, &mut r);
                let dep = self.make_deployment(model, version, &mut r);
                events.push((week, Event::Add(dep)));
            }
        }

        // Flash.
        let mut flash_rng = self.rng("flash");
        let base_flash = self.flash_setup(&mut flash_rng, &mut events, &mut deployments);

        // GitHub-hosted extra script (§6.5).
        let mut gh = self.rng("github");
        let github_script = if gh.permille(GITHUB_HOSTED_PERMILLE) {
            let weights: Vec<u32> = GITHUB_HOSTS.iter().map(|(_, w)| *w).collect();
            let pick = gh.pick_weighted_index(&weights);
            Some(GithubScript {
                url_path: GITHUB_HOSTS[pick].0.to_string(),
                integrity: gh.permille(GITHUB_SRI_PERMILLE),
            })
        } else {
            None
        };

        // Generic third-party scripts: most sites run analytics/tags.
        let mut extra = self.rng("extra-scripts");
        let mut extra_scripts = Vec::new();
        if resources.javascript && extra.permille(EXTRA_SCRIPT_PERMILLE) {
            let count = 1 + extra.below(3) as usize;
            let weights: Vec<u32> = EXTRA_SCRIPT_HOSTS.iter().map(|&(_, _, w)| w).collect();
            for _ in 0..count {
                let pick = extra.pick_weighted_index(&weights);
                let (host, path, _) = EXTRA_SCRIPT_HOSTS[pick];
                let script = ExtraScript {
                    host: host.to_string(),
                    path: path.to_string(),
                };
                if !extra_scripts.contains(&script) {
                    extra_scripts.push(script);
                }
            }
        }

        events.sort_by_key(|(w, _)| *w);
        let mut model = DomainModel {
            name: self.name.clone(),
            rank: self.rank,
            resources,
            base_deployments: deployments,
            base_wordpress,
            base_flash,
            github_script,
            extra_scripts,
            events,
            dead_from_start,
            death_week,
            unstable,
            antibot_from,
            seed: self.seed,
        };
        self.apply_case_study_overrides(&mut model);
        model
    }

    /// The paper's §6.4 high-profile examples, pinned at their real ranks:
    /// microsoft.com (46) and onlinesbi.com (111) ran jQuery 3.5.1 —
    /// claimed-clean but truly vulnerable under CVE-2020-7656's TVV —
    /// and docusign.com (1693) sat on the understated 2.2.3 throughout.
    fn apply_case_study_overrides(&self, model: &mut DomainModel) {
        let is_case_study = matches!(self.rank, 46 | 111 | 1693);
        if !is_case_study || self.rank > self.domain_count {
            return;
        }
        // High-profile sites are always reachable and crawlable.
        model.dead_from_start = false;
        model.death_week = None;
        model.unstable = false;
        model.antibot_from = None;
        model.resources.javascript = true;
        model.resources.css = true;
        // Drop any randomly-scheduled jQuery dynamics; the trajectory is
        // pinned below.
        model.base_wordpress = None;
        model
            .base_deployments
            .retain(|d| d.library != LibraryId::JQuery);
        model.events.retain(|(_, e)| {
            !matches!(
                e,
                Event::SetVersion(LibraryId::JQuery, _)
                    | Event::Remove(LibraryId::JQuery)
                    | Event::WordPress(_)
            )
        });
        let jq = |ver: &str| Deployment {
            library: LibraryId::JQuery,
            version: Version::parse(ver).expect("case-study version"),
            inclusion: Inclusion::Internal,
            integrity: false,
            crossorigin: None,
            via_wordpress: false,
            version_visible: true,
            inlined: false,
        };
        match self.rank {
            46 | 111 => {
                // 3.4.1 until jQuery 3.5.1's release, then 3.5.1 — never
                // reaching 3.6.0 within the study (the paper observed
                // 3.5.1 as of its analysis).
                model.base_deployments.push(jq("3.4.1"));
                if let Some(week) = self.timeline.week_of(Date::new(2020, 5, 18)) {
                    model.events.push((
                        week,
                        Event::SetVersion(
                            LibraryId::JQuery,
                            Version::parse("3.5.1").expect("case-study version"),
                        ),
                    ));
                }
            }
            _ => {
                // docusign.example: jQuery 2.2.3 for the whole study.
                model.base_deployments.push(jq("2.2.3"));
            }
        }
        model.events.sort_by_key(|(w, _)| *w);
    }

    fn resource_flags(&self) -> ResourceFlags {
        let t = ResourceTargets::paper();
        let mut r = self.rng("resources");
        ResourceFlags {
            javascript: r.permille(t.javascript),
            css: r.permille(t.css),
            favicon: r.permille(t.favicon),
            imported_html: r.permille(t.imported_html),
            xml: r.permille(t.xml),
            svg: r.permille(t.svg),
            axd: r.permille(t.axd),
        }
    }

    /// Version available from `model`'s initial mix, or — when adopting
    /// mid-study — the latest release at the adoption date.
    fn version_at_adoption(&self, model: &LibraryModel, week: usize, r: &mut Pcg32) -> Version {
        if week == 0 {
            let weights: Vec<u32> = model.initial_versions.iter().map(|(_, w)| *w).collect();
            let pick = r.pick_weighted_index(&weights);
            Version::parse(model.initial_versions[pick].0).expect("share versions parse")
        } else {
            let date = self.timeline.date_of(week);
            catalog(model.library)
                .latest_at(date)
                .map(|rel| rel.version.clone())
                .unwrap_or_else(|| {
                    Version::parse(model.initial_versions[0].0).expect("share versions parse")
                })
        }
    }

    fn make_deployment(&self, model: &LibraryModel, version: Version, r: &mut Pcg32) -> Deployment {
        let internal = r.permille(model.internal_permille);
        let inclusion = if internal {
            Inclusion::Internal
        } else if r.permille(model.cdn_of_external_permille) {
            let weights: Vec<u32> = model.cdn_hosts.iter().map(|(_, w)| *w).collect();
            let pick = r.pick_weighted_index(&weights);
            Inclusion::External {
                host: model.cdn_hosts[pick].0.to_string(),
                cdn: true,
            }
        } else {
            Inclusion::External {
                host: format!("static.{}", self.name),
                cdn: false,
            }
        };
        // SRI: site-level trait sampled per deployment stream for
        // simplicity; full-SRI sites mark everything, partial mark some.
        let external = matches!(inclusion, Inclusion::External { .. });
        let integrity = external
            && (r.permille(FULL_SRI_PERMILLE)
                || (r.permille(PARTIAL_SRI_PERMILLE) && r.permille(500)));
        let crossorigin = if integrity {
            let weights: Vec<u32> = CROSSORIGIN_WEIGHTS.iter().map(|(_, w)| *w).collect();
            let pick = r.pick_weighted_index(&weights);
            match CROSSORIGIN_WEIGHTS[pick].0 {
                "" => None,
                v => Some(v.to_string()),
            }
        } else {
            None
        };
        // Some self-hosting sites paste the library straight into the
        // page; the banner comment is then the only version marker.
        let inlined = matches!(inclusion, Inclusion::Internal)
            && crate::render::has_inline_banner(model.library)
            && r.permille(60);
        let visible_draw = r.permille(960);
        Deployment {
            library: model.library,
            version,
            inclusion,
            integrity,
            crossorigin,
            via_wordpress: false,
            // Inlined copies always show their banner version.
            version_visible: inlined || visible_draw,
            inlined,
        }
    }

    fn maybe_adopt(
        &self,
        model: &LibraryModel,
        deployments: &mut Vec<Deployment>,
        events: &mut Vec<(usize, Event)>,
    ) {
        let mut r = self.rng(&format!("lib:{}", model.library.slug()));
        let weeks = self.timeline.weeks;
        let (drop_permille, late_permille) = trend(model.library);
        if r.permille(model.usage_permille) {
            let version = self.version_at_adoption(model, 0, &mut r);
            let initial = version.clone();
            deployments.push(self.make_deployment(model, version, &mut r));
            // Declining libraries: some users drop the library mid-study.
            if r.permille(drop_permille) {
                let week = r.below(weeks.max(1) as u32) as usize;
                events.push((week, Event::Remove(model.library)));
            } else {
                self.schedule_updates(model.library, &initial, &mut r, events);
            }
        } else if r.permille(late_permille) {
            // Rising libraries: non-users adopting mid-study.
            let week = 1 + r.below(weeks.saturating_sub(1).max(1) as u32) as usize;
            let version = self.version_at_adoption(model, week, &mut r);
            let dep = self.make_deployment(model, version, &mut r);
            events.push((week, Event::Add(dep)));
        }
    }

    /// Draws the updater class and schedules organic update events, each
    /// jumping to the newest release available at that date.
    fn schedule_updates(
        &self,
        lib: LibraryId,
        initial: &Version,
        r: &mut Pcg32,
        events: &mut Vec<(usize, Event)>,
    ) {
        let weights: Vec<u32> = UPDATER_CLASSES.iter().map(|(w, _)| *w).collect();
        let class = UPDATER_CLASSES[r.pick_weighted_index(&weights)].1;
        let Some((mean_weeks, crosses_major)) = class else {
            return; // never updates
        };
        let cat = catalog(lib);
        let mut week = 0usize;
        let major = initial.major();
        let mut current = initial.clone();
        loop {
            week += r.geometric_weeks(mean_weeks);
            if week >= self.timeline.weeks {
                return;
            }
            let date = self.timeline.date_of(week);
            let target = if crosses_major {
                cat.latest_at(date)
            } else {
                cat.latest_at_in_major(date, major)
            };
            if let Some(rel) = target {
                let upgraded = rel.version.clone();
                events.push((week, Event::SetVersion(lib, upgraded.clone())));
                // §9 future work: some updates regress — compatibility
                // breakage pushes the site back to its previous version a
                // few weeks later (and it stays there).
                if upgraded > current && r.permille(80) {
                    let back = week + 2 + r.below(8) as usize;
                    if back < self.timeline.weeks {
                        events.push((back, Event::SetVersion(lib, current.clone())));
                        return;
                    }
                }
                current = upgraded;
            }
        }
    }

    /// WordPress: bundled jQuery (+usually Migrate), core version
    /// trajectory, and the auto-update waves of Figures 3 and 7.
    fn wordpress_setup(
        &self,
        r: &mut Pcg32,
        deployments: &mut Vec<Deployment>,
        events: &mut Vec<(usize, Event)>,
    ) -> Version {
        let v = |s: &str| Version::parse(s).expect("wp versions parse");
        let weeks = self.timeline.weeks;
        // Initial core version.
        let initial_weights = [
            ("4.9", 400u32),
            ("5.0", 220),
            ("4.5", 160),
            ("4.0", 140),
            ("3.7", 80),
        ];
        let pick = r.pick_weighted_index(&initial_weights.map(|(_, w)| w));
        let base_wp = v(initial_weights[pick].0);

        // Bundled jQuery (internal, wp-style): 1.12.4 since WP 4.5; older
        // cores still serve 1.11/1.10 builds.
        let jq_weights = [
            ("1.12.4", 700u32),
            ("1.11.3", 140),
            ("1.11.1", 90),
            ("1.10.2", 70),
        ];
        let jq_pick = r.pick_weighted_index(&jq_weights.map(|(_, w)| w));
        let jq_version = v(jq_weights[jq_pick].0);
        deployments.push(Deployment {
            library: LibraryId::JQuery,
            version: jq_version,
            inclusion: Inclusion::Internal,
            integrity: false,
            crossorigin: None,
            via_wordpress: true,
            version_visible: true,
            inlined: false,
        });
        let has_migrate = r.permille(700);
        if has_migrate {
            let external = r.permille(116); // Table 1: Migrate is 88.4% internal
            deployments.push(Deployment {
                library: LibraryId::JQueryMigrate,
                version: v("1.4.1"),
                inclusion: if external {
                    Inclusion::External {
                        host: "c0.wp.com".to_string(),
                        cdn: true,
                    }
                } else {
                    Inclusion::Internal
                },
                integrity: false,
                crossorigin: None,
                via_wordpress: true,
                version_visible: true,
                inlined: false,
            });
        }

        let auto_update = r.permille(750);
        if auto_update {
            let events_cfg = webvuln_cvedb::WordPressEvents::paper();
            let takes_major = r.permille(700);
            // WP 5.5 (Aug 2020): jQuery-Migrate disabled by default.
            let w55 = self.timeline.week_of(events_cfg.wp55_migrate_disabled);
            if let Some(w55) = w55 {
                if takes_major {
                    let at = (w55 + r.below(5) as usize).min(weeks.saturating_sub(1));
                    events.push((at, Event::WordPress(v("5.5"))));
                    if has_migrate {
                        events.push((at, Event::Remove(LibraryId::JQueryMigrate)));
                    }
                }
            }
            // WP 5.6 (Dec 2020): Migrate re-bundled, jQuery → 3.5.1.
            if let Some(w56) = self.timeline.week_of(events_cfg.wp56_jquery_351) {
                let takes_56 = takes_major || r.permille(350);
                if takes_56 {
                    let at = (w56 + r.below(4) as usize).min(weeks.saturating_sub(1));
                    events.push((at, Event::WordPress(v("5.6"))));
                    events.push((at, Event::SetVersion(LibraryId::JQuery, v("3.5.1"))));
                    if has_migrate {
                        events.push((
                            at,
                            Event::Add(Deployment {
                                library: LibraryId::JQueryMigrate,
                                version: v("3.3.2"),
                                inclusion: Inclusion::Internal,
                                integrity: false,
                                crossorigin: None,
                                via_wordpress: true,
                                version_visible: true,
                                inlined: false,
                            }),
                        ));
                    }
                    // WP jQuery 3.6.0 wave (Aug 2021).
                    if let Some(w36) = self.timeline.week_of(events_cfg.wp_jquery_360) {
                        if r.permille(800) {
                            let at = (w36 + r.below(9) as usize).min(weeks.saturating_sub(1));
                            events.push((at, Event::WordPress(v("5.8"))));
                            events.push((at, Event::SetVersion(LibraryId::JQuery, v("3.6.0"))));
                        }
                    }
                }
            }
        } else {
            // Manual upgraders: rare core bumps; bundled jQuery moves to
            // 3.5.1 only if they cross 5.6.
            let mut week = 0usize;
            let mut crossed_56 = false;
            let wp_cat = webvuln_cvedb::wordpress_catalog();
            loop {
                week += r.geometric_weeks(130.0);
                if week >= weeks {
                    break;
                }
                let date = self.timeline.date_of(week);
                let Some(latest) = wp_cat.iter().rfind(|rel| rel.date <= date) else {
                    continue;
                };
                events.push((week, Event::WordPress(latest.version.clone())));
                if !crossed_56 && latest.version >= v("5.6") {
                    crossed_56 = true;
                    events.push((week, Event::SetVersion(LibraryId::JQuery, v("3.5.1"))));
                }
            }
        }
        base_wp
    }

    /// Flash: rank- and TLD-dependent presence with decaying survival.
    fn flash_setup(
        &self,
        r: &mut Pcg32,
        events: &mut Vec<(usize, Event)>,
        deployments: &mut Vec<Deployment>,
    ) -> Option<FlashState> {
        let is_cn = self.name.ends_with(".cn");
        let mut presence = (4.0 + 16.0 * self.rank_frac()) as u32;
        if is_cn {
            presence *= 3;
        }
        if !r.permille(presence) {
            return None;
        }
        let has_param = r.permille(400);
        let allow = if has_param {
            if r.permille(250) {
                Some("always".to_string())
            } else if r.permille(800) {
                Some("samedomain".to_string())
            } else {
                Some("never".to_string())
            }
        } else {
            None
        };
        // Survival: weekly removal hazard, halved after Flash EOL (the
        // remaining sites are unmaintained), halved again for `always`
        // sites and for .cn sites (the 360-browser ecosystem, §8).
        let eol_week = self
            .timeline
            .week_of(Date::new(2021, 1, 1))
            .unwrap_or(self.timeline.weeks);
        let mut hazard_scale = 1.0;
        if allow.as_deref() == Some("always") {
            hazard_scale *= 0.5;
        }
        if is_cn {
            hazard_scale *= 0.4;
        }
        // Two-phase survival draw: the pre-EOL hazard applies until the
        // end-of-life week; sites surviving to EOL are mostly unmaintained
        // and decay at the lower post-EOL hazard from there.
        let pre_mean = f64::max(1000.0 / (7.5 * hazard_scale), 2.0);
        let post_mean = f64::max(1000.0 / (2.5 * hazard_scale), 2.0);
        let first_draw = r.geometric_weeks(pre_mean);
        let removal_week = if first_draw < eol_week {
            Some(first_draw)
        } else {
            Some(eol_week + r.geometric_weeks(post_mean))
        }
        .filter(|&w| w < self.timeline.weeks);
        if let Some(w) = removal_week {
            events.push((w, Event::FlashRemoved));
        }
        // Flash sites often still carry the SWFObject embedder.
        if r.permille(300)
            && !deployments
                .iter()
                .any(|d| d.library == LibraryId::SwfObject)
        {
            let model = self
                .models
                .iter()
                .find(|m| m.library == LibraryId::SwfObject)
                .expect("SWFObject model exists");
            let dep = self.make_deployment(model, Version::parse("2.2").expect("2.2"), r);
            deployments.push(dep);
        }
        Some(FlashState {
            swf_url: if r.permille(800) {
                "/media/banner.swf".to_string()
            } else {
                format!("https://static.{}/intro.swf", self.name)
            },
            allow_script_access: allow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tl() -> Timeline {
        Timeline::paper()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DomainModel::generate(1, 17, 1000, &paper_tl());
        let b = DomainModel::generate(1, 17, 1000, &paper_tl());
        assert_eq!(a.name, b.name);
        assert_eq!(a.state_at(0), b.state_at(0));
        assert_eq!(a.state_at(100), b.state_at(100));
    }

    #[test]
    fn different_seeds_make_different_webs() {
        let n = 500;
        let diff = (0..n)
            .filter(|&r| {
                let a = DomainModel::generate(1, r, n, &paper_tl()).state_at(0);
                let b = DomainModel::generate(2, r, n, &paper_tl()).state_at(0);
                a != b
            })
            .count();
        assert!(diff > n / 4, "{diff} of {n} differ");
    }

    #[test]
    fn population_shares_hit_paper_targets() {
        let n = 4_000usize;
        let tl = paper_tl();
        let models: Vec<DomainModel> = (1..=n)
            .map(|r| DomainModel::generate(7, r, n, &tl))
            .collect();
        let online: Vec<&DomainModel> = models.iter().filter(|m| m.online_at(0)).collect();
        let frac = |pred: &dyn Fn(&DomainState) -> bool| {
            let hits = online.iter().filter(|m| pred(&m.state_at(0))).count();
            hits as f64 / online.len() as f64
        };
        let jquery = frac(&|s| s.deployments.iter().any(|d| d.library == LibraryId::JQuery));
        assert!((0.58..0.70).contains(&jquery), "jQuery {jquery}");
        let wp = frac(&|s| s.wordpress.is_some());
        assert!((0.22..0.32).contains(&wp), "WordPress {wp}");
        let bootstrap = frac(&|s| {
            s.deployments
                .iter()
                .any(|d| d.library == LibraryId::Bootstrap)
        });
        assert!((0.17..0.27).contains(&bootstrap), "Bootstrap {bootstrap}");
        let collected = online.len() as f64 / n as f64;
        assert!((0.72..0.85).contains(&collected), "collected {collected}");
    }

    #[test]
    fn wordpress_wave_moves_jquery_to_351_and_360() {
        let n = 3_000usize;
        let tl = paper_tl();
        let w_pre = tl.week_of(Date::new(2020, 11, 1)).expect("in range");
        let w_post = tl.week_of(Date::new(2021, 3, 1)).expect("in range");
        let w_late = tl.week_of(Date::new(2021, 12, 20)).expect("in range");
        let v351 = Version::parse("3.5.1").expect("version");
        let v360 = Version::parse("3.6.0").expect("version");
        let mut pre = 0;
        let mut post = 0;
        let mut late360 = 0;
        let mut wp_total = 0;
        for rank in 1..=n {
            let m = DomainModel::generate(11, rank, n, &tl);
            let s0 = m.state_at(w_pre);
            if s0.wordpress.is_none() {
                continue;
            }
            wp_total += 1;
            let count_at = |week: usize, v: &Version| {
                m.state_at(week)
                    .deployments
                    .iter()
                    .any(|d| d.library == LibraryId::JQuery && &d.version == v)
            };
            pre += count_at(w_pre, &v351) as usize;
            post += count_at(w_post, &v351) as usize;
            late360 += count_at(w_late, &v360) as usize;
        }
        assert!(wp_total > 500, "enough WordPress sites: {wp_total}");
        assert!(
            post > pre + wp_total / 4,
            "Dec 2020 wave: pre={pre} post={post} of {wp_total}"
        );
        assert!(
            late360 > wp_total / 4,
            "Aug 2021 wave: {late360} of {wp_total}"
        );
    }

    #[test]
    fn migrate_dips_then_recovers() {
        let n = 3_000usize;
        let tl = paper_tl();
        let count_migrate = |week: usize| {
            (1..=n)
                .filter(|&rank| {
                    let m = DomainModel::generate(13, rank, n, &tl);
                    m.online_at(week)
                        && m.state_at(week)
                            .deployments
                            .iter()
                            .any(|d| d.library == LibraryId::JQueryMigrate)
                })
                .count()
        };
        let before = count_migrate(tl.week_of(Date::new(2020, 7, 1)).expect("ok"));
        let during = count_migrate(tl.week_of(Date::new(2020, 11, 15)).expect("ok"));
        let after = count_migrate(tl.week_of(Date::new(2021, 3, 1)).expect("ok"));
        assert!(
            during < before * 9 / 10,
            "dip: before={before} during={during}"
        );
        assert!(after > during, "recovery: during={during} after={after}");
    }

    #[test]
    fn flash_decays_over_the_study() {
        let n = 6_000usize;
        let tl = paper_tl();
        let models: Vec<DomainModel> = (1..=n)
            .map(|r| DomainModel::generate(17, r, n, &tl))
            .collect();
        let flash_at = |week: usize| {
            models
                .iter()
                .filter(|m| m.state_at(week).flash.is_some())
                .count()
        };
        let start = flash_at(0);
        let end = flash_at(tl.weeks - 1);
        assert!(start > 20, "some flash at start: {start}");
        assert!(
            (end as f64) < start as f64 * 0.65,
            "decay: {start} -> {end}"
        );
        assert!(end > 0, "a tail of zombie flash survives");
    }

    #[test]
    fn always_share_rises_among_survivors() {
        let n = 30_000usize;
        let tl = paper_tl();
        let models: Vec<DomainModel> = (1..=n)
            .map(|r| DomainModel::generate(19, r, n, &tl))
            .collect();
        let always_share = |week: usize| {
            let (mut always, mut with_flash) = (0usize, 0usize);
            for m in &models {
                if let Some(f) = m.state_at(week).flash {
                    with_flash += 1;
                    if f.allow_script_access.as_deref() == Some("always") {
                        always += 1;
                    }
                }
            }
            always as f64 / with_flash.max(1) as f64
        };
        let early = always_share(0);
        let late = always_share(tl.weeks - 1);
        assert!(late > early, "always share rises: {early:.3} -> {late:.3}");
    }

    #[test]
    fn case_study_domains_exist() {
        let tl = paper_tl();
        let m = DomainModel::generate(1, 46, 10_000, &tl);
        assert_eq!(m.name, "microsoft.example");
        assert_eq!(
            DomainModel::generate(9, 1693, 10_000, &tl).name,
            "docusign.example"
        );
    }

    #[test]
    fn case_study_trajectories_match_the_paper() {
        let tl = paper_tl();
        let jq_at = |m: &DomainModel, week: usize| {
            m.state_at(week)
                .deployments
                .iter()
                .find(|d| d.library == LibraryId::JQuery)
                .map(|d| d.version.to_string())
                .expect("jQuery present")
        };
        for (seed, rank) in [(1u64, 46usize), (77, 46), (5, 111)] {
            let m = DomainModel::generate(seed, rank, 10_000, &tl);
            let before = tl.week_of(Date::new(2020, 4, 1)).expect("in range");
            let after = tl.week_of(Date::new(2020, 7, 1)).expect("in range");
            assert_eq!(jq_at(&m, before), "3.4.1", "seed {seed} rank {rank}");
            assert_eq!(jq_at(&m, after), "3.5.1", "seed {seed} rank {rank}");
            assert_eq!(jq_at(&m, tl.weeks - 1), "3.5.1", "never reaches 3.6.0");
            for week in [0, 100, 200] {
                assert!(m.online_at(week), "case-study sites stay reachable");
            }
        }
        let docusign = DomainModel::generate(3, 1693, 10_000, &tl);
        assert_eq!(jq_at(&docusign, 0), "2.2.3");
        assert_eq!(jq_at(&docusign, tl.weeks - 1), "2.2.3");
    }

    #[test]
    fn dead_domains_stay_dead() {
        let tl = paper_tl();
        let n = 2_000;
        let dead: Vec<DomainModel> = (1..=n)
            .map(|r| DomainModel::generate(23, r, n, &tl))
            .filter(|m| !m.online_at(0) && !m.unstable)
            .collect();
        assert!(!dead.is_empty());
        for m in dead.iter().take(50) {
            if m.dead_from_start {
                for w in [0, 50, 200] {
                    assert!(!m.online_at(w), "{} week {w}", m.name);
                }
            }
        }
    }

    #[test]
    fn states_are_monotone_in_event_replay() {
        // Replaying to a later week never loses base resources flags, and
        // deployments stay version-resolvable.
        let tl = paper_tl();
        for rank in 1..100 {
            let m = DomainModel::generate(29, rank, 100, &tl);
            let s_early = m.state_at(0);
            let s_late = m.state_at(tl.weeks - 1);
            assert_eq!(s_early.resources, s_late.resources);
        }
    }
}
