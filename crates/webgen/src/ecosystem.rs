//! The full synthetic web: all domains, queryable per week, exposed as a
//! [`webvuln_net::Handler`] so the crawler fetches it over the real HTTP
//! codec.

use crate::domain::{DomainModel, DomainState};
use crate::render::{antibot_page, render_page};
use crate::timeline::Timeline;
use std::collections::HashMap;
use std::sync::Arc;
use webvuln_net::{Handler, Request, Response, Status};

/// Configuration of the synthetic web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcosystemConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of domains in the Alexa-style list.
    pub domain_count: usize,
    /// Snapshot timeline.
    pub timeline: Timeline,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 42,
            domain_count: 5_000,
            timeline: Timeline::paper(),
        }
    }
}

/// The generated web: an Alexa-style ranked list of domain models.
pub struct Ecosystem {
    config: EcosystemConfig,
    models: Vec<DomainModel>,
    index: HashMap<String, usize>,
}

impl Ecosystem {
    /// Generates the whole population (deterministic in the config).
    pub fn generate(config: EcosystemConfig) -> Ecosystem {
        let models: Vec<DomainModel> = (1..=config.domain_count)
            .map(|rank| {
                DomainModel::generate(config.seed, rank, config.domain_count, &config.timeline)
            })
            .collect();
        let index = models
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), i))
            .collect();
        Ecosystem {
            config,
            models,
            index,
        }
    }

    /// The configuration used to generate this web.
    pub fn config(&self) -> &EcosystemConfig {
        &self.config
    }

    /// The timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.config.timeline
    }

    /// The ranked domain list (rank = position + 1).
    pub fn domain_names(&self) -> Vec<String> {
        self.models.iter().map(|m| m.name.clone()).collect()
    }

    /// All models, rank order.
    pub fn models(&self) -> &[DomainModel] {
        &self.models
    }

    /// Looks a model up by host name.
    pub fn model(&self, host: &str) -> Option<&DomainModel> {
        self.index.get(host).map(|&i| &self.models[i])
    }

    /// Resolved state of `host` at `week`.
    pub fn state(&self, host: &str, week: usize) -> Option<DomainState> {
        self.model(host).map(|m| m.state_at(week))
    }

    /// What the web serves for `host` at `week`.
    pub fn page(&self, host: &str, week: usize) -> PageOutcome {
        let Some(model) = self.model(host) else {
            return PageOutcome::UnknownHost;
        };
        let state = model.state_at(week);
        if !state.online {
            return PageOutcome::Offline;
        }
        if state.antibot {
            // The paper saw both flavours: 4xx blocks and 200-status
            // "Not allowed" stub pages. Alternate deterministically.
            return if model.rank % 2 == 0 {
                PageOutcome::Blocked(antibot_page())
            } else {
                PageOutcome::Forbidden
            };
        }
        PageOutcome::Page(render_page(host, week, &state))
    }

    /// Wraps the ecosystem as an HTTP handler serving snapshot `week`.
    pub fn handler(self: &Arc<Self>, week: usize) -> WeekHandler {
        WeekHandler {
            ecosystem: Arc::clone(self),
            week,
        }
    }
}

/// Outcome of requesting a landing page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOutcome {
    /// Host not in the list (NXDOMAIN-ish).
    UnknownHost,
    /// Domain dead/unreachable this week.
    Offline,
    /// Anti-bot block with a 403.
    Forbidden,
    /// Anti-bot stub page served with a 200 (under 400 bytes).
    Blocked(String),
    /// A real landing page.
    Page(String),
}

/// [`Handler`] serving one snapshot week of the ecosystem.
pub struct WeekHandler {
    ecosystem: Arc<Ecosystem>,
    week: usize,
}

impl Handler for WeekHandler {
    fn handle(&self, req: &Request) -> Response {
        let Some(host) = req.host() else {
            return Response::status(Status::BAD_REQUEST);
        };
        match self.ecosystem.page(host, self.week) {
            PageOutcome::UnknownHost => Response::status(Status::NOT_FOUND),
            // Offline domains at the HTTP layer surface as 503; the
            // inaccessibility filter treats them like refused connections.
            PageOutcome::Offline => Response::status(Status::SERVICE_UNAVAILABLE),
            PageOutcome::Forbidden => Response::status(Status::FORBIDDEN),
            PageOutcome::Blocked(body) => Response::html(body),
            PageOutcome::Page(body) => Response::html(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webvuln_net::{crawl, CrawlConfig, VirtualNet};

    fn small() -> Arc<Ecosystem> {
        Arc::new(Ecosystem::generate(EcosystemConfig {
            seed: 1,
            domain_count: 300,
            timeline: Timeline::truncated(12),
        }))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ecosystem::generate(EcosystemConfig {
            seed: 5,
            domain_count: 100,
            timeline: Timeline::truncated(4),
        });
        let b = Ecosystem::generate(EcosystemConfig {
            seed: 5,
            domain_count: 100,
            timeline: Timeline::truncated(4),
        });
        assert_eq!(a.domain_names(), b.domain_names());
        for name in a.domain_names() {
            assert_eq!(a.state(&name, 3), b.state(&name, 3));
        }
    }

    #[test]
    fn unknown_host_is_distinguished() {
        let eco = small();
        assert_eq!(
            eco.page("not-a-domain.example", 0),
            PageOutcome::UnknownHost
        );
    }

    #[test]
    fn online_domains_serve_real_pages() {
        let eco = small();
        let mut pages = 0;
        for name in eco.domain_names() {
            if let PageOutcome::Page(body) = eco.page(&name, 0) {
                assert!(body.len() >= 400, "{name}");
                assert!(body.contains(&name));
                pages += 1;
            }
        }
        assert!(pages > 150, "most of the web serves pages: {pages}");
    }

    #[test]
    fn crawler_end_to_end_over_virtual_net() {
        let eco = small();
        let net = VirtualNet::new(Arc::new(eco.handler(0)));
        let names = eco.domain_names();
        let snapshot = crawl(&names, &net, CrawlConfig { concurrency: 4 });
        assert_eq!(snapshot.len(), names.len());
        let usable = snapshot.values().filter(|r| r.is_usable(400)).count();
        assert!(
            (150..=290).contains(&usable),
            "{usable} of {} usable",
            names.len()
        );
        // Served bodies match the generator's output exactly.
        let some_ok = snapshot
            .values()
            .find(|r| r.is_usable(400))
            .expect("at least one usable page");
        match eco.page(&some_ok.domain, 0) {
            PageOutcome::Page(body) => assert_eq!(body, some_ok.body),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn antibot_pages_come_in_both_flavours() {
        let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
            seed: 3,
            domain_count: 4_000,
            timeline: Timeline::truncated(40),
        }));
        let week = 39;
        let mut forbidden = 0;
        let mut stub = 0;
        for name in eco.domain_names() {
            match eco.page(&name, week) {
                PageOutcome::Forbidden => forbidden += 1,
                PageOutcome::Blocked(body) => {
                    assert!(body.len() < 400);
                    stub += 1;
                }
                _ => {}
            }
        }
        assert!(forbidden > 0, "some 403 blocks");
        assert!(stub > 0, "some 200-status stub blocks");
    }

    #[test]
    fn week_handler_serves_status_codes() {
        let eco = small();
        let handler = eco.handler(0);
        let resp = handler.handle(&Request::get("missing.example", "/"));
        assert_eq!(resp.status, Status::NOT_FOUND);
        let name = eco.domain_names()[0].clone();
        let resp = handler.handle(&Request::get(&name, "/"));
        assert!(
            [200u16, 403, 503].contains(&resp.status.0),
            "{}",
            resp.status
        );
    }
}
