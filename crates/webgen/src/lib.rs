//! # webvuln-webgen
//!
//! The synthetic web ecosystem — the data substitution that replaces the
//! paper's 157.2M crawled pages (see DESIGN.md §2).
//!
//! An [`Ecosystem`] is an Alexa-style ranked list of domains generated
//! deterministically from a seed. Each domain carries a technology profile
//! (WordPress, the top-15 libraries with versions and inclusion types,
//! SRI/CORS hygiene, Flash) and a small set of life events (organic
//! updates, WordPress auto-update waves, library adoption/abandonment,
//! Flash removal, domain death). Resolving a `(domain, week)` pair yields
//! the exact HTML the crawler downloads that week.
//!
//! The marginal distributions come straight from the paper's tables
//! ([`shares`]); the temporal events come from its findings (WordPress
//! 5.5/5.6, the Dec 2020 and Aug 2021 jQuery waves, Flash end-of-life).
//!
//! ```
//! use std::sync::Arc;
//! use webvuln_webgen::{Ecosystem, EcosystemConfig, Timeline};
//!
//! let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
//!     seed: 7,
//!     domain_count: 200,
//!     timeline: Timeline::truncated(8),
//! }));
//! let names = eco.domain_names();
//! assert_eq!(names.len(), 200);
//! // The same (domain, week) always renders the same page.
//! assert_eq!(eco.page(&names[0], 3), eco.page(&names[0], 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod ecosystem;
pub mod render;
pub mod rng;
pub mod shares;
pub mod timeline;

pub use domain::{
    Deployment, DomainModel, DomainState, FlashState, GithubScript, Inclusion, ResourceFlags,
};
pub use ecosystem::{Ecosystem, EcosystemConfig, PageOutcome, WeekHandler};
pub use render::{antibot_page, render_page, script_url};
pub use timeline::Timeline;
