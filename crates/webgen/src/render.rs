//! Rendering a [`DomainState`] into the landing-page HTML the crawler
//! downloads.
//!
//! URL shapes follow what the fingerprinting stage (and real Wappalyzer)
//! keys on: version-in-filename for self-hosted files, version-in-path for
//! CDNs, `?ver=` query strings for WordPress, `<meta generator>` for the
//! CMS, and `<object>/<embed>` markup for Flash. Deployments flagged
//! `version_visible = false` render without any version marker — the
//! fingerprint sees the library but not the version, reproducing the
//! "Found < Total" gap of Table 1.

use crate::domain::{Deployment, DomainState, FlashState, GithubScript, Inclusion};
use crate::rng::hash_str;
use webvuln_cvedb::LibraryId;

/// Renders the landing page for `domain` at snapshot `week`.
pub fn render_page(domain: &str, week: usize, state: &DomainState) -> String {
    let mut html = String::with_capacity(4096);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n");
    html.push_str("<meta charset=\"utf-8\">\n");
    if let Some(wp) = &state.wordpress {
        html.push_str(&format!(
            "<meta name=\"generator\" content=\"WordPress {wp}\">\n"
        ));
    }
    html.push_str(&format!("<title>{domain}</title>\n"));
    if state.resources.css {
        let ver = state
            .wordpress
            .as_ref()
            .map(|w| format!("?ver={w}"))
            .unwrap_or_default();
        html.push_str(&format!(
            "<link rel=\"stylesheet\" href=\"/assets/style.css{ver}\">\n"
        ));
    }
    if state.resources.favicon {
        html.push_str("<link rel=\"icon\" href=\"/favicon.ico\">\n");
    }
    if state.resources.xml {
        html.push_str(&format!(
            "<link rel=\"alternate\" type=\"application/rss+xml\" href=\"https://{domain}/feed.xml\">\n"
        ));
    }
    if state.resources.imported_html {
        html.push_str("<link rel=\"stylesheet\" href=\"/theme/compiled.css.php\">\n");
        html.push_str("<script src=\"/inc/loader.js.php\"></script>\n");
    }
    for dep in &state.deployments {
        if dep.inlined {
            html.push_str(&inline_script_tag(dep));
        } else {
            html.push_str(&script_tag(domain, dep));
        }
        html.push('\n');
    }
    for extra in &state.extra_scripts {
        html.push_str(&format!(
            "<script src=\"https://{}{}\" async></script>\n",
            extra.host, extra.path
        ));
    }
    if let Some(gh) = &state.github_script {
        html.push_str(&github_tag(gh));
        html.push('\n');
    }
    html.push_str("</head>\n<body>\n");
    html.push_str(&format!("<h1>Welcome to {domain}</h1>\n"));
    // Filler so real pages clear the 400-byte empty-page threshold.
    for i in 0..3 {
        html.push_str(&format!(
            "<p>Section {i}: weekly edition {week}. Lorem ipsum dolor sit amet, \
             consectetur adipiscing elit, sed do eiusmod tempor incididunt ut \
             labore et dolore magna aliqua.</p>\n"
        ));
    }
    if state.resources.svg {
        html.push_str("<img src=\"/img/logo.svg\" alt=\"logo\">\n");
    }
    if state.resources.axd {
        html.push_str("<script src=\"/WebResource.axd?d=aGVsbG8\"></script>\n");
    }
    if let Some(flash) = &state.flash {
        html.push_str(&flash_markup(flash));
    }
    if state.resources.javascript {
        html.push_str("<script>document.addEventListener('DOMContentLoaded',function(){var x=1;});</script>\n");
    }
    html.push_str("</body>\n</html>\n");
    html
}

/// The small page anti-bot blockers answer with (paper §4.1: "Not allowed
/// to access", served with a 200 status).
pub fn antibot_page() -> String {
    "<html><body>Not allowed to access.</body></html>".to_string()
}

/// File name stem of a library (what appears in URLs).
fn file_stem(lib: LibraryId) -> &'static str {
    // Matches the real projects' distributed file names.
    match lib {
        LibraryId::JQuery => "jquery",
        LibraryId::Bootstrap => "bootstrap",
        LibraryId::JQueryMigrate => "jquery-migrate",
        LibraryId::JQueryUi => "jquery-ui",
        LibraryId::Modernizr => "modernizr",
        LibraryId::JsCookie => "js.cookie",
        LibraryId::Underscore => "underscore",
        LibraryId::Isotope => "isotope.pkgd",
        LibraryId::Popper => "popper",
        LibraryId::MomentJs => "moment",
        LibraryId::RequireJs => "require",
        LibraryId::SwfObject => "swfobject",
        LibraryId::Prototype => "prototype",
        LibraryId::JQueryCookie => "jquery.cookie",
        LibraryId::PolyfillIo => "polyfill",
    }
}

/// cdnjs (and jsdelivr) directory names differ from file stems.
fn cdn_dir(lib: LibraryId) -> &'static str {
    match lib {
        LibraryId::JQuery => "jquery",
        LibraryId::Bootstrap => "twitter-bootstrap",
        LibraryId::JQueryMigrate => "jquery-migrate",
        LibraryId::JQueryUi => "jqueryui",
        LibraryId::Modernizr => "modernizr",
        LibraryId::JsCookie => "js-cookie",
        LibraryId::Underscore => "underscore.js",
        LibraryId::Isotope => "jquery.isotope",
        LibraryId::Popper => "popper.js",
        LibraryId::MomentJs => "moment.js",
        LibraryId::RequireJs => "require.js",
        LibraryId::SwfObject => "swfobject",
        LibraryId::Prototype => "prototype",
        LibraryId::JQueryCookie => "jquery-cookie",
        LibraryId::PolyfillIo => "polyfill",
    }
}

/// Builds the `src` URL for a deployment.
pub fn script_url(domain: &str, dep: &Deployment) -> String {
    let stem = file_stem(dep.library);
    let version = &dep.version;
    match &dep.inclusion {
        Inclusion::Internal => {
            if dep.via_wordpress {
                // WordPress ships versions in the query string.
                let path = match dep.library {
                    LibraryId::JQueryMigrate => "/wp-includes/js/jquery/jquery-migrate.min.js",
                    _ => "/wp-includes/js/jquery/jquery.min.js",
                };
                if dep.version_visible {
                    format!("{path}?ver={version}")
                } else {
                    path.to_string()
                }
            } else if dep.version_visible {
                format!("/assets/js/{stem}-{version}.min.js")
            } else {
                format!("/assets/js/{stem}.min.js")
            }
        }
        Inclusion::External { host, .. } => {
            let path = match host.as_str() {
                "ajax.googleapis.com" => {
                    let dir = match dep.library {
                        LibraryId::JQueryUi => "jqueryui",
                        other => file_stem(other),
                    };
                    format!("/ajax/libs/{dir}/{version}/{stem}.min.js")
                }
                "code.jquery.com" => match dep.library {
                    LibraryId::JQueryUi => format!("/ui/{version}/jquery-ui.min.js"),
                    _ => format!("/{stem}-{version}.min.js"),
                },
                "maxcdn.bootstrapcdn.com" | "stackpath.bootstrapcdn.com" => {
                    format!("/bootstrap/{version}/js/bootstrap.min.js")
                }
                "c0.wp.com" => format!("/p/{}/{version}/{stem}.min.js", cdn_dir(dep.library)),
                "polyfill.io" | "cdn.polyfill.io" => {
                    format!("/v{version}/polyfill.min.js")
                }
                "cdnjs.cloudflare.com" => {
                    format!(
                        "/ajax/libs/{}/{version}/{stem}.min.js",
                        cdn_dir(dep.library)
                    )
                }
                "cdn.jsdelivr.net" => {
                    format!("/npm/{}@{version}/dist/{stem}.min.js", cdn_dir(dep.library))
                }
                _ => {
                    if dep.version_visible {
                        format!("/libs/{stem}/{version}/{stem}.min.js")
                    } else {
                        format!("/libs/{stem}/{stem}.min.js")
                    }
                }
            };
            // A hidden version on a versioned-path CDN makes no sense;
            // hide by switching to an unversioned self-path instead.
            if !dep.version_visible && path.contains(&version.to_string()) {
                return format!("https://static.{domain}/js/{stem}.min.js");
            }
            format!("https://{host}{path}")
        }
    }
}

/// The banner comment a library's distributed file starts with, when the
/// project ships one (what the fingerprint engine's inline patterns key
/// on). `None` for projects without a recognisable banner.
pub fn inline_banner(library: LibraryId, version: &webvuln_version::Version) -> Option<String> {
    Some(match library {
        LibraryId::JQuery => format!("/*! jQuery v{version} | (c) OpenJS Foundation */"),
        LibraryId::JQueryMigrate => format!("/*! jQuery Migrate v{version} */"),
        LibraryId::JQueryUi => format!("/*! jQuery UI v{version} */"),
        LibraryId::Bootstrap => {
            format!("/*! Bootstrap v{version} (https://getbootstrap.com) */")
        }
        LibraryId::Modernizr => format!("/*! Modernizr v{version} (Custom Build) */"),
        LibraryId::Underscore => format!("// Underscore.js {version}"),
        LibraryId::Isotope => format!("/*! Isotope PACKAGED v{version} */"),
        LibraryId::MomentJs => format!("//! moment.js\n//! version : {version}"),
        LibraryId::RequireJs => format!("/** vim: et:ts=4 RequireJS {version} */"),
        LibraryId::SwfObject => format!("/*! SWFObject v{version} */"),
        LibraryId::Prototype => {
            format!("/*  Prototype JavaScript framework, version {version} */")
        }
        _ => return None,
    })
}

/// Whether [`inline_banner`] exists for `library`.
pub fn has_inline_banner(library: LibraryId) -> bool {
    inline_banner(
        library,
        &webvuln_version::Version::parse("1.0").expect("static version"),
    )
    .is_some()
}

/// An inlined library: its banner comment plus a minified-looking stub.
fn inline_script_tag(dep: &Deployment) -> String {
    let banner =
        inline_banner(dep.library, &dep.version).expect("inlined deployments require a banner");
    format!(
        "<script>{banner}\n!function(g){{g.__{}_loaded=true}}(window);</script>",
        dep.library.slug().replace(['.', '-'], "_")
    )
}

fn script_tag(domain: &str, dep: &Deployment) -> String {
    let url = script_url(domain, dep);
    let mut attrs = String::new();
    if dep.integrity {
        attrs.push_str(&format!(
            " integrity=\"sha384-{:016x}{:016x}\"",
            hash_str(&url),
            hash_str(domain)
        ));
    }
    if let Some(co) = &dep.crossorigin {
        if co.is_empty() {
            attrs.push_str(" crossorigin");
        } else {
            attrs.push_str(&format!(" crossorigin=\"{co}\""));
        }
    }
    format!("<script src=\"{url}\"{attrs}></script>")
}

fn github_tag(gh: &GithubScript) -> String {
    let integrity = if gh.integrity {
        format!(" integrity=\"sha384-{:032x}\"", hash_str(&gh.url_path))
    } else {
        String::new()
    };
    format!(
        "<script src=\"https://{}\"{integrity}></script>",
        gh.url_path
    )
}

fn flash_markup(flash: &FlashState) -> String {
    let param = flash
        .allow_script_access
        .as_ref()
        .map(|v| format!("  <param name=\"AllowScriptAccess\" value=\"{v}\">\n"))
        .unwrap_or_default();
    let embed_attr = flash
        .allow_script_access
        .as_ref()
        .map(|v| format!(" allowscriptaccess=\"{v}\""))
        .unwrap_or_default();
    format!(
        "<object classid=\"clsid:D27CDB6E-AE6D-11cf-96B8-444553540000\" width=\"550\" height=\"400\">\n\
         \x20 <param name=\"movie\" value=\"{swf}\">\n{param}\
         \x20 <embed src=\"{swf}\" type=\"application/x-shockwave-flash\"{embed_attr}>\n\
         </object>\n",
        swf = flash.swf_url,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ResourceFlags;
    use webvuln_cvedb::LibraryId;
    use webvuln_version::Version;

    fn dep(lib: LibraryId, version: &str) -> Deployment {
        Deployment {
            library: lib,
            version: Version::parse(version).expect("version"),
            inclusion: Inclusion::Internal,
            integrity: false,
            crossorigin: None,
            via_wordpress: false,
            version_visible: true,
            inlined: false,
        }
    }

    fn base_state() -> DomainState {
        DomainState {
            online: true,
            antibot: false,
            deployments: vec![],
            wordpress: None,
            flash: None,
            github_script: None,
            extra_scripts: vec![],
            resources: ResourceFlags {
                javascript: true,
                css: true,
                favicon: true,
                imported_html: false,
                xml: false,
                svg: false,
                axd: false,
            },
        }
    }

    #[test]
    fn internal_url_carries_version() {
        let d = dep(LibraryId::JQuery, "1.12.4");
        assert_eq!(script_url("a.com", &d), "/assets/js/jquery-1.12.4.min.js");
    }

    #[test]
    fn wordpress_url_uses_query_version() {
        let mut d = dep(LibraryId::JQuery, "3.5.1");
        d.via_wordpress = true;
        assert_eq!(
            script_url("a.com", &d),
            "/wp-includes/js/jquery/jquery.min.js?ver=3.5.1"
        );
    }

    #[test]
    fn cdn_urls_follow_host_conventions() {
        let mut d = dep(LibraryId::JQuery, "3.5.1");
        d.inclusion = Inclusion::External {
            host: "ajax.googleapis.com".into(),
            cdn: true,
        };
        assert_eq!(
            script_url("a.com", &d),
            "https://ajax.googleapis.com/ajax/libs/jquery/3.5.1/jquery.min.js"
        );
        let mut d = dep(LibraryId::Bootstrap, "3.3.7");
        d.inclusion = Inclusion::External {
            host: "maxcdn.bootstrapcdn.com".into(),
            cdn: true,
        };
        assert_eq!(
            script_url("a.com", &d),
            "https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"
        );
        let mut d = dep(LibraryId::MomentJs, "2.18.1");
        d.inclusion = Inclusion::External {
            host: "cdnjs.cloudflare.com".into(),
            cdn: true,
        };
        assert_eq!(
            script_url("a.com", &d),
            "https://cdnjs.cloudflare.com/ajax/libs/moment.js/2.18.1/moment.min.js"
        );
    }

    #[test]
    fn hidden_version_is_really_hidden() {
        let mut d = dep(LibraryId::JQuery, "1.12.4");
        d.version_visible = false;
        assert!(!script_url("a.com", &d).contains("1.12.4"));
        d.inclusion = Inclusion::External {
            host: "ajax.googleapis.com".into(),
            cdn: true,
        };
        let url = script_url("a.com", &d);
        assert!(!url.contains("1.12.4"), "{url}");
    }

    #[test]
    fn page_contains_core_structure_and_clears_threshold() {
        let mut state = base_state();
        state.deployments.push(dep(LibraryId::JQuery, "1.12.4"));
        let page = render_page("news1.example", 10, &state);
        assert!(page.len() >= 400, "{} bytes", page.len());
        assert!(page.contains("<!DOCTYPE html>"));
        assert!(page.contains("jquery-1.12.4.min.js"));
        assert!(page.contains("style.css"));
        assert!(page.contains("favicon.ico"));
    }

    #[test]
    fn wordpress_page_has_generator_meta() {
        let mut state = base_state();
        state.wordpress = Some(Version::parse("5.6").expect("version"));
        let page = render_page("wp.example", 0, &state);
        assert!(page.contains("content=\"WordPress 5.6\""));
        assert!(page.contains("style.css?ver=5.6"));
    }

    #[test]
    fn flash_markup_includes_script_access() {
        let mut state = base_state();
        state.flash = Some(FlashState {
            swf_url: "/media/banner.swf".into(),
            allow_script_access: Some("always".into()),
        });
        let page = render_page("f.example", 0, &state);
        assert!(page.contains("banner.swf"));
        assert!(page.contains("AllowScriptAccess"));
        assert!(page.contains("value=\"always\""));
        assert!(page.contains("<embed"));
    }

    #[test]
    fn sri_attributes_render() {
        let mut state = base_state();
        let mut d = dep(LibraryId::Bootstrap, "4.3.1");
        d.inclusion = Inclusion::External {
            host: "stackpath.bootstrapcdn.com".into(),
            cdn: true,
        };
        d.integrity = true;
        d.crossorigin = Some("anonymous".into());
        state.deployments.push(d);
        let page = render_page("s.example", 0, &state);
        assert!(page.contains("integrity=\"sha384-"));
        assert!(page.contains("crossorigin=\"anonymous\""));
    }

    #[test]
    fn github_script_renders() {
        let mut state = base_state();
        state.github_script = Some(GithubScript {
            url_path: "malsup.github.com/jquery.form.js".into(),
            integrity: false,
        });
        let page = render_page("g.example", 0, &state);
        assert!(page.contains("https://malsup.github.com/jquery.form.js"));
    }

    #[test]
    fn antibot_page_is_under_threshold() {
        assert!(antibot_page().len() < 400);
        assert!(antibot_page().contains("Not allowed"));
    }

    #[test]
    fn inlined_library_renders_banner_not_url() {
        let mut state = base_state();
        let mut d = dep(LibraryId::JQuery, "1.12.4");
        d.inlined = true;
        state.deployments.push(d);
        let page = render_page("i.example", 0, &state);
        assert!(page.contains("/*! jQuery v1.12.4"), "{page}");
        assert!(!page.contains("jquery-1.12.4.min.js"));
    }

    #[test]
    fn banner_coverage_matches_flag() {
        let v = Version::parse("2.0").expect("version");
        for lib in LibraryId::ALL {
            assert_eq!(
                inline_banner(lib, &v).is_some(),
                has_inline_banner(lib),
                "{lib}"
            );
        }
        assert!(has_inline_banner(LibraryId::JQuery));
        assert!(!has_inline_banner(LibraryId::JsCookie));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut state = base_state();
        state.deployments.push(dep(LibraryId::Underscore, "1.8.3"));
        assert_eq!(
            render_page("d.example", 3, &state),
            render_page("d.example", 3, &state)
        );
        assert_ne!(
            render_page("d.example", 3, &state),
            render_page("d.example", 4, &state),
            "week is visible in content"
        );
    }
}
