//! Deterministic random streams.
//!
//! Every stochastic choice in the simulator draws from a [`Pcg32`] stream
//! derived from `(seed, domain, purpose)`. Streams are independent of
//! iteration order and thread scheduling, so the same seed always produces
//! the same web — the property the crawler's determinism tests rely on.

/// A PCG-XSH-RR 32-bit generator (O'Neill 2014).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed and stream selector.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform draw in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        // Lemire's nearly-divisionless method with rejection.
        loop {
            let x = self.next_u32() as u64;
            let m = x * n as u64;
            let low = m as u32;
            if low >= n {
                return (m >> 32) as u32;
            }
            // Rejection zone: recompute threshold only when needed.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Bernoulli draw with probability `p`/1000.
    pub fn permille(&mut self, p: u32) -> bool {
        self.below(1000) < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u32() as f64) / (u32::MAX as f64 + 1.0)
    }

    /// Index into a weighted list; weights of zero are never picked.
    ///
    /// # Panics
    ///
    /// Panics when all weights are zero or the list is empty.
    pub fn pick_weighted_index(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted pick over empty distribution");
        let mut ticket = (self.unit() * total as f64) as u64;
        if ticket >= total {
            ticket = total - 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if ticket < w {
                return i;
            }
            ticket -= w;
        }
        weights.len() - 1
    }

    /// Geometric draw: number of weeks until an event with per-week
    /// probability `1/mean_weeks` fires. Returns at least 1.
    pub fn geometric_weeks(&mut self, mean_weeks: f64) -> usize {
        if mean_weeks <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean_weeks;
        let u = self.unit().max(f64::MIN_POSITIVE);
        let weeks = (u.ln() / (1.0 - p).ln()).ceil();
        (weeks as usize).max(1)
    }
}

/// SplitMix64 step, used to derive stream selectors from strings.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a string into a stream selector.
pub fn hash_str(text: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = splitmix(h);
    }
    h
}

/// Derives an independent stream for `(seed, domain, purpose)`.
pub fn stream(seed: u64, domain: &str, purpose: &str) -> Pcg32 {
    let sel = splitmix(hash_str(domain) ^ splitmix(hash_str(purpose)));
    Pcg32::new(splitmix(seed) ^ sel, sel | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_stream() {
        let mut a = stream(1, "site.example", "profile");
        let mut b = stream(1, "site.example", "profile");
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_differ_by_every_key_component() {
        let base: Vec<u32> = {
            let mut r = stream(1, "a.example", "x");
            (0..8).map(|_| r.next_u32()).collect()
        };
        for (seed, dom, purpose) in [
            (2, "a.example", "x"),
            (1, "b.example", "x"),
            (1, "a.example", "y"),
        ] {
            let mut r = stream(seed, dom, purpose);
            let got: Vec<u32> = (0..8).map(|_| r.next_u32()).collect();
            assert_ne!(base, got, "{seed} {dom} {purpose}");
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Pcg32::new(7, 3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.below(10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn permille_rates() {
        let mut r = Pcg32::new(9, 1);
        let hits = (0..100_000).filter(|_| r.permille(250)).count();
        assert!((24_000..26_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| r.permille(0)));
        assert!((0..1000).all(|_| r.permille(1000)));
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = Pcg32::new(11, 5);
        let weights = [700u32, 200, 100, 0];
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            counts[r.pick_weighted_index(&weights)] += 1;
        }
        assert!((67_000..73_000).contains(&counts[0]), "{counts:?}");
        assert!((18_000..22_000).contains(&counts[1]), "{counts:?}");
        assert!((8_500..11_500).contains(&counts[2]), "{counts:?}");
        assert_eq!(counts[3], 0, "zero weight never picked");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = Pcg32::new(13, 9);
        let n = 50_000;
        let total: usize = (0..n).map(|_| r.geometric_weeks(26.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((24.0..28.0).contains(&mean), "{mean}");
        assert_eq!(r.geometric_weeks(0.5), 1);
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = Pcg32::new(17, 21);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
