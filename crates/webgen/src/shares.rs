//! Distribution targets for the synthetic ecosystem.
//!
//! Every number here is lifted from the paper (Tables 1, 5, 6; Figures 2,
//! 3, 8–11; §5–§8) and expressed in permille so the generator's Bernoulli
//! draws hit the published marginals in expectation. The *dynamics*
//! (updates, WordPress waves, Flash decay) live in the domain model; this
//! module is the static target book.

use webvuln_cvedb::LibraryId;

/// Behavioural model for one library.
#[derive(Debug, Clone)]
pub struct LibraryModel {
    /// Which library.
    pub library: LibraryId,
    /// Target share of (non-WordPress-forced) websites using it, ‰.
    pub usage_permille: u32,
    /// Internal (self-hosted) inclusion share among its users, ‰
    /// (Table 1 "Avg. Int.").
    pub internal_permille: u32,
    /// CDN share among external inclusions, ‰ (Table 1 "Avg. CDN").
    pub cdn_of_external_permille: u32,
    /// CDN host weights (Table 5 top-3 plus a generic tail).
    pub cdn_hosts: &'static [(&'static str, u32)],
    /// Initial version distribution at study start (weights).
    pub initial_versions: &'static [(&'static str, u32)],
}

/// jQuery's initial version mix: 1.12.4 dominant, long 1.x tail, a
/// meaningful 3.x head (the latest branch in March 2018 was 3.3.1).
static JQUERY_VERSIONS: &[(&str, u32)] = &[
    ("1.12.4", 215),
    ("1.11.3", 45),
    ("1.11.1", 35),
    ("1.11.0", 25),
    ("1.10.2", 40),
    ("1.9.1", 35),
    ("1.8.3", 45),
    ("1.8.2", 15),
    ("1.7.2", 30),
    ("1.7.1", 25),
    ("1.7", 10),
    ("1.6.2", 10),
    ("1.5.2", 5),
    ("1.4.2", 15),
    ("1.12.0", 10),
    ("1.12.1", 8),
    ("2.2.4", 50),
    ("2.2.3", 12),
    ("2.1.4", 35),
    ("2.1.1", 10),
    ("2.0.3", 10),
    ("3.0.0", 15),
    ("3.1.1", 35),
    ("3.2.1", 80),
    ("3.3.1", 90),
];

static BOOTSTRAP_VERSIONS: &[(&str, u32)] = &[
    ("3.3.7", 360),
    ("3.3.6", 80),
    ("3.3.5", 60),
    ("3.3.4", 30),
    ("3.3.2", 25),
    ("3.2.0", 50),
    ("3.1.1", 45),
    ("3.0.3", 25),
    ("2.3.2", 60),
    ("2.3.1", 20),
    ("2.2.2", 15),
    ("4.0.0", 230),
];

static MIGRATE_VERSIONS: &[(&str, u32)] = &[
    ("1.4.1", 550),
    ("1.4.0", 80),
    ("1.2.1", 120),
    ("1.1.1", 40),
    ("1.0.0", 30),
    ("3.0.0", 130),
    ("3.0.1", 50),
];

static JQUERY_UI_VERSIONS: &[(&str, u32)] = &[
    ("1.12.1", 240),
    ("1.12.0", 60),
    ("1.11.4", 170),
    ("1.11.3", 60),
    ("1.11.2", 40),
    ("1.10.4", 130),
    ("1.10.3", 90),
    ("1.10.2", 40),
    ("1.9.2", 60),
    ("1.8.24", 50),
    ("1.8.16", 40),
    ("1.7.2", 20),
];

static MODERNIZR_VERSIONS: &[(&str, u32)] = &[
    ("2.6.2", 280),
    ("2.8.3", 230),
    ("2.7.0", 90),
    ("2.5.3", 60),
    ("2.0.0", 30),
    ("3.0.0", 70),
    ("3.3.1", 90),
    ("3.5.0", 100),
    ("3.6.0", 50),
];

static JS_COOKIE_VERSIONS: &[(&str, u32)] = &[
    ("2.1.4", 780),
    ("2.1.3", 60),
    ("2.1.2", 40),
    ("2.1.0", 30),
    ("2.0.0", 20),
    ("2.2.0", 70),
];

static UNDERSCORE_VERSIONS: &[(&str, u32)] = &[
    ("1.8.3", 420),
    ("1.8.2", 60),
    ("1.7.0", 100),
    ("1.6.0", 90),
    ("1.5.2", 70),
    ("1.4.4", 90),
    ("1.3.2", 80),
    ("1.0.0", 30),
];

static ISOTOPE_VERSIONS: &[(&str, u32)] = &[
    ("3.0.4", 300),
    ("3.0.3", 80),
    ("3.0.2", 60),
    ("3.0.1", 50),
    ("3.0.0", 60),
    ("2.2.2", 150),
    ("2.1.0", 80),
    ("2.0.0", 70),
    ("1.5.26", 60),
    ("3.0.5", 90),
];

// Popper's paper-dominant 1.14.3 shipped May 2018, two months into the
// study; sites reach it through the update model rather than the initial
// mix.
static POPPER_VERSIONS: &[(&str, u32)] = &[("1.12.9", 820), ("1.0.0", 180)];

static MOMENT_VERSIONS: &[(&str, u32)] = &[
    ("2.18.1", 180),
    ("2.17.1", 90),
    ("2.15.2", 60),
    ("2.13.0", 60),
    ("2.11.2", 50),
    ("2.11.0", 30),
    ("2.10.6", 70),
    ("2.9.0", 50),
    ("2.8.4", 40),
    ("2.8.1", 40),
    ("2.5.1", 30),
    ("2.0.0", 20),
    ("2.19.3", 90),
    ("2.20.1", 120),
];

// RequireJS 2.3.6 (the paper-dominant version) shipped Aug 2018; sites
// reach it via the update model.
static REQUIREJS_VERSIONS: &[(&str, u32)] = &[
    ("2.3.5", 330),
    ("2.3.4", 140),
    ("2.3.2", 100),
    ("2.2.0", 120),
    ("2.1.22", 170),
    ("2.1.0", 95),
    ("2.0.0", 45),
];

static SWFOBJECT_VERSIONS: &[(&str, u32)] = &[("2.2", 700), ("2.1", 200), ("2.0", 100)];

static PROTOTYPE_VERSIONS: &[(&str, u32)] = &[
    ("1.7.1", 430),
    ("1.7.0", 120),
    ("1.7.2", 90),
    ("1.7.3", 80),
    ("1.6.1", 150),
    ("1.6.0.3", 60),
    ("1.6.0.1", 40),
    ("1.5.1", 30),
];

static JQUERY_COOKIE_VERSIONS: &[(&str, u32)] = &[
    ("1.4.1", 640),
    ("1.4.0", 120),
    ("1.3.1", 110),
    ("1.3.0", 60),
    ("1.2", 40),
    ("1.1", 30),
];

// Polyfill.io v3 launched Feb 2019; the dominant-v3 state of Table 1 is
// reached through updates.
static POLYFILL_VERSIONS: &[(&str, u32)] = &[("2", 830), ("1", 170)];

/// Generic CDN tail used when a library's Table 5 row doesn't cover the
/// draw.
const GENERIC_TAIL: (&str, u32) = ("cdn.jsdelivr.net", 100);

static JQUERY_CDNS: &[(&str, u32)] = &[
    ("ajax.googleapis.com", 600),
    ("code.jquery.com", 230),
    ("cdnjs.cloudflare.com", 160),
    GENERIC_TAIL,
];

static MIGRATE_CDNS: &[(&str, u32)] = &[
    ("c0.wp.com", 760),
    ("cdnjs.cloudflare.com", 160),
    ("secureservercdn.net", 80),
    GENERIC_TAIL,
];

static BOOTSTRAP_CDNS: &[(&str, u32)] = &[
    ("maxcdn.bootstrapcdn.com", 630),
    ("widget.trustpilot.com", 190),
    ("stackpath.bootstrapcdn.com", 180),
    GENERIC_TAIL,
];

static JQUERY_UI_CDNS: &[(&str, u32)] = &[
    ("ajax.googleapis.com", 590),
    ("code.jquery.com", 360),
    ("cdnjs.cloudflare.com", 50),
    GENERIC_TAIL,
];

static MODERNIZR_CDNS: &[(&str, u32)] = &[
    ("cdnjs.cloudflare.com", 590),
    ("cdn.shopify.com", 390),
    ("cdn.prestosports.com", 20),
    GENERIC_TAIL,
];

static JS_COOKIE_CDNS: &[(&str, u32)] = &[
    ("cdn.jsdelivr.net", 470),
    ("c0.wp.com", 270),
    ("cdnjs.cloudflare.com", 260),
];

static UNDERSCORE_CDNS: &[(&str, u32)] = &[
    ("c0.wp.com", 580),
    ("cdnjs.cloudflare.com", 380),
    ("secureservercdn.net", 40),
    GENERIC_TAIL,
];

static ISOTOPE_CDNS: &[(&str, u32)] = &[
    ("secureservercdn.net", 530),
    ("cdn.shopify.com", 340),
    ("cdn.jsdelivr.net", 130),
];

static POPPER_CDNS: &[(&str, u32)] = &[
    ("cdnjs.cloudflare.com", 870),
    ("cdn.jsdelivr.net", 100),
    ("unpkg.com", 30),
];

static MOMENT_CDNS: &[(&str, u32)] = &[
    ("cdnjs.cloudflare.com", 870),
    ("cdn.jsdelivr.net", 100),
    ("momentjs.com", 30),
];

static REQUIREJS_CDNS: &[(&str, u32)] = &[
    ("cdnjs.cloudflare.com", 700),
    ("cdn.jsdelivr.net", 200),
    ("requirejs.org", 100),
];

static SWFOBJECT_CDNS: &[(&str, u32)] = &[
    ("ajax.googleapis.com", 890),
    ("cdnjs.cloudflare.com", 60),
    ("s0.wp.com", 50),
];

static PROTOTYPE_CDNS: &[(&str, u32)] = &[
    ("ajax.googleapis.com", 820),
    ("strato-editor.com", 110),
    ("cdnjs.cloudflare.com", 70),
];

static JQUERY_COOKIE_CDNS: &[(&str, u32)] = &[
    ("cdnjs.cloudflare.com", 870),
    ("cdn.shopify.com", 120),
    ("c0.wp.com", 10),
];

static POLYFILL_CDNS: &[(&str, u32)] = &[
    ("polyfill.io", 560),
    ("cdn.polyfill.io", 390),
    ("static.parastorage.com", 50),
];

/// Usage shares below are the *organic* (non-WordPress) adoption targets.
/// WordPress forces jQuery and usually jQuery-Migrate onto its 26.9% of
/// sites, so the organic jQuery share is chosen such that the combined
/// average lands on Table 1's 64.0% (and 20.8% for Migrate).
pub fn library_models() -> Vec<LibraryModel> {
    use LibraryId::*;
    let m = |library,
             usage_permille,
             internal_permille,
             cdn_of_external_permille,
             cdn_hosts,
             initial_versions| LibraryModel {
        library,
        usage_permille,
        internal_permille,
        cdn_of_external_permille,
        cdn_hosts,
        initial_versions,
    };
    vec![
        // 26.9% of sites are WordPress and all carry jQuery; organic
        // adoption of ~50.8% among the remaining 73.1% gives ~64% overall.
        m(JQuery, 508, 592, 961, JQUERY_CDNS, JQUERY_VERSIONS),
        m(Bootstrap, 215, 716, 707, BOOTSTRAP_CDNS, BOOTSTRAP_VERSIONS),
        // Organic Migrate (outside WordPress's bundled copy): ~2%.
        m(JQueryMigrate, 20, 884, 426, MIGRATE_CDNS, MIGRATE_VERSIONS),
        m(JQueryUi, 122, 497, 919, JQUERY_UI_CDNS, JQUERY_UI_VERSIONS),
        m(Modernizr, 95, 781, 682, MODERNIZR_CDNS, MODERNIZR_VERSIONS),
        m(JsCookie, 33, 805, 865, JS_COOKIE_CDNS, JS_COOKIE_VERSIONS),
        m(
            Underscore,
            25,
            832,
            497,
            UNDERSCORE_CDNS,
            UNDERSCORE_VERSIONS,
        ),
        m(Isotope, 18, 908, 246, ISOTOPE_CDNS, ISOTOPE_VERSIONS),
        m(Popper, 17, 469, 920, POPPER_CDNS, POPPER_VERSIONS),
        m(MomentJs, 16, 704, 716, MOMENT_CDNS, MOMENT_VERSIONS),
        m(RequireJs, 16, 648, 281, REQUIREJS_CDNS, REQUIREJS_VERSIONS),
        m(SwfObject, 13, 742, 633, SWFOBJECT_CDNS, SWFOBJECT_VERSIONS),
        m(Prototype, 10, 812, 579, PROTOTYPE_CDNS, PROTOTYPE_VERSIONS),
        m(
            JQueryCookie,
            10,
            633,
            865,
            JQUERY_COOKIE_CDNS,
            JQUERY_COOKIE_VERSIONS,
        ),
        m(PolyfillIo, 9, 145, 378, POLYFILL_CDNS, POLYFILL_VERSIONS),
    ]
}

/// Share of WordPress sites (Figure 9: 26.9%).
pub const WORDPRESS_PERMILLE: u32 = 269;

/// Resource-type usage targets (Figure 2(b)), ‰ of collected sites.
#[derive(Debug, Clone, Copy)]
pub struct ResourceTargets {
    /// Sites with any JavaScript (94.7%).
    pub javascript: u32,
    /// CSS (88.4%).
    pub css: u32,
    /// Favicon (55.0%).
    pub favicon: u32,
    /// Imported HTML — `.php` generated resources (31.8%).
    pub imported_html: u32,
    /// XML (25.6%).
    pub xml: u32,
    /// SVG (≈1.5%).
    pub svg: u32,
    /// AXD (≈0.5%).
    pub axd: u32,
}

impl ResourceTargets {
    /// The paper's Figure 2(b) values.
    pub fn paper() -> ResourceTargets {
        ResourceTargets {
            javascript: 947,
            css: 884,
            favicon: 550,
            imported_html: 318,
            xml: 256,
            svg: 15,
            axd: 5,
        }
    }
}

/// Share of JavaScript-using sites that use recognisable libraries
/// (§5: 97.04%).
pub const LIBRARY_OF_JS_PERMILLE: u32 = 970;

/// GitHub-hosted library sources (Table 6): weight-ordered repositories.
pub static GITHUB_HOSTS: &[(&str, u32)] = &[
    ("partnercoll.github.io/actualize.js", 113),
    (
        "blueimp.github.io/jQuery-File-Upload/js/vendor/jquery.ui.widget.js",
        90,
    ),
    ("malsup.github.com/jquery.form.js", 80),
    ("afarkas.github.io/lazysizes/lazysizes.min.js", 75),
    ("hammerjs.github.io/dist/hammer.min.js", 60),
    ("kodir2.github.io/actualize.js", 55),
    (
        "gitcdn.github.io/bootstrap-toggle/js/bootstrap-toggle.min.js",
        50,
    ),
    (
        "owlcarousel2.github.io/OwlCarousel2/dist/owl.carousel.js",
        50,
    ),
    ("weblion777.github.io/hdvb.js", 45),
    ("radioafricagroup.github.io/js/cookiestrip.min.js", 40),
    ("kenwheeler.github.io/slick/slick.js", 40),
    (
        "malihu.github.io/custom-scrollbar/jquery.mCustomScrollbar.concat.min.js",
        35,
    ),
    ("klevron.github.io/threejs/OrbitControls.js", 30),
    (
        "jonathantneal.github.io/svg4everybody/svg4everybody.min.js",
        30,
    ),
    (
        "hayageek.github.io/jQuery-Upload-File/jquery.uploadfile.min.js",
        25,
    ),
];

/// Share of sites loading a library from a GitHub host (§6.5: an average
/// of 1,670 of 782,300 collected sites ≈ 2.1‰).
pub const GITHUB_HOSTED_PERMILLE: u32 = 2;

/// Of GitHub-hosted inclusions, the share carrying `integrity` (0.6%).
pub const GITHUB_SRI_PERMILLE: u32 = 6;

/// Probability that an external library deployment carries `integrity`
/// under the site-wide policy draw (Figure 10's protected minority).
pub const FULL_SRI_PERMILLE: u32 = 6;

/// Probability that an external library deployment carries `integrity`
/// opportunistically (copied from a Bootstrap-style snippet).
pub const PARTIAL_SRI_PERMILLE: u32 = 90;

/// Generic third-party scripts (analytics, tag managers, social SDKs).
/// Practically never carry `integrity`, which is why Figure 10's
/// "no unprotected external" population stays at 0.3% even on sites that
/// protect their libraries.
pub static EXTRA_SCRIPT_HOSTS: &[(&str, &str, u32)] = &[
    ("www.google-analytics.com", "/analytics.js", 380),
    ("www.googletagmanager.com", "/gtm.js?id=GTM-XYZ", 250),
    ("connect.facebook.net", "/en_US/fbevents.js", 140),
    ("static.doubleclick.net", "/instream/ad_status.js", 90),
    ("cdn.ampproject.org", "/v0.js", 70),
    ("platform.twitter.com", "/widgets.js", 70),
];

/// Share of sites embedding at least one generic third-party script.
pub const EXTRA_SCRIPT_PERMILLE: u32 = 700;

/// `crossorigin` values among scripts that carry `integrity` (§6.5:
/// 97.1% anonymous, 1.9% use-credentials, remainder absent).
pub static CROSSORIGIN_WEIGHTS: &[(&str, u32)] =
    &[("anonymous", 971), ("use-credentials", 19), ("", 10)];

#[cfg(test)]
mod tests {
    use super::*;
    use webvuln_cvedb::{catalog, Date};
    use webvuln_version::Version;

    #[test]
    fn models_cover_all_fifteen_libraries() {
        let models = library_models();
        assert_eq!(models.len(), 15);
        for lib in LibraryId::ALL {
            assert!(models.iter().any(|m| m.library == lib), "{lib}");
        }
    }

    #[test]
    fn initial_versions_exist_in_catalogs_and_predate_study() {
        let start = Date::new(2018, 3, 5);
        for model in library_models() {
            let cat = catalog(model.library);
            for (v, w) in model.initial_versions {
                assert!(*w > 0, "{}: zero weight {v}", model.library);
                let version =
                    Version::parse(v).unwrap_or_else(|e| panic!("{}: {e}", model.library));
                let date = cat
                    .release_date(&version)
                    .unwrap_or_else(|| panic!("{} {v} missing from catalog", model.library));
                assert!(
                    date <= start,
                    "{} {v} released {date}, after study start",
                    model.library
                );
            }
        }
    }

    #[test]
    fn combined_jquery_share_targets_table1() {
        // organic + WordPress-forced = 0.508 * 0.731 + 0.269 ≈ 0.640.
        let models = library_models();
        let jq = models
            .iter()
            .find(|m| m.library == LibraryId::JQuery)
            .expect("jQuery model");
        let combined = jq.usage_permille as f64 / 1000.0 * (1.0 - 0.269) + 0.269;
        assert!((0.63..0.65).contains(&combined), "{combined}");
    }

    #[test]
    fn version_weights_are_plausible_distributions() {
        for model in library_models() {
            let total: u32 = model.initial_versions.iter().map(|(_, w)| w).sum();
            assert!((900..=1100).contains(&total), "{}: {total}", model.library);
        }
    }

    #[test]
    fn cdn_hosts_are_nonempty_with_positive_weights() {
        for model in library_models() {
            assert!(!model.cdn_hosts.is_empty(), "{}", model.library);
            assert!(model.cdn_hosts.iter().all(|(h, w)| !h.is_empty() && *w > 0));
        }
    }

    #[test]
    fn crossorigin_weights_follow_paper() {
        let total: u32 = CROSSORIGIN_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 1000);
        assert_eq!(CROSSORIGIN_WEIGHTS[0].0, "anonymous");
    }
}
