//! The study timeline: weekly snapshots from March 2018 to February 2022.
//!
//! The paper collected 207 weekly snapshots and pruned 6 for network
//! issues, analysing 201. The simulator models the 201 analysed weeks
//! directly (pruned weeks never reach the analysis anyway).

use serde::{Deserialize, Serialize};
use webvuln_cvedb::Date;

/// Weekly snapshot timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Date of week 0's snapshot.
    pub start: Date,
    /// Number of weekly snapshots.
    pub weeks: usize,
}

impl Timeline {
    /// The paper's timeline: 201 weeks starting Monday, March 5, 2018.
    pub fn paper() -> Timeline {
        Timeline {
            start: Date::new(2018, 3, 5),
            weeks: 201,
        }
    }

    /// A shortened timeline with the same start (for fast tests). The
    /// weekly cadence is preserved; only the horizon shrinks.
    pub fn truncated(weeks: usize) -> Timeline {
        Timeline {
            start: Date::new(2018, 3, 5),
            weeks,
        }
    }

    /// Snapshot date of week `w`.
    pub fn date_of(&self, week: usize) -> Date {
        self.start.add_days(7 * week as i32)
    }

    /// The last snapshot's date.
    pub fn end(&self) -> Date {
        self.date_of(self.weeks.saturating_sub(1))
    }

    /// The snapshot week covering `date`: the first week whose snapshot
    /// date is on or after `date`. Returns `None` when `date` falls after
    /// the last snapshot.
    pub fn week_of(&self, date: Date) -> Option<usize> {
        if date <= self.start {
            return Some(0);
        }
        let days = date.days_since(self.start);
        let week = (days as usize).div_ceil(7);
        if week < self.weeks {
            Some(week)
        } else {
            None
        }
    }

    /// Iterator over `(week, date)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Date)> + '_ {
        (0..self.weeks).map(move |w| (w, self.date_of(w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timeline_spans_to_early_2022() {
        let t = Timeline::paper();
        assert_eq!(t.date_of(0), Date::new(2018, 3, 5));
        let end = t.end();
        assert_eq!(end.year(), 2022);
        assert_eq!(end.month(), 1, "201 weeks lands in late Jan 2022");
    }

    #[test]
    fn week_of_round_trips() {
        let t = Timeline::paper();
        for w in [0, 1, 57, 200] {
            assert_eq!(t.week_of(t.date_of(w)), Some(w));
        }
        // Mid-week dates round up to the next snapshot.
        assert_eq!(t.week_of(t.date_of(5).add_days(3)), Some(6));
        assert_eq!(t.week_of(Date::new(2010, 1, 1)), Some(0));
        assert!(t.week_of(Date::new(2030, 1, 1)).is_none());
    }

    #[test]
    fn key_event_dates_are_inside_the_window() {
        let t = Timeline::paper();
        // jQuery 3.5.0 release, WP 5.5 / 5.6, Flash EOL all fall inside.
        for date in [
            Date::new(2020, 4, 10),
            Date::new(2020, 8, 11),
            Date::new(2020, 12, 8),
            Date::new(2021, 1, 1),
            Date::new(2021, 3, 2),
        ] {
            assert!(t.week_of(date).is_some(), "{date}");
        }
    }

    #[test]
    fn iter_yields_every_week() {
        let t = Timeline::truncated(10);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[9].1, t.end());
    }
}
