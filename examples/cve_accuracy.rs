//! The §6.4 Version Validation Experiment, standalone: sweep every
//! released version of every library through its PoC exploit and print a
//! Figure 4/13-style comparison of claimed vs measured ranges.
//!
//! ```sh
//! cargo run --release --example cve_accuracy
//! ```

use webvuln::cvedb::Accuracy;
use webvuln::poclab::{Lab, PocResult};

fn main() {
    let lab = Lab::new();
    let reports = lab.validate_all();

    println!(
        "Version Validation Experiment — {} reports\n",
        reports.len()
    );
    let mut understated = 0;
    let mut overstated = 0;
    let mut mixed = 0;

    for report in &reports {
        let record = lab.db().record(&report.id).expect("record exists");
        println!(
            "{} ({}) — claimed: {}",
            report.id,
            report.library.name(),
            record.claimed
        );
        if report.unavailable {
            println!("  affected build no longer available; not measurable\n");
            continue;
        }
        // Figure 4-style stripe line: one cell per released version.
        let stripe: String = report
            .per_version
            .iter()
            .map(|(version, outcome)| {
                let claimed = record.claims(version);
                match (outcome, claimed) {
                    (PocResult::Exploited, true) => '#',  // disclosed vulnerable
                    (PocResult::Exploited, false) => 'U', // understated
                    (PocResult::Safe, true) => 'O',       // overstated
                    (PocResult::Safe, false) => '.',      // agreed safe
                    (PocResult::Unavailable, _) => '?',
                }
            })
            .collect();
        println!("  sweep ({} envs): {stripe}", report.environments());
        match report.accuracy {
            Accuracy::Accurate => println!("  -> accurate\n"),
            Accuracy::Understated => {
                understated += 1;
                println!(
                    "  -> UNDERSTATED: {} hidden-vulnerable versions (first: {})\n",
                    report.understated.len(),
                    report.understated.first().expect("non-empty")
                );
            }
            Accuracy::Overstated => {
                overstated += 1;
                println!(
                    "  -> OVERSTATED: {} safe-but-claimed versions (first: {})\n",
                    report.overstated.len(),
                    report.overstated.first().expect("non-empty")
                );
            }
            Accuracy::Mixed => {
                mixed += 1;
                println!(
                    "  -> MIXED: {} hidden-vulnerable, {} safe-but-claimed\n",
                    report.understated.len(),
                    report.overstated.len()
                );
            }
        }
    }

    println!("legend: # disclosed-vulnerable  U understated  O overstated  . agreed-safe");
    println!(
        "summary: {} incorrect reports ({understated} understated, {overstated} overstated, {mixed} mixed)",
        understated + overstated + mixed,
    );
    println!("paper:   13 incorrect CVE reports (5 understated, 8 overstated)");
}
