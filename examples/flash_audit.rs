//! §8 standalone: the Adobe Flash end-of-life audit.
//!
//! ```sh
//! cargo run --release --example flash_audit -- [domains]
//! ```
//!
//! Tracks Flash usage across the four-year timeline, the post-EOL zombie
//! population, the `AllowScriptAccess` hygiene trend, and the browser
//! ecosystem that keeps Flash alive (Table 3).

use std::sync::Arc;
use webvuln::analysis::dataset::Collector;
use webvuln::analysis::flash::{flash_eol, flash_usage, script_access_audit};
use webvuln::core::render_table3;
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

fn main() {
    let domains: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4_000);
    eprintln!("collecting {domains} domains x 201 weeks …");
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 1_337,
        domain_count: domains,
        timeline: Timeline::paper(),
    }));
    let data = Collector::new().run(&eco).expect("collection").dataset;

    let usage = flash_usage(&data);
    println!("Figure 8 — Flash usage over the study");
    let eol = flash_eol();
    for (i, &(date, all, top10k, top1k)) in usage.points.iter().enumerate() {
        if i % 13 == 0 {
            let marker = if date >= eol { " (post-EOL)" } else { "" };
            println!("  {date}: {all:>5} sites (top-tiers: {top10k} / {top1k}){marker}");
        }
    }
    println!(
        "  average {:.0} sites; after EOL {:.0} sites still serve Flash\n",
        usage.average, usage.average_after_eol
    );

    let audit = script_access_audit(&data);
    println!("Figure 11 — AllowScriptAccess audit");
    println!(
        "  insecure 'always' share: {:.1}% early -> {:.1}% late (avg {:.1}%)",
        100.0 * audit.early_always_share,
        100.0 * audit.late_always_share,
        100.0 * audit.average_always_share
    );
    println!();
    println!("{}", render_table3());
    println!("paper: ~3,553 sites still used Flash after EOL; 'always' grew ~21% -> ~30%");
}
