//! Full study: regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release --example full_study -- [domains] [weeks] [seed]
//! ```
//!
//! Defaults: 2,000 domains over the full 201-week timeline. Prints the
//! complete text report (Tables 1–6, §6.4 validation, headline findings)
//! and writes figure series as CSV files under `target/figures/`.

use std::fs;
use std::path::Path;
use webvuln::core::{full_report, series_to_csv, Pipeline, StudyConfig, StudyResults};
use webvuln::webgen::Timeline;

fn main() {
    let mut args = std::env::args().skip(1);
    let domains: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let weeks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(201);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    eprintln!("running study: {domains} domains x {weeks} weeks (seed {seed}) …");
    let start = std::time::Instant::now();
    let results = Pipeline::new(StudyConfig::default())
        .seed(seed)
        .domains(domains)
        .timeline(Timeline::truncated(weeks))
        .run()
        .expect("study");
    eprintln!("collected + analyzed in {:.1?}", start.elapsed());

    println!("{}", full_report(&results));

    let dir = Path::new("target/figures");
    if fs::create_dir_all(dir).is_ok() {
        write_figures(dir, &results);
        eprintln!("figure series written to {}", dir.display());
    }
}

fn write_figures(dir: &Path, results: &StudyResults) {
    let w = |name: &str, csv: String| {
        let _ = fs::write(dir.join(name), csv);
    };
    w(
        "fig2a_collection.csv",
        series_to_csv(
            "collected",
            results.collection.points.iter().map(|&(d, c)| (d, c)),
        ),
    );
    for usage in &results.resources {
        w(
            &format!("fig2b_{}.csv", usage.resource.name().to_lowercase()),
            series_to_csv("share", usage.weekly_share.iter().map(|&(d, s)| (d, s))),
        );
    }
    for trend in &results.trends {
        w(
            &format!("fig3_{}.csv", trend.library.slug().replace('.', "_")),
            series_to_csv("share", trend.points.iter().map(|&(d, s)| (d, s))),
        );
    }
    w(
        "fig9_wordpress.csv",
        series_to_csv(
            "wordpress_sites",
            results.wordpress.points.iter().map(|&(d, _, wp)| (d, wp)),
        ),
    );
    w(
        "fig8_flash.csv",
        series_to_csv(
            "flash_sites",
            results.flash.points.iter().map(|&(d, all, _, _)| (d, all)),
        ),
    );
    w(
        "fig10_sri.csv",
        series_to_csv(
            "unprotected_sites",
            results.sri.points.iter().map(|&(d, _, un)| (d, un)),
        ),
    );
    w(
        "fig11_scriptaccess.csv",
        series_to_csv(
            "always_sites",
            results
                .script_access
                .points
                .iter()
                .map(|&(d, _, _, a)| (d, a)),
        ),
    );
    // Figure 5-style per-CVE impact series for the three showcased CVEs.
    for id in ["CVE-2020-7656", "CVE-2014-6071", "CVE-2020-11022"] {
        if let Some(impact) = results.cve_impacts.iter().find(|i| i.id == id) {
            w(
                &format!("fig5_{}_claimed.csv", id.to_lowercase()),
                series_to_csv("sites", impact.claimed_sites.iter().map(|&(d, c)| (d, c))),
            );
            w(
                &format!("fig5_{}_true.csv", id.to_lowercase()),
                series_to_csv("sites", impact.true_sites.iter().map(|&(d, c)| (d, c))),
            );
        }
    }
    // Figure 12 CDFs.
    let cdf_csv = |dist: &webvuln::analysis::vuln::VulnCountDistribution| {
        let mut out = String::from("vulns,cdf\n");
        for &(x, f) in &dist.cdf.points {
            out.push_str(&format!("{x},{f}\n"));
        }
        out
    };
    w("fig12_claimed.csv", cdf_csv(&results.fig12_claimed));
    w("fig12_tvv.csv", cdf_csv(&results.fig12_tvv));
}
