//! Live crawl over real TCP: serve one snapshot week of the synthetic web
//! from a local HTTP server and crawl it through actual sockets — proving
//! the stack speaks real HTTP/1.1, not just the in-memory transport.
//!
//! ```sh
//! cargo run --release --example live_crawl
//! ```

use std::sync::Arc;
use webvuln::cvedb::{Basis, VulnDb};
use webvuln::fingerprint::Engine;
use webvuln::net::{CrawlOptions, TcpConnector, TcpServer};
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

fn main() {
    // A snapshot week in late 2020 (after the jQuery 3.5 patches).
    let week = 140;
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 7,
        domain_count: 400,
        timeline: Timeline::paper(),
    }));

    let mut server = TcpServer::start(Arc::new(eco.handler(week))).expect("bind local server");
    println!("serving snapshot week {week} on http://{}", server.addr());

    // The fixed connector plays DNS: every synthetic host resolves to the
    // local server, which routes on the Host header.
    let connector = TcpConnector::fixed(server.addr());
    let names = eco.domain_names();
    let started = std::time::Instant::now();
    let snapshot = CrawlOptions::new().threads(16).run(&names, &connector);
    let elapsed = started.elapsed();

    let usable = snapshot.values().filter(|r| r.is_usable(400)).count();
    println!(
        "crawled {} domains over TCP in {elapsed:.2?}: {usable} usable pages",
        names.len()
    );

    // Fingerprint and count vulnerable sites in this one snapshot.
    let engine = Engine::new();
    let db = VulnDb::builtin();
    let mut vulnerable = 0usize;
    let mut jquery_versions = std::collections::BTreeMap::<String, usize>::new();
    for record in snapshot.values().filter(|r| r.is_usable(400)) {
        let analysis = engine.analyze(&record.body, &record.domain);
        let vuln = analysis.detections.iter().any(|d| {
            d.version
                .as_ref()
                .is_some_and(|v| db.is_vulnerable(d.library, v, Basis::CveClaimed))
        });
        if vuln {
            vulnerable += 1;
        }
        if let Some(det) = analysis.library(webvuln::cvedb::LibraryId::JQuery) {
            if let Some(v) = &det.version {
                *jquery_versions.entry(v.to_string()).or_default() += 1;
            }
        }
    }
    println!(
        "vulnerable sites this week: {vulnerable} / {usable} ({:.1}%)",
        100.0 * vulnerable as f64 / usable.max(1) as f64
    );
    let mut top: Vec<_> = jquery_versions.into_iter().collect();
    top.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("top jQuery versions in the wild:");
    for (version, count) in top.into_iter().take(5) {
        println!("  v{version:<8} {count} sites");
    }

    server.shutdown();
}
