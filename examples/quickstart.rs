//! Quickstart: run a reduced study end-to-end and print the headline
//! findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline is the paper's §4–§8: generate a synthetic Alexa-style
//! web, crawl every weekly snapshot over the in-process HTTP stack,
//! fingerprint each landing page, join against the CVE corpus, and
//! compute the study's headline numbers.

use webvuln::core::{render_headlines, Pipeline, StudyConfig};
use webvuln::webgen::Timeline;

fn main() {
    let pipeline = Pipeline::new(StudyConfig::quick())
        .seed(42)
        .domains(1_000)
        .timeline(Timeline::paper());
    let config = pipeline.build();
    eprintln!(
        "crawling {} domains x {} weekly snapshots …",
        config.domain_count, config.timeline.weeks
    );
    let results = pipeline.run().expect("study");
    println!("{}", render_headlines(&results));
    println!(
        "paper reference: 41.2% vulnerable (CVE), 43.2% (TVV); 531.2-day delay (CVE), \
         701.2 (TVV); 26.9% WordPress; 99.7% unprotected externals"
    );
}
