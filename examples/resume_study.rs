//! Checkpointed study with crash recovery: collect through the snapshot
//! store, kill the run mid-collection (simulated by tearing the store
//! file), then resume — only the missing weeks are recrawled and the
//! final report is identical to an uninterrupted run.
//!
//! ```sh
//! cargo run --release --example resume_study -- [domains] [weeks]
//! ```

use webvuln::core::{full_report, Pipeline, StudyConfig, Telemetry};
use webvuln::webgen::Timeline;
use webvuln::AnyReader;

fn main() {
    let mut args = std::env::args().skip(1);
    let domains: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let weeks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let config = StudyConfig {
        seed: 42,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
        ..StudyConfig::default()
    };
    let store = std::env::temp_dir().join(format!("resume-study-{}.wvstore", std::process::id()));

    // Pass 1: a full checkpointed run — every week committed as it lands.
    eprintln!(
        "pass 1: {domains} domains x {weeks} weeks, store at {} …",
        store.display()
    );
    let telemetry = Telemetry::new().with_stderr_progress();
    let full = Pipeline::new(config)
        .telemetry(&telemetry)
        .checkpoint(&store)
        .run()
        .expect("pass 1");

    // Simulate a crash: tear the store at 40% of its length.
    let bytes = std::fs::read(&store).expect("read store");
    let cut = bytes.len() * 4 / 10;
    std::fs::write(&store, &bytes[..cut]).expect("tear store");
    let torn = AnyReader::open(&store).expect("open torn store");
    eprintln!(
        "\nsimulated kill: store cut to {cut} of {} bytes — {} of {weeks} weeks survive, {} torn bytes\n",
        bytes.len(),
        torn.weeks_committed(),
        torn.torn_bytes(),
    );

    // Pass 2: resume. Intact weeks restore from disk; the rest recrawl.
    let telemetry = Telemetry::new().with_stderr_progress();
    let resumed = Pipeline::new(config)
        .telemetry(&telemetry)
        .checkpoint(&store)
        .resume(true)
        .run()
        .expect("pass 2");

    let same = full_report(&full).split("Run telemetry").next()
        == full_report(&resumed).split("Run telemetry").next();
    eprintln!("\nanalysis identical after resume: {same}");
    let healed = std::fs::read(&store).expect("read healed store");
    eprintln!("store bytes identical after resume: {}", healed == bytes);
    println!("{}", full_report(&resumed));
    let _ = std::fs::remove_file(&store);
}
