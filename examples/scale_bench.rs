//! Measures end-to-end pipeline throughput and peak memory at paper
//! scale: the collect→analyze→report path run against a checkpoint
//! store, swept along three axes —
//!
//! - **shards**: 10k domains × 4 weeks committed to 1/4/16 shards
//!   (one store writer per shard on the exec pool);
//! - **domains**: 1k/10k/100k domains, streaming vs materialized —
//!   both axes carry O(domains) state (the ecosystem, one in-flight
//!   week, the per-site accumulator maps), so this sweep reports the
//!   absolute cost of scale rather than gating on it;
//! - **weeks**: 10k domains × 4/16/32 weeks, streaming vs
//!   materialized. This is the longitudinal axis the paper scales on
//!   (201 weekly snapshots), and the one the streaming redesign makes
//!   flat: peak RSS holds one in-flight week plus the accumulators,
//!   independent of how many weeks the study spans.
//!
//! The flat-RSS gate asserted here: streaming peak RSS at 16 weeks is
//! within 1.25× of 4 weeks (4× the data; ~1.07× measured), and the
//! streaming path keeps undercutting the materialized one out to the
//! widest span (32 weeks: ~0.2× of materialized, which grows ~4.4×).
//! The residual streaming growth along the week axis is the committed
//! store file the fold streams back, not retained snapshots.
//!
//! Each configuration runs in a child process (re-exec of this binary)
//! because peak RSS — `VmHWM` in `/proc/self/status` — is a per-process
//! high-water mark: measuring several configurations in one process
//! would report the maximum of them all for each.
//!
//! Run: `cargo run --release --example scale_bench` (or the shadow-built
//! binary). Output is the `BENCH_scale.json` document on stdout; the
//! `domains_per_sec` figure counts domain-week snapshots collected,
//! committed, and analyzed per wall-clock second. `--smoke` runs the
//! CI-sized subset (10k domains, 4 vs 16 weeks) and asserts the gate.

use std::time::Instant;
use webvuln::core::{Pipeline, StudyConfig};
use webvuln::webgen::Timeline;

const SEED: u64 = 907;
const THREADS: usize = 8;
const SHARD_POINTS: [usize; 3] = [1, 4, 16];
const DOMAIN_POINTS: [usize; 3] = [1_000, 10_000, 100_000];
const WEEK_POINTS: [usize; 3] = [4, 16, 32];
const BASE_DOMAINS: usize = 10_000;
const BASE_WEEKS: usize = 4;
/// The gated span: streaming RSS at this many weeks vs `BASE_WEEKS`.
const GATE_WEEKS: usize = 16;
/// Streaming peak RSS may grow at most this much across the gated span.
const FLAT_RSS_LIMIT: f64 = 1.25;

/// Peak resident set size of this process so far, in kilobytes, from
/// `/proc/self/status` (Linux only; 0 where the file is absent).
fn peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Child mode: one configuration, machine-readable result on stdout.
fn run_one(
    shards: usize,
    domains: usize,
    weeks: usize,
    streaming: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!(
        "webvuln-scale-{shards}-{domains}-{weeks}-{streaming}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dir);

    let config = StudyConfig {
        seed: SEED,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
        concurrency: THREADS,
        ..StudyConfig::default()
    };
    let start = Instant::now();
    let results = Pipeline::new(config)
        .shards(shards)
        .checkpoint(&dir)
        .streaming(streaming)
        .run()?;
    let elapsed = start.elapsed();

    assert_eq!(results.collection.points.len(), weeks);
    let store_bytes: u64 = if dir.is_dir() {
        std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok()?.metadata().ok())
            .map(|m| m.len())
            .sum()
    } else {
        std::fs::metadata(&dir)?.len()
    };
    println!(
        "shards={shards} domains={domains} weeks={weeks} streaming={} \
         elapsed_ns={} peak_rss_kb={} store_bytes={store_bytes}",
        streaming as u8,
        elapsed.as_nanos(),
        peak_rss_kb()
    );
    if dir.is_dir() {
        std::fs::remove_dir_all(&dir)?;
    } else {
        std::fs::remove_file(&dir)?;
    }
    Ok(())
}

/// Parses one `key=value` field out of a child's report line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("child line missing {key}: {line}"))
}

struct Point {
    shards: usize,
    domains: usize,
    weeks: usize,
    streaming: bool,
    domains_per_sec: f64,
    peak_rss_mb: f64,
    store_bytes: u64,
}

/// Runs one configuration in a child process and parses its report.
fn measure(
    shards: usize,
    domains: usize,
    weeks: usize,
    streaming: bool,
) -> Result<Point, Box<dyn std::error::Error>> {
    let exe = std::env::current_exe()?;
    let out = std::process::Command::new(&exe)
        .args([
            "--one",
            &shards.to_string(),
            &domains.to_string(),
            &weeks.to_string(),
            if streaming { "stream" } else { "batch" },
        ])
        .output()?;
    if !out.status.success() {
        return Err(format!(
            "child for shards={shards} domains={domains} weeks={weeks} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        )
        .into());
    }
    let line = String::from_utf8(out.stdout)?;
    let elapsed_ns = field(&line, "elapsed_ns");
    let snapshots = (domains * weeks) as f64;
    Ok(Point {
        shards,
        domains,
        weeks,
        streaming,
        domains_per_sec: snapshots / (elapsed_ns as f64 / 1e9),
        peak_rss_mb: field(&line, "peak_rss_kb") as f64 / 1024.0,
        store_bytes: field(&line, "store_bytes"),
    })
}

fn mode(p: &Point) -> &'static str {
    if p.streaming {
        "streaming"
    } else {
        "materialized"
    }
}

/// The flat-RSS gate: streaming RSS is flat along the week axis and
/// strictly below the materialized path. Returns the growth ratio.
fn assert_flat_rss(stream_base: &Point, stream_peak: &Point, batch_peak: &Point) -> f64 {
    let ratio = stream_peak.peak_rss_mb / stream_base.peak_rss_mb;
    assert!(
        ratio <= FLAT_RSS_LIMIT,
        "flat-RSS gate: streaming {} weeks used {:.1} MB, {:.2}x the {:.1} MB \
         at {} weeks (limit {FLAT_RSS_LIMIT}x)",
        stream_peak.weeks,
        stream_peak.peak_rss_mb,
        ratio,
        stream_base.peak_rss_mb,
        stream_base.weeks,
    );
    assert!(
        stream_peak.peak_rss_mb < 0.75 * batch_peak.peak_rss_mb,
        "streaming at {} weeks ({:.1} MB) should undercut materialized ({:.1} MB)",
        stream_peak.weeks,
        stream_peak.peak_rss_mb,
        batch_peak.peak_rss_mb,
    );
    ratio
}

/// CI smoke: just the gated points, no sweeps.
fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let base = measure(1, BASE_DOMAINS, BASE_WEEKS, true)?;
    let wide = measure(1, BASE_DOMAINS, GATE_WEEKS, true)?;
    let batch = measure(1, BASE_DOMAINS, GATE_WEEKS, false)?;
    let ratio = assert_flat_rss(&base, &wide, &batch);
    println!(
        "scale smoke PASS: streaming {}x{} weeks {:.1} MB -> {}x{} weeks {:.1} MB \
         ({ratio:.2}x, limit {FLAT_RSS_LIMIT}x); materialized at {} weeks {:.1} MB",
        BASE_DOMAINS,
        BASE_WEEKS,
        base.peak_rss_mb,
        BASE_DOMAINS,
        wide.weeks,
        wide.peak_rss_mb,
        batch.weeks,
        batch.peak_rss_mb,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 6 && args[1] == "--one" {
        return run_one(
            args[2].parse()?,
            args[3].parse()?,
            args[4].parse()?,
            args[5] == "stream",
        );
    }
    if args.len() == 2 && args[1] == "--smoke" {
        return run_smoke();
    }

    let mut shard_points = Vec::new();
    for shards in SHARD_POINTS {
        shard_points.push(measure(shards, BASE_DOMAINS, BASE_WEEKS, true)?);
    }
    let mut domain_points = Vec::new();
    for domains in DOMAIN_POINTS {
        for streaming in [true, false] {
            domain_points.push(measure(1, domains, BASE_WEEKS, streaming)?);
        }
    }
    let mut week_points = Vec::new();
    for weeks in WEEK_POINTS {
        for streaming in [true, false] {
            week_points.push(measure(1, BASE_DOMAINS, weeks, streaming)?);
        }
    }

    let stream_week = |weeks: usize| {
        week_points
            .iter()
            .find(|p| p.weeks == weeks && p.streaming)
            .expect("week point")
    };
    let batch_week = |weeks: usize| {
        week_points
            .iter()
            .find(|p| p.weeks == weeks && !p.streaming)
            .expect("week point")
    };
    let ratio = assert_flat_rss(
        stream_week(BASE_WEEKS),
        stream_week(GATE_WEEKS),
        batch_week(GATE_WEEKS),
    );
    // At the widest span the streaming path must keep undercutting the
    // materialized one (measured ~0.2×; the fold does stream back a 4.5×
    // larger store file, so the flat gate itself stays on the 4× span).
    let last = WEEK_POINTS[WEEK_POINTS.len() - 1];
    assert!(
        stream_week(last).peak_rss_mb < 0.75 * batch_week(last).peak_rss_mb,
        "streaming at {last} weeks ({:.1} MB) should undercut materialized ({:.1} MB)",
        stream_week(last).peak_rss_mb,
        batch_week(last).peak_rss_mb,
    );

    let base = shard_points[0].domains_per_sec;
    println!("{{");
    println!("  \"bench\": \"pipeline_scale\",");
    println!(
        "  \"workload\": \"checkpointed collect+analyze pipeline, {THREADS} worker \
         threads, one store writer per shard\",",
    );
    println!(
        "  \"host_cpus\": {},",
        std::thread::available_parallelism()?
    );
    println!("  \"shard_points\": [");
    for (i, p) in shard_points.iter().enumerate() {
        let comma = if i + 1 < shard_points.len() { "," } else { "" };
        println!(
            "    {{ \"shards\": {}, \"domains\": {}, \"weeks\": {}, \
             \"domains_per_sec\": {:.1}, \"speedup\": {:.2}, \"peak_rss_mb\": {:.1}, \
             \"store_bytes\": {} }}{comma}",
            p.shards,
            p.domains,
            p.weeks,
            p.domains_per_sec,
            p.domains_per_sec / base,
            p.peak_rss_mb,
            p.store_bytes
        );
    }
    println!("  ],");
    for (name, points) in [
        ("domain_points", &domain_points),
        ("week_points", &week_points),
    ] {
        println!("  \"{name}\": [");
        for (i, p) in points.iter().enumerate() {
            let comma = if i + 1 < points.len() { "," } else { "" };
            println!(
                "    {{ \"domains\": {}, \"weeks\": {}, \"mode\": \"{}\", \
                 \"domains_per_sec\": {:.1}, \"peak_rss_mb\": {:.1}, \
                 \"store_bytes\": {} }}{comma}",
                p.domains,
                p.weeks,
                mode(p),
                p.domains_per_sec,
                p.peak_rss_mb,
                p.store_bytes
            );
        }
        println!("  ],");
    }
    println!(
        "  \"flat_rss_gate\": {{ \"axis\": \"weeks\", \"domains\": {BASE_DOMAINS}, \
         \"base_weeks\": {BASE_WEEKS}, \"peak_weeks\": {GATE_WEEKS}, \
         \"rss_growth\": {ratio:.2}, \"limit\": {FLAT_RSS_LIMIT} }}"
    );
    println!("}}");
    Ok(())
}
