//! Measures checkpointed collection throughput and peak memory across
//! shard counts: the same 10k-domain study committed to a single-file
//! store (1 shard) and to sharded groups (4 and 16 shards, one writer
//! per shard on the exec pool).
//!
//! Each configuration runs in a child process (re-exec of this binary)
//! because peak RSS — `VmHWM` in `/proc/self/status` — is a per-process
//! high-water mark: measuring three configurations in one process would
//! report the maximum of the three for all of them.
//!
//! Run: `cargo run --release --example scale_bench` (or the shadow-built
//! binary). Output is the `BENCH_scale.json` document on stdout; the
//! `domains_per_sec` figure counts domain-week snapshots collected and
//! committed per wall-clock second.

use std::sync::Arc;
use std::time::Instant;
use webvuln::analysis::Collector;
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

const SEED: u64 = 907;
const DOMAINS: usize = 10_000;
const WEEKS: usize = 4;
const THREADS: usize = 8;
const SHARD_POINTS: [usize; 3] = [1, 4, 16];

/// Peak resident set size of this process so far, in kilobytes, from
/// `/proc/self/status` (Linux only; 0 where the file is absent).
fn peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Child mode: one configuration, machine-readable result on stdout.
fn run_one(shards: usize) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!(
        "webvuln-scale-{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dir);

    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: SEED,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    }));
    let start = Instant::now();
    let outcome = Collector::new()
        .threads(THREADS)
        .shards(shards)
        .checkpoint(&dir)
        .run(&eco)?;
    let elapsed = start.elapsed();

    assert_eq!(outcome.weeks_crawled, WEEKS);
    let store_bytes: u64 = if dir.is_dir() {
        std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok()?.metadata().ok())
            .map(|m| m.len())
            .sum()
    } else {
        std::fs::metadata(&dir)?.len()
    };
    println!(
        "shards={shards} elapsed_ns={} peak_rss_kb={} store_bytes={store_bytes}",
        elapsed.as_nanos(),
        peak_rss_kb()
    );
    if dir.is_dir() {
        std::fs::remove_dir_all(&dir)?;
    } else {
        std::fs::remove_file(&dir)?;
    }
    Ok(())
}

/// Parses one `key=value` field out of a child's report line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("child line missing {key}: {line}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--one" {
        return run_one(args[2].parse()?);
    }

    let exe = std::env::current_exe()?;
    let mut points = Vec::new();
    for shards in SHARD_POINTS {
        let out = std::process::Command::new(&exe)
            .args(["--one", &shards.to_string()])
            .output()?;
        if !out.status.success() {
            return Err(format!(
                "child for {shards} shards failed: {}",
                String::from_utf8_lossy(&out.stderr)
            )
            .into());
        }
        let line = String::from_utf8(out.stdout)?;
        let elapsed_ns = field(&line, "elapsed_ns");
        let snapshots = (DOMAINS * WEEKS) as f64;
        points.push((
            shards,
            snapshots / (elapsed_ns as f64 / 1e9),
            field(&line, "peak_rss_kb") as f64 / 1024.0,
            field(&line, "store_bytes"),
        ));
    }

    let base = points[0].1;
    println!("{{");
    println!("  \"bench\": \"store_scale\",");
    println!(
        "  \"workload\": \"{DOMAINS}-domain x {WEEKS}-week checkpointed collection, \
         {THREADS} worker threads, one store writer per shard\",",
    );
    println!("  \"host_cpus\": {},", std::thread::available_parallelism()?);
    println!("  \"points\": [");
    for (i, (shards, dps, rss_mb, bytes)) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"shards\": {shards}, \"domains_per_sec\": {dps:.1}, \
             \"speedup\": {:.2}, \"peak_rss_mb\": {rss_mb:.1}, \
             \"store_bytes\": {bytes} }}{comma}",
            dps / base
        );
    }
    println!("  ]");
    println!("}}");
    Ok(())
}
