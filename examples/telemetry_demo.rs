//! Telemetry demo: run the quick study with progress reporting and print
//! the phase-timing table, the metrics snapshot, and its JSON form.
//!
//! ```sh
//! cargo run --release --example telemetry_demo
//! ```
//!
//! Shows the observability layer end-to-end: per-week progress on stderr
//! while the crawl runs, then the aggregated phase spans (generate →
//! crawl → fingerprint → join → analyze), the `net.*` crawler counters
//! (fetches, bytes, status classes, fault injections, latency quantiles),
//! and the `fp.*` fingerprint counters (pages, pattern evaluations,
//! regex-VM steps, hits per detection source).

use webvuln::core::{render_telemetry, telemetry_json, Pipeline, StudyConfig, Telemetry};

fn main() {
    let config = StudyConfig::quick();
    eprintln!(
        "quick study: {} domains x {} weekly snapshots …",
        config.domain_count, config.timeline.weeks
    );
    let telemetry = Telemetry::new().with_stderr_progress();
    let results = Pipeline::new(config)
        .telemetry(&telemetry)
        .run()
        .expect("study");

    println!("{}", render_telemetry(&results));
    println!("machine-readable snapshot:");
    println!("{}", telemetry_json(&results));
}
