//! Measures the live-ingestion daemon's steady-state economics: what a
//! single [`Watcher::tick`] costs as the committed history grows, versus
//! what a full cold refold ([`fold_study`] over the whole store) costs
//! at the same point — the comparison that justifies maintaining the
//! live accumulator incrementally instead of refolding per arrival.
//!
//! Measurements, swept over 1k/10k domains × 4/8/16/32 weeks of
//! history (the corpus is one real pipeline run split into per-week
//! spool files, replayed one week per arrival tick, with a quiet tick
//! between arrivals — the daemon's real poll cadence):
//!
//! - **arrival**: wall-clock of the tick that ingests one new spool
//!   week — read + commit + live absorb. Flat in history length by
//!   design (it touches one week), where the refold grows linearly.
//! - **settle**: the quiet tick after each arrival, where §4.1 verdict
//!   drift (if any) is repaid with one catch-up refold. Reported with
//!   the fraction of arrivals that drifted, so the deferred-refold
//!   policy's real cost is visible, not hidden.
//! - **retro**: latency of the tick that lands a CVE delta batch —
//!   database extension, full-history retro-scan, alert enqueue and
//!   delivery. Linear in history, the price of scanning back in time.
//! - **degraded retro**: the same retro-scan with one store shard
//!   deleted out from under the daemon — completes with reduced
//!   coverage instead of failing, annotated on every alert line.
//!
//! The gate asserted here (and in `--smoke` CI mode): at 32 weeks of
//! history the arrival tick is at least 5x cheaper than a full refold
//! of the same store. Output is the `BENCH_watch.json` document on
//! stdout.
//!
//! Run: `cargo run --release --example watch_bench` (`--smoke` runs the
//! 1k-domain gate points only).

use std::path::{Path, PathBuf};
use std::time::Instant;
use webvuln::analysis::fold_study;
use webvuln::core::{Pipeline, StudyConfig};
use webvuln::net::FaultPlan;
use webvuln::store::{shard_file_name, AnyReader, Genesis, WeekData};
use webvuln::telemetry::Telemetry;
use webvuln::watch::{write_genesis_file, write_week_file, WatchConfig, Watcher};
use webvuln::webgen::Timeline;

const SEED: u64 = 911;
const THREADS: usize = 2;
const SHARDS: usize = 4;
const DOMAIN_POINTS: [usize; 2] = [1_000, 10_000];
const WEEK_POINTS: [usize; 4] = [4, 8, 16, 32];
const SMOKE_DOMAINS: usize = 1_000;
/// The gated history span: tick-vs-refold is asserted at this depth.
const GATE_WEEKS: usize = 32;
/// A refold must cost at least this many incremental ticks.
const GATE_FACTOR: f64 = 5.0;

/// The retro-scan driver: claims every jquery version the corpus can
/// contain, so the scan is guaranteed matches (and thus alert traffic).
const DELTA: &str = "\
# webvuln cve delta v1
id: CVE-2099-9999
library: jquery
claimed: < 9.0.0
attack: xss
disclosed: 2022-01-01
";

/// A second batch for the degraded point — a new file with a new id,
/// so it retro-scans independently of the first.
const DELTA_DEGRADED: &str = "\
# webvuln cve delta v1
id: SNYK-TEST-0001
library: underscore
claimed: < 9.0.0
attack: arbitrary-code-injection
disclosed: 2021-06-01
";

/// One hostile-fault pipeline run at the widest span, split back into
/// genesis + per-week payloads; shorter histories replay a prefix.
struct Corpus {
    genesis: Genesis,
    weeks: Vec<WeekData>,
}

fn build_corpus(domains: usize) -> Corpus {
    let store = std::env::temp_dir().join(format!(
        "webvuln-watchbench-corpus-{domains}-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    Pipeline::new(StudyConfig {
        seed: SEED,
        domain_count: domains,
        timeline: Timeline::truncated(GATE_WEEKS),
        faults: FaultPlan::hostile(SEED),
        carry_forward: true,
        ..StudyConfig::default()
    })
    .checkpoint(&store)
    .streaming(true)
    .run()
    .expect("corpus pipeline run");
    let reader = AnyReader::open(&store).expect("open corpus store");
    let genesis = reader.genesis().clone();
    let weeks = (0..reader.weeks_committed())
        .map(|w| reader.week(w).expect("corpus week"))
        .collect();
    let _ = std::fs::remove_file(&store);
    Corpus { genesis, weeks }
}

struct Point {
    domains: usize,
    weeks: usize,
    first_tick_ms: f64,
    last_tick_ms: f64,
    mean_tick_ms: f64,
    mean_settle_ms: f64,
    settle_refolds: usize,
    refold_ms: f64,
    refold_over_tick: f64,
    retro_ms: f64,
    alerts: usize,
}

struct DegradedPoint {
    domains: usize,
    weeks: usize,
    retro_ms: f64,
    alerts: usize,
    coverage: String,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_nanos() as f64 / 1e6
}

fn land_delta(root: &Path, name: &str, body: &str) {
    let deltas = root.join("deltas");
    std::fs::create_dir_all(&deltas).expect("create deltas dir");
    std::fs::write(deltas.join(name), body).expect("write delta");
}

/// Replays `weeks` corpus weeks one tick at a time, then times a cold
/// refold and the retro-scan tick. Returns the point and the live
/// watcher + root for follow-on (degraded) measurements.
fn measure(corpus: &Corpus, domains: usize, weeks: usize) -> (Point, Watcher, PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "webvuln-watchbench-{domains}-{weeks}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).expect("create spool");
    write_genesis_file(&spool, &corpus.genesis).expect("write genesis");

    let telemetry = Telemetry::new();
    let cfg = WatchConfig::new(&root).threads(THREADS).shards(SHARDS);
    let mut watcher = Watcher::open(cfg, &telemetry).expect("open watcher");

    // One arriving week per tick, with a quiet tick between arrivals:
    // the daemon's steady-state shape. The quiet tick settles verdict
    // drift, so each arrival absorbs under a current filter.
    let mut tick_ms = Vec::with_capacity(weeks);
    let mut settle_ms = Vec::with_capacity(weeks);
    let mut settle_refolds = 0;
    for week in &corpus.weeks[..weeks] {
        write_week_file(&spool, week).expect("spool week");
        let start = Instant::now();
        let report = watcher.tick().expect("arrival tick");
        tick_ms.push(ms(start));
        assert_eq!(report.weeks_ingested, 1, "each arrival ingests one week");
        assert_eq!(report.refolds, 0, "arrival ticks must not refold");
        let start = Instant::now();
        let report = watcher.tick().expect("settle tick");
        settle_ms.push(ms(start));
        settle_refolds += report.refolds;
    }
    assert_eq!(watcher.weeks_committed(), weeks);

    // The alternative the incremental absorb replaces: refold the whole
    // committed history from the store.
    let start = Instant::now();
    let reader = AnyReader::open_degraded(&root.join("store")).expect("open store");
    let cold = fold_study(&reader, watcher.db(), THREADS).expect("cold refold");
    let refold_ms = ms(start);
    drop(cold);
    drop(reader);

    // Retro-scan: land the delta batch and time the tick that applies
    // it — scan every committed week, enqueue and deliver the alerts.
    land_delta(&root, "2026-08-batch.cvedelta", DELTA);
    let start = Instant::now();
    let report = watcher.tick().expect("retro tick");
    let retro_ms = ms(start);
    assert_eq!(report.deltas_applied, 1, "the delta batch must apply");
    assert!(report.alerts_enqueued > 0, "the retro-scan must find exposure");
    assert_eq!(report.alerts_delivered, report.alerts_enqueued);

    let last_tick_ms = *tick_ms.last().expect("at least one tick");
    let point = Point {
        domains,
        weeks,
        first_tick_ms: tick_ms[0],
        last_tick_ms,
        mean_tick_ms: tick_ms.iter().sum::<f64>() / tick_ms.len() as f64,
        mean_settle_ms: settle_ms.iter().sum::<f64>() / settle_ms.len() as f64,
        settle_refolds,
        refold_ms,
        refold_over_tick: refold_ms / last_tick_ms,
        retro_ms,
        alerts: report.alerts_enqueued,
    };
    (point, watcher, root)
}

/// Deletes one shard under the live watcher, lands a fresh delta batch,
/// and times the degraded retro-scan — it must complete and annotate.
fn measure_degraded(watcher: &mut Watcher, root: &Path, point: &Point) -> DegradedPoint {
    std::fs::remove_file(root.join("store").join(shard_file_name(1)))
        .expect("quarantine shard 1");
    land_delta(root, "2026-09-batch.cvedelta", DELTA_DEGRADED);
    let start = Instant::now();
    let report = watcher.tick().expect("degraded retro tick");
    let retro_ms = ms(start);
    assert_eq!(report.deltas_applied, 1, "degraded retro-scan must complete");
    let log = std::fs::read_to_string(root.join("alerts.log")).expect("alert log");
    let coverage = log
        .lines()
        .rev()
        .find_map(|line| line.split(" coverage ").nth(1))
        .unwrap_or("?/?")
        .to_string();
    assert_eq!(
        coverage,
        format!("{}/{SHARDS}", SHARDS - 1),
        "alerts must carry the reduced coverage"
    );
    DegradedPoint {
        domains: point.domains,
        weeks: point.weeks,
        retro_ms,
        alerts: report.alerts_enqueued,
        coverage,
    }
}

fn assert_gate(point: &Point) {
    assert!(
        point.refold_over_tick >= GATE_FACTOR,
        "incremental gate: at {} domains x {} weeks a refold ({:.1} ms) is only \
         {:.1}x an incremental tick ({:.1} ms); need >= {GATE_FACTOR}x",
        point.domains,
        point.weeks,
        point.refold_ms,
        point.refold_over_tick,
        point.last_tick_ms,
    );
}

/// CI smoke: the 1k-domain gate points only, no sweep, no JSON.
fn run_smoke() {
    let corpus = build_corpus(SMOKE_DOMAINS);
    let (wide, mut watcher, root) = measure(&corpus, SMOKE_DOMAINS, GATE_WEEKS);
    assert_gate(&wide);
    let degraded = measure_degraded(&mut watcher, &root, &wide);
    println!(
        "watch smoke PASS: {} domains x {} weeks: arrival tick {:.1} ms, refold {:.1} ms \
         ({:.1}x, gate {GATE_FACTOR}x); {} settle refolds, mean settle {:.1} ms; \
         retro {:.1} ms ({} alerts); degraded retro {:.1} ms coverage {}",
        wide.domains,
        wide.weeks,
        wide.last_tick_ms,
        wide.refold_ms,
        wide.refold_over_tick,
        wide.settle_refolds,
        wide.mean_settle_ms,
        wide.retro_ms,
        wide.alerts,
        degraded.retro_ms,
        degraded.coverage,
    );
    drop(watcher);
    let _ = std::fs::remove_dir_all(&root);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }

    let mut points: Vec<Point> = Vec::new();
    let mut degraded: Option<DegradedPoint> = None;
    for domains in DOMAIN_POINTS {
        let corpus = build_corpus(domains);
        for weeks in WEEK_POINTS {
            let (point, mut watcher, root) = measure(&corpus, domains, weeks);
            // The degraded point rides on the deepest configuration.
            if domains == DOMAIN_POINTS[DOMAIN_POINTS.len() - 1] && weeks == GATE_WEEKS {
                degraded = Some(measure_degraded(&mut watcher, &root, &point));
            }
            if weeks == GATE_WEEKS {
                assert_gate(&point);
            }
            drop(watcher);
            let _ = std::fs::remove_dir_all(&root);
            points.push(point);
        }
    }
    let degraded = degraded.expect("degraded point");

    println!("{{");
    println!("  \"bench\": \"watch_live_ingest\",");
    println!(
        "  \"workload\": \"one spool week per tick through the sharded writer \
         ({SHARDS} shards, {THREADS} ingest threads), live accumulator absorb, \
         CVE-delta retro-scan with exactly-once alert delivery\","
    );
    println!(
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().expect("cpus")
    );
    println!("  \"ingest_points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"domains\": {}, \"weeks\": {}, \"first_tick_ms\": {:.2}, \
             \"last_tick_ms\": {:.2}, \"mean_tick_ms\": {:.2}, \"mean_settle_ms\": {:.2}, \
             \"settle_refolds\": {}, \"refold_ms\": {:.2}, \
             \"refold_over_tick\": {:.1} }}{comma}",
            p.domains,
            p.weeks,
            p.first_tick_ms,
            p.last_tick_ms,
            p.mean_tick_ms,
            p.mean_settle_ms,
            p.settle_refolds,
            p.refold_ms,
            p.refold_over_tick
        );
    }
    println!("  ],");
    println!("  \"retro_points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"domains\": {}, \"weeks\": {}, \"retro_ms\": {:.2}, \
             \"alerts\": {} }}{comma}",
            p.domains, p.weeks, p.retro_ms, p.alerts
        );
    }
    println!("  ],");
    println!(
        "  \"degraded_retro\": {{ \"domains\": {}, \"weeks\": {}, \"retro_ms\": {:.2}, \
         \"alerts\": {}, \"coverage\": \"{}\" }},",
        degraded.domains, degraded.weeks, degraded.retro_ms, degraded.alerts, degraded.coverage
    );
    let gates: Vec<&Point> = points.iter().filter(|p| p.weeks == GATE_WEEKS).collect();
    println!(
        "  \"incremental_gate\": {{ \"weeks\": {GATE_WEEKS}, \"min_refold_over_tick\": \
         {GATE_FACTOR}, \"measured\": ["
    );
    for (i, p) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        println!(
            "    {{ \"domains\": {}, \"refold_over_tick\": {:.1} }}{comma}",
            p.domains, p.refold_over_tick
        );
    }
    println!("  ] }}");
    println!("}}");
}
