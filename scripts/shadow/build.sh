#!/bin/bash
# Shadow build: compiles the whole workspace with bare rustc — no cargo,
# no network — substituting the tiny stubs in stubs/ for the external
# crates. This is how the repo is verified in offline containers, and CI
# runs it to prove the advertised dependency boundaries hold: a crate
# that quietly grows a real external dependency fails here.
#
#   scripts/shadow/build.sh            # build every crate + the CLI
#   SHADOW_DIR=/tmp/mydir scripts/shadow/build.sh
#
# Artifacts (rlibs + the webvuln_bin CLI) land in $SHADOW_DIR
# (default /tmp/webvuln-shadow). See scripts/shadow/test.sh for the
# matching unit-test runner.
set -e
R="$(cd "$(dirname "$0")/../.." && pwd)"
S="${SHADOW_DIR:-/tmp/webvuln-shadow}"
mkdir -p "$S"
STUBS="$R/scripts/shadow/stubs"
RUSTC="rustc --edition 2021 -O -L $S --out-dir $S"

# --- external stubs ---
rustc --edition 2021 --crate-type proc-macro --crate-name serde_derive "$STUBS/serde_derive.rs" --out-dir "$S"
$RUSTC --crate-type rlib --crate-name serde "$STUBS/serde.rs" --extern serde_derive="$S/libserde_derive.so"
$RUSTC --crate-type rlib --crate-name serde_json "$STUBS/serde_json.rs"
$RUSTC --crate-type rlib --crate-name bytes "$STUBS/bytes.rs"
$RUSTC --crate-type rlib --crate-name crossbeam "$STUBS/crossbeam.rs"
$RUSTC --crate-type rlib --crate-name parking_lot "$STUBS/parking_lot.rs"

ext() { echo "--extern $1=$S/lib$1.rlib"; }
wv() { echo "--extern webvuln_$1=$S/libwebvuln_$1.rlib"; }

# --- workspace crates in dependency order ---
$RUSTC --crate-type rlib --crate-name webvuln_failpoint "$R/crates/failpoint/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_telemetry "$R/crates/telemetry/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_trace "$R/crates/trace/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_resilience "$R/crates/resilience/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_pattern "$R/crates/pattern/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_html "$R/crates/htmlparse/src/lib.rs"
$RUSTC --crate-type rlib --crate-name webvuln_version "$R/crates/version/src/lib.rs" $(ext serde) $(ext serde_derive)
$RUSTC --crate-type rlib --crate-name webvuln_exec "$R/crates/exec/src/lib.rs" $(wv failpoint) $(wv trace)
$RUSTC --crate-type rlib --crate-name webvuln_cvedb "$R/crates/cvedb/src/lib.rs" $(ext serde) $(wv version)
$RUSTC --crate-type rlib --crate-name webvuln_net "$R/crates/net/src/lib.rs" \
  $(wv telemetry) $(wv failpoint) $(wv exec) $(wv resilience) $(wv trace) \
  $(ext serde) $(ext bytes) $(ext crossbeam) $(ext parking_lot)
$RUSTC --crate-type rlib --crate-name webvuln_webgen "$R/crates/webgen/src/lib.rs" \
  $(ext serde) $(wv version) $(wv cvedb) $(wv net)
$RUSTC --crate-type rlib --crate-name webvuln_store "$R/crates/store/src/lib.rs" $(wv failpoint) $(wv trace) $(wv exec)
$RUSTC --crate-type rlib --crate-name webvuln_fingerprint "$R/crates/fingerprint/src/lib.rs" \
  $(ext serde) $(wv telemetry) $(wv exec) $(wv pattern) $(wv trace) $(wv html) $(wv version) $(wv cvedb)
$RUSTC --crate-type rlib --crate-name webvuln_poclab "$R/crates/poclab/src/lib.rs" \
  $(wv version) $(wv cvedb) $(wv html) $(wv pattern)
$RUSTC --crate-type rlib --crate-name webvuln_analysis "$R/crates/analysis/src/lib.rs" \
  $(ext serde) $(ext serde_json) $(wv telemetry) $(wv failpoint) $(wv trace) $(wv exec) $(wv store) \
  $(wv version) $(wv cvedb) $(wv html) $(wv net) $(wv webgen) $(wv fingerprint) $(wv poclab)
$RUSTC --crate-type rlib --crate-name webvuln_watch "$R/crates/watch/src/lib.rs" \
  $(wv failpoint) $(wv telemetry) $(wv resilience) $(wv store) \
  $(wv version) $(wv cvedb) $(wv analysis)
$RUSTC --crate-type rlib --crate-name webvuln_serve "$R/crates/serve/src/lib.rs" \
  $(wv telemetry) $(wv failpoint) $(wv exec) $(wv store) $(wv net) \
  $(wv cvedb) $(wv version) $(wv analysis) $(wv watch)
$RUSTC --crate-type rlib --crate-name webvuln_core "$R/crates/core/src/lib.rs" \
  $(ext serde) $(ext serde_json) $(wv telemetry) $(wv failpoint) $(wv trace) $(wv exec) $(wv store) \
  $(wv version) $(wv cvedb) $(wv net) $(wv webgen) $(wv fingerprint) $(wv poclab) $(wv analysis) \
  $(wv watch) $(wv serve)
$RUSTC --crate-type rlib --crate-name webvuln "$R/src/lib.rs" \
  $(wv telemetry) $(wv failpoint) $(wv trace) $(wv exec) $(wv resilience) $(wv store) $(wv pattern) \
  $(wv version) $(wv html) $(wv cvedb) $(wv webgen) $(wv net) $(wv fingerprint) $(wv poclab) \
  $(wv analysis) $(wv watch) $(wv serve) $(wv core)
$RUSTC --crate-name webvuln_bin "$R/src/bin/webvuln.rs" --extern webvuln="$S/libwebvuln.rlib"
echo "shadow build OK ($S)"
