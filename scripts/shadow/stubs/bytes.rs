//! Offline bytes stub: Arc<[u8]> slices with the small API surface used.
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.into(),
            start: 0,
            end: data.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}
