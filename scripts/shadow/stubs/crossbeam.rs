//! Offline crossbeam stub: channel API over std::sync::mpsc.
pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::Sender<T>);
    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug)]
    pub struct SendError<T>(pub T);
    #[derive(Debug)]
    pub struct RecvError;

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }
}
