//! Offline parking_lot stub: std mutex without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
