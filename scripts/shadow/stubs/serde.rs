//! Offline serde stub: real trait shapes, blanket impls, no codegen.
pub use serde_derive::{Deserialize, Serialize};

/// Constructible error bound for the stubbed (de)serializer paths.
pub trait StubError {
    fn stub() -> Self;
}

pub trait Serializer: Sized {
    type Ok;
    type Error: StubError;
}

pub trait Deserializer<'de>: Sized {
    type Error: StubError;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: ?Sized> Serialize for T {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(S::Error::stub())
    }
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de, T> Deserialize<'de> for T {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(D::Error::stub())
    }
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}
