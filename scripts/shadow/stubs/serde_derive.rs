//! Offline stub: derives expand to nothing; the serde stub's blanket
//! impls already cover every type. `attributes(serde)` keeps the inert
//! `#[serde(...)]` field/container attributes accepted.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
