//! Offline serde_json stub: every call fails loudly but typed-correctly.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub (offline shadow build): JSON unavailable")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(Error)
}

pub fn from_str<'a, T>(_s: &'a str) -> Result<T, Error> {
    Err(Error)
}

pub fn to_writer<W, T: ?Sized>(_writer: W, _value: &T) -> Result<(), Error> {
    Err(Error)
}
