#!/bin/bash
# Shadow test runner: builds and runs the unit-test binaries for the
# crates that must stay buildable with bare rustc, using the rlibs
# produced by scripts/shadow/build.sh (run that first).
#
#   scripts/shadow/build.sh && scripts/shadow/test.sh
#
# Pass crate names to run a subset: `scripts/shadow/test.sh serve net`.
# The version crate's serde round-trip test needs the real serde_json,
# so it is skipped under the stub (everything else runs).
set -e
R="$(cd "$(dirname "$0")/../.." && pwd)"
S="${SHADOW_DIR:-/tmp/webvuln-shadow}"
RUSTC="rustc --edition 2021 -O -L $S --out-dir $S --test"
ext() { echo "--extern $1=$S/lib$1.rlib"; }
wv() { echo "--extern webvuln_$1=$S/libwebvuln_$1.rlib"; }

build_one() {
  case "$1" in
    telemetry) $RUSTC --crate-name t_telemetry "$R/crates/telemetry/src/lib.rs" ;;
    trace) $RUSTC --crate-name t_trace "$R/crates/trace/src/lib.rs" ;;
    exec) $RUSTC --crate-name t_exec "$R/crates/exec/src/lib.rs" $(wv failpoint) $(wv trace) ;;
    resilience) $RUSTC --crate-name t_resilience "$R/crates/resilience/src/lib.rs" ;;
    cvedb) $RUSTC --crate-name t_cvedb "$R/crates/cvedb/src/lib.rs" $(ext serde) $(wv version) ;;
    store) $RUSTC --crate-name t_store "$R/crates/store/src/lib.rs" $(wv failpoint) $(wv trace) $(wv exec) ;;
    net) $RUSTC --crate-name t_net "$R/crates/net/src/lib.rs" \
      $(wv telemetry) $(wv failpoint) $(wv exec) $(wv resilience) $(wv trace) \
      $(ext serde) $(ext bytes) $(ext crossbeam) $(ext parking_lot) ;;
    fingerprint) $RUSTC --crate-name t_fingerprint "$R/crates/fingerprint/src/lib.rs" \
      $(ext serde) $(wv telemetry) $(wv exec) $(wv pattern) $(wv trace) $(wv html) $(wv version) $(wv cvedb) ;;
    analysis) $RUSTC --crate-name t_analysis "$R/crates/analysis/src/lib.rs" \
      $(ext serde) $(ext serde_json) $(wv telemetry) $(wv failpoint) $(wv trace) $(wv exec) $(wv store) \
      $(wv version) $(wv cvedb) $(wv html) $(wv net) $(wv webgen) $(wv fingerprint) $(wv poclab) ;;
    watch) $RUSTC --crate-name t_watch "$R/crates/watch/src/lib.rs" \
      $(wv failpoint) $(wv telemetry) $(wv resilience) $(wv store) \
      $(wv version) $(wv cvedb) $(wv analysis) ;;
    serve) $RUSTC --crate-name t_serve "$R/crates/serve/src/lib.rs" \
      $(wv telemetry) $(wv failpoint) $(wv exec) $(wv store) $(wv net) \
      $(wv cvedb) $(wv version) $(wv analysis) $(wv watch) $(wv webgen) ;;
    core) $RUSTC --crate-name t_core "$R/crates/core/src/lib.rs" \
      $(ext serde) $(ext serde_json) $(wv telemetry) $(wv failpoint) $(wv trace) $(wv exec) $(wv store) \
      $(wv version) $(wv cvedb) $(wv net) $(wv webgen) $(wv fingerprint) $(wv poclab) $(wv analysis) \
      $(wv watch) $(wv serve) ;;
    *) echo "unknown crate: $1" >&2; exit 2 ;;
  esac
}

CRATES=("$@")
if [ ${#CRATES[@]} -eq 0 ]; then
  CRATES=(telemetry trace exec resilience cvedb store net fingerprint analysis watch serve core)
fi
for crate in "${CRATES[@]}"; do
  build_one "$crate"
done
echo "test binaries built"
for crate in "${CRATES[@]}"; do
  echo "== $crate =="
  "$S/t_$crate" -q
done
