//! The `webvuln` command-line interface.
//!
//! ```text
//! webvuln study   [--domains N] [--weeks N] [--seed N] [--threads N] [--csv DIR]
//!                 [--retries N] [--fault-profile none|realistic|hostile]
//!                 [--carry-forward] [--store PATH [--resume] [--shards N] [--streaming]]
//!                 [--progress] [--max-task-failures N] [--telemetry [FILE]]
//!                 [--trace FILE]
//! webvuln validate [REPORT_ID]
//! webvuln crawl   [--domains N] [--week N] [--retries N] [--threads N]
//!                 [--fault-profile none|realistic|hostile] [--tcp] [--telemetry]
//! webvuln inspect <FILE.html> [--domain HOST]
//! webvuln store   info|verify|export-json|scrub <PATH> [--repair]
//! webvuln serve   --store PATH [--threads N] [--port P] [--cache N]
//!                 [--max-conns N] [--requests N] [--watch DIR]
//! webvuln watch   ROOT [--ticks N] [--threads N] [--shards N]
//!                 [--pause-ms N] [--stall-ms N] [--restarts N] [--telemetry]
//! ```

use std::sync::Arc;
use webvuln::core::{
    full_report, series_to_csv, telemetry_json, Pipeline, StudyConfig, Telemetry, TraceMode,
};
use webvuln::cvedb::{Accuracy, Basis, VulnDb};
use webvuln::fingerprint::Engine;
use webvuln::net::{
    BreakerConfig, CrawlOptions, FaultPlan, RetryPolicy, TcpConnector, TcpServer, VirtualClock,
    VirtualNet,
};
use webvuln::poclab::Lab;
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "study" => cmd_study(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "crawl" => cmd_crawl(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "store" => cmd_store(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "help" | "--help" | "-h" => print_help(),
        other => {
            eprintln!("unknown command: {other}\n");
            print_help();
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!(
        "webvuln — longitudinal measurement toolkit for vulnerable client-side resources

USAGE:
  webvuln study    [--domains N] [--weeks N] [--seed N] [--threads N] [--csv DIR]
                   [--retries N] [--fault-profile none|realistic|hostile]
                   [--carry-forward] [--store PATH [--resume] [--shards N] [--streaming]]
                   [--progress] [--max-task-failures N] [--telemetry [FILE]]
                   [--trace FILE]
                   run the full study and print every table/figure
  webvuln validate [REPORT_ID]
                   run the §6.4 version-validation experiment
  webvuln crawl    [--domains N] [--week N] [--retries N] [--threads N]
                   [--fault-profile none|realistic|hostile] [--tcp] [--telemetry]
                   crawl one snapshot week and summarize detections
  webvuln inspect  FILE.html [--domain HOST]
                   fingerprint a single HTML file and list vulnerabilities
  webvuln store    info PATH         describe a snapshot store
                   verify PATH       exhaustively decode + CRC-check a store
                   export-json PATH [OUT.json]
                                     convert a finalized store to Dataset JSON
                   scrub PATH [--repair]
                                     full CRC walk of every shard; with
                                     --repair, heal torn tails, rebuild
                                     corrupt shards from their quarantined
                                     copies, and roll the group back to the
                                     last consistent epoch. Exit codes:
                                     0 clean, 3 healed, 4 quarantined
  webvuln serve    --store PATH [--threads N] [--port P] [--cache N]
                   [--max-conns N] [--requests N] [--watch DIR]
                   serve JSON queries over a snapshot store:
                     GET /healthz
                     GET /domain/HOST/history
                     GET /library/SLUG/prevalence
                     GET /week/W/landscape
                     GET /cve/ID/exposure
                     GET /alerts          (with --watch DIR)
                   --port 0 picks a free port (printed on stdout);
                   --requests N drains gracefully after N requests
                   (0 = run until killed) and prints serve.* metrics;
                   --watch DIR attaches a watch root: /alerts serves its
                   outbox and /healthz reports its ingestion state
  webvuln watch    ROOT [--ticks N] [--threads N] [--shards N]
                   [--pause-ms N] [--stall-ms N] [--restarts N] [--telemetry]
                   run the supervised live-ingestion daemon over ROOT:
                   commits spool weeks (ROOT/spool/week-NNNNN.wvweek)
                   into ROOT/store through the sharded writer, absorbs
                   each week into the live accumulators incrementally,
                   retro-scans history when a CVE delta lands in
                   ROOT/deltas/*.cvedelta, and delivers per-domain
                   exposure alerts to ROOT/alerts.log through the
                   crash-journaled outbox (ROOT/outbox.wal). A crash at
                   any point is recovered on restart with no lost and no
                   duplicated alerts. --ticks N stops after N ticks
                   (0 = run until killed); --restarts N is the budget of
                   consecutive faults before giving up

FLAGS:
  --threads N        worker threads for the crawl and fingerprint pools
                     (0 = one per CPU core); results are byte-identical
                     for every thread count
  --retries N        retry failed fetches up to N times with exponential
                     backoff and per-host circuit breakers
  --fault-profile P  injected network faults: none, realistic (default),
                     or hostile (transient refusals, stalls, 5xx bursts)
  --carry-forward    when a domain stays down for a whole week, reuse its
                     last usable snapshot (flagged carried_forward)
  --progress         report per-week progress on stderr
  --store PATH       commit each crawled week to a binary snapshot store
  --resume           with --store: restore committed weeks instead of
                     recrawling them (tolerates a torn tail after a crash)
  --shards N         with --store: split the store into N shard files
                     keyed by domain hash, committed in parallel and
                     published atomically per week by a manifest rename;
                     results are byte-identical for every shard count
  --streaming        with --store: drop each week after its commit and
                     stream the finalized store back through mergeable
                     accumulators — peak memory is one week plus the
                     accumulator state, the report is byte-identical
  --max-task-failures N
                     run crawl/fingerprint tasks under supervision: a
                     panicking or over-deadline task quarantines its
                     domain instead of aborting; the study fails only
                     after more than N tasks have been quarantined
  --telemetry [FILE] print the metrics snapshot as JSON on stderr, or
                     write it to FILE when one is given
  --trace FILE       record a causal trace of the run and write it to
                     FILE as Chrome trace-event JSON (load in Perfetto
                     or chrome://tracing); appends a \"Top cost centers\"
                     section to the report. The trace is canonical:
                     byte-identical for every --threads value"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--telemetry` takes an optional FILE operand: `None` = flag absent,
/// `Some(None)` = print to stderr, `Some(Some(path))` = write to `path`.
fn telemetry_flag(args: &[String]) -> Option<Option<String>> {
    let i = args.iter().position(|a| a == "--telemetry")?;
    Some(args.get(i + 1).filter(|v| !v.starts_with("--")).cloned())
}

/// Resolves `--fault-profile` (default `realistic`) against `seed`.
fn fault_profile_flag(args: &[String], seed: u64) -> FaultPlan {
    match flag(args, "--fault-profile")
        .as_deref()
        .unwrap_or("realistic")
    {
        "none" => FaultPlan::none(),
        "realistic" => FaultPlan::realistic(seed),
        "hostile" => FaultPlan::hostile(seed),
        other => {
            eprintln!("unknown fault profile: {other} (use none|realistic|hostile)");
            std::process::exit(2);
        }
    }
}

fn cmd_study(args: &[String]) {
    let domains = flag_usize(args, "--domains", 2_000);
    let weeks = flag_usize(args, "--weeks", 201);
    let seed = flag_usize(args, "--seed", 42) as u64;
    let retries = flag_usize(args, "--retries", 0) as u32;
    let threads = flag_usize(args, "--threads", StudyConfig::default().concurrency);
    let config = StudyConfig {
        seed,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
        concurrency: threads,
        faults: fault_profile_flag(args, seed),
        retry: if retries > 0 {
            RetryPolicy::standard(retries)
        } else {
            RetryPolicy::none()
        },
        breaker: (retries > 0).then(BreakerConfig::default),
        carry_forward: args.iter().any(|a| a == "--carry-forward"),
        ..StudyConfig::default()
    };
    let mut telemetry = Telemetry::new();
    if args.iter().any(|a| a == "--progress") {
        telemetry = telemetry.with_stderr_progress();
    }
    eprintln!("study: {domains} domains x {weeks} weeks (seed {seed})");
    let mut pipeline = Pipeline::new(config).telemetry(&telemetry);
    if let Some(budget) = flag(args, "--max-task-failures").and_then(|v| v.parse().ok()) {
        pipeline = pipeline.max_task_failures(budget);
    }
    let store = flag(args, "--store").map(std::path::PathBuf::from);
    let streaming = args.iter().any(|a| a == "--streaming");
    if let Some(path) = &store {
        pipeline = pipeline
            .checkpoint(path)
            .resume(args.iter().any(|a| a == "--resume"))
            .shards(flag_usize(args, "--shards", 1))
            .streaming(streaming);
    } else if streaming {
        eprintln!("study: --streaming needs --store PATH (the store is the buffer)");
        std::process::exit(2);
    }
    let trace_out = flag(args, "--trace");
    if trace_out.is_some() {
        pipeline = pipeline.trace(TraceMode::Full);
    }
    let results = match pipeline.run() {
        Ok(results) => {
            if let Some(path) = &store {
                eprintln!("snapshot store committed to {}", path.display());
            }
            results
        }
        Err(e) => {
            eprintln!("snapshot store error: {e}");
            std::process::exit(1);
        }
    };
    {
        let snap = &results.telemetry;
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        eprintln!(
            "crawl resilience: {} retries, {} recovered after retry, \
             {} breaker-skipped, {} carried forward",
            counter("net.retries_total"),
            counter("net.retry_success_total"),
            counter("net.breaker_open_total"),
            counter("net.carry_forward_total"),
        );
    }
    if let (Some(path), Some(trace)) = (&trace_out, &results.trace) {
        match std::fs::write(path, trace.to_chrome_json()) {
            Ok(()) => eprintln!("trace written to {path} (open in Perfetto or chrome://tracing)"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if let Some(dest) = telemetry_flag(args) {
        let json = telemetry_json(&results);
        match dest {
            Some(path) => match std::fs::write(&path, &json) {
                Ok(()) => eprintln!("telemetry written to {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            },
            None => eprintln!("{json}"),
        }
    }
    // Write artifacts before printing: a closed stdout (e.g. `| head`)
    // must not abort the CSV export.
    if let Some(dir) = flag(args, "--csv") {
        let dir = std::path::PathBuf::from(dir);
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(
                dir.join("fig2a_collection.csv"),
                series_to_csv(
                    "collected",
                    results.collection.points.iter().map(|&(d, c)| (d, c)),
                ),
            );
            let _ = std::fs::write(
                dir.join("fig9_wordpress.csv"),
                series_to_csv(
                    "wordpress",
                    results.wordpress.points.iter().map(|&(d, _, w)| (d, w)),
                ),
            );
            eprintln!("CSV series written to {}", dir.display());
        }
    }
    println!("{}", full_report(&results));
}

fn cmd_validate(args: &[String]) {
    let lab = Lab::new();
    match args.first() {
        Some(id) if !id.starts_with("--") => match lab.validate(id) {
            Some(report) => {
                println!(
                    "{}: swept {} environments; {} vulnerable; accuracy: {}",
                    report.id,
                    report.environments(),
                    report.vulnerable.len(),
                    report.accuracy
                );
                if !report.understated.is_empty() {
                    println!(
                        "  understated versions: {}",
                        report
                            .understated
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                if !report.overstated.is_empty() {
                    println!(
                        "  overstated versions: {}",
                        report
                            .overstated
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
            None => {
                eprintln!("unknown report id: {id}");
                std::process::exit(1);
            }
        },
        _ => {
            let reports = lab.validate_all();
            let incorrect = reports
                .iter()
                .filter(|r| r.accuracy != Accuracy::Accurate)
                .count();
            for report in &reports {
                println!(
                    "{:<26} {:<14} {:>3} envs  {}",
                    report.id,
                    report.library.name(),
                    report.environments(),
                    report.accuracy
                );
            }
            println!(
                "\n{incorrect} of {} reports state incorrect versions",
                reports.len()
            );
        }
    }
}

fn cmd_crawl(args: &[String]) {
    let domains = flag_usize(args, "--domains", 500);
    let week = flag_usize(args, "--week", 100);
    let retries = flag_usize(args, "--retries", 0) as u32;
    let use_tcp = args.iter().any(|a| a == "--tcp");
    let telemetry = Telemetry::new();
    let registry = telemetry.registry();
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 42,
        domain_count: domains,
        timeline: Timeline::paper(),
    }));
    let names = eco.domain_names();
    let snapshot = if use_tcp {
        let threads = flag_usize(args, "--threads", 16);
        let mut server = TcpServer::start(Arc::new(eco.handler(week))).expect("bind");
        eprintln!("crawling over TCP via {}", server.addr());
        let got = CrawlOptions::new()
            .threads(threads)
            .registry(registry)
            .run(&names, &TcpConnector::fixed(server.addr()));
        server.shutdown();
        got
    } else {
        let threads = flag_usize(args, "--threads", 8);
        let net = VirtualNet::new(Arc::new(eco.handler(week)))
            .with_fault_metrics(registry)
            .with_week(week)
            .with_faults(fault_profile_flag(args, 42));
        let clock = VirtualClock::new();
        CrawlOptions::new()
            .threads(threads)
            .retry(RetryPolicy::standard(retries))
            .clock(&clock)
            .registry(registry)
            .run(&names, &net)
    };
    let recovered = snapshot.values().filter(|r| r.recovered).count();
    if recovered > 0 {
        eprintln!("{recovered} domains recovered after retry");
    }
    if telemetry_flag(args).is_some() {
        eprint!("{}", telemetry.snapshot().render());
    }
    let engine = Engine::new();
    let db = VulnDb::builtin();
    let usable: Vec<_> = snapshot.values().filter(|r| r.is_usable(400)).collect();
    let mut vulnerable = 0;
    for record in &usable {
        let analysis = engine.analyze(&record.body, &record.domain);
        if analysis.detections.iter().any(|d| {
            d.version
                .as_ref()
                .is_some_and(|v| db.is_vulnerable(d.library, v, Basis::CveClaimed))
        }) {
            vulnerable += 1;
        }
    }
    println!(
        "week {week}: {} domains attempted, {} usable, {} vulnerable ({:.1}%)",
        names.len(),
        usable.len(),
        vulnerable,
        100.0 * vulnerable as f64 / usable.len().max(1) as f64
    );
}

fn cmd_store(args: &[String]) {
    let usage = || -> ! {
        eprintln!("usage: webvuln store info|verify|export-json|scrub PATH [OUT.json] [--repair]");
        std::process::exit(2);
    };
    let action = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let open = || {
        webvuln::store::AnyReader::open(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        })
    };
    match action {
        "info" => {
            // Info opens tolerantly: a degraded store (a quarantined or
            // missing shard) is exactly when an operator needs this
            // output, so report per-shard health instead of refusing.
            let reader = webvuln::store::AnyReader::open_degraded(std::path::Path::new(path))
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    std::process::exit(1);
                });
            let genesis = reader.genesis();
            println!("store:      {path}");
            println!("format:     version {}", webvuln::store::FORMAT_VERSION);
            if reader.shard_count() > 1 {
                println!("shards:     {}", reader.shard_count());
            }
            if let webvuln::store::AnyReader::Sharded(sharded) = &reader {
                println!("epoch:      {}", sharded.manifest().epoch);
            }
            println!("domains:    {}", genesis.ranks.len());
            println!(
                "weeks:      {} committed of {} planned",
                reader.weeks_committed(),
                genesis.weeks_total
            );
            println!(
                "finalized:  {}",
                if reader.is_finalized() { "yes" } else { "no" }
            );
            if let Some(filtered) = reader.filtered_out() {
                println!(
                    "filtered:   {} domains removed by the §4.1 rule",
                    filtered.len()
                );
            }
            match reader.delta_stats() {
                Ok((hits, total)) => println!(
                    "records:    {total} total, {hits} stored as back-references ({:.1}%)",
                    100.0 * hits as f64 / total.max(1) as f64
                ),
                Err(e) if reader.is_degraded() => {
                    println!("records:    unavailable (degraded store: {e})")
                }
                Err(e) => {
                    eprintln!("cannot decode {path}: {e}");
                    std::process::exit(1);
                }
            }
            println!("data bytes: {}", reader.data_bytes());
            if reader.torn_bytes() > 0 {
                println!("torn tail:  {} bytes (recoverable)", reader.torn_bytes());
            }
            // Per-shard breakdown: week/record counts for the healthy
            // shards, the quarantine reason for the rest.
            if let webvuln::store::AnyReader::Sharded(sharded) = &reader {
                for index in 0..sharded.shard_count() {
                    match sharded.shard_reader(index) {
                        Some(shard) => {
                            let records = shard
                                .delta_stats()
                                .map(|(_, total)| total.to_string())
                                .unwrap_or_else(|_| "?".into());
                            println!(
                                "  shard {index}: healthy, {} weeks, {records} records, {} bytes",
                                shard.weeks_committed(),
                                shard.data_bytes()
                            );
                        }
                        None => {
                            let detail = match &sharded.shard_health()[index] {
                                webvuln::store::ShardHealth::Unavailable { detail } => {
                                    detail.clone()
                                }
                                webvuln::store::ShardHealth::Healthy => "unknown".into(),
                            };
                            println!("  shard {index}: UNAVAILABLE ({detail})");
                        }
                    }
                }
            }
        }
        "verify" => {
            let reader = open();
            match reader.verify() {
                Ok(counts) => {
                    for (week, records) in counts.iter().enumerate() {
                        let date = reader
                            .week_date_days(week)
                            .map(|d| format!("day {d}"))
                            .unwrap_or_else(|_| "?".into());
                        println!("week {week:>3} ({date}): {records} records ok");
                    }
                    println!(
                        "{}: {} weeks verified, every CRC and back-reference intact",
                        path,
                        counts.len()
                    );
                }
                Err(e) => {
                    eprintln!("{path}: verification FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
        "export-json" => {
            // Streams record-by-record: peak memory is one decoded week,
            // not the whole dataset, so a paper-scale store exports flat.
            use std::io::Write;
            let reader = open();
            match args.get(2).filter(|a| !a.starts_with("--")) {
                Some(out) => {
                    let result = std::fs::File::create(out)
                        .map(std::io::BufWriter::new)
                        .and_then(|mut file| {
                            webvuln::analysis::store_io::export_json(&reader, &mut file)?;
                            file.flush()
                        });
                    match result {
                        Ok(()) => eprintln!("dataset written to {out}"),
                        Err(e) => {
                            eprintln!("cannot write dataset: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut lock = std::io::BufWriter::new(stdout.lock());
                    let result = webvuln::analysis::store_io::export_json(&reader, &mut lock)
                        .and_then(|()| {
                            lock.write_all(b"\n")?;
                            lock.flush()
                        });
                    if let Err(e) = result {
                        eprintln!("cannot export {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "scrub" => {
            let repair = args.iter().any(|a| a == "--repair");
            let report =
                webvuln::store::scrub(std::path::Path::new(path), repair).unwrap_or_else(|e| {
                    eprintln!("cannot scrub {path}: {e}");
                    std::process::exit(1);
                });
            print!("{}", report.render());
            std::process::exit(match report.outcome {
                webvuln::store::ScrubOutcome::Clean => 0,
                webvuln::store::ScrubOutcome::Healed => 3,
                webvuln::store::ScrubOutcome::Quarantined => 4,
            });
        }
        _ => usage(),
    }
}

fn cmd_serve(args: &[String]) {
    let store = match flag(args, "--store") {
        Some(p) => p,
        None => {
            eprintln!("serve: --store FILE is required");
            std::process::exit(2);
        }
    };
    let config = webvuln::ServeConfig {
        threads: flag_usize(args, "--threads", 4),
        port: flag_usize(args, "--port", 0) as u16,
        cache_capacity: flag_usize(args, "--cache", 256),
        max_connections: flag_usize(args, "--max-conns", 64),
        ..webvuln::ServeConfig::default()
    };
    let request_budget = flag_usize(args, "--requests", 0) as u64;

    let watch_root = flag(args, "--watch");
    let service = match webvuln::QueryService::open(std::path::Path::new(&store)) {
        Ok(s) => match &watch_root {
            Some(root) => Arc::new(s.with_watch_root(root)),
            None => Arc::new(s),
        },
        Err(e) => {
            eprintln!("serve: cannot open {store}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(root) = &watch_root {
        eprintln!("serve: live alerting enabled from watch root {root}");
    }
    eprintln!(
        "serve: {} weeks committed, {} domains, {} worker threads",
        service.reader().weeks_committed(),
        service.reader().genesis().ranks.len(),
        config.threads
    );
    if service.reader().is_degraded() {
        for (index, health) in service.reader().shard_health().iter().enumerate() {
            if let webvuln::store::ShardHealth::Unavailable { detail } = health {
                eprintln!("serve: WARNING: shard {index} unavailable: {detail}");
            }
        }
        eprintln!(
            "serve: store is degraded — healthy shards keep serving; \
             routed queries to dead shards answer 503"
        );
    }

    let registry = webvuln::telemetry::Registry::new();
    let mut server = match webvuln::ApiServer::serve(service, config, &registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // The smoke harness scrapes this line for the chosen port.
    println!("listening on {}", server.addr());

    // Run until the request budget is spent (`--requests 0` = forever);
    // then drain in-flight connections and report the serve.* counters.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if request_budget > 0 {
            let served = registry
                .snapshot()
                .counter("serve.requests_total")
                .unwrap_or(0);
            if served >= request_budget {
                break;
            }
        }
    }
    server.shutdown();
    let snap = registry.snapshot();
    for key in [
        "serve.requests_total",
        "serve.responses_2xx_total",
        "serve.responses_4xx_total",
        "serve.responses_5xx_total",
        "serve.cache_hits_total",
        "serve.cache_misses_total",
        "serve.connections_total",
    ] {
        eprintln!("{key} = {}", snap.counter(key).unwrap_or(0));
    }
}

fn cmd_watch(args: &[String]) {
    let Some(root) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: webvuln watch ROOT [--ticks N] [--threads N] [--shards N] \
             [--pause-ms N] [--stall-ms N] [--restarts N] [--telemetry]"
        );
        std::process::exit(2);
    };
    let watch_cfg = webvuln::WatchConfig::new(root)
        .threads(flag_usize(args, "--threads", 2))
        .shards(flag_usize(args, "--shards", 4));
    // --ticks 0 means run until killed; the supervisor itself has no
    // notion of "forever", so model it as a practically-infinite budget.
    let ticks = match flag_usize(args, "--ticks", 0) {
        0 => usize::MAX,
        n => n,
    };
    let restarts = flag_usize(args, "--restarts", 4).min(u32::MAX as usize) as u32;
    let mut sup_cfg = webvuln::SupervisorConfig::bounded(ticks)
        .policy(webvuln::resilience::RetryPolicy::standard(restarts))
        .tick_pause(std::time::Duration::from_millis(
            flag_usize(args, "--pause-ms", 200) as u64,
        ));
    if let Some(stall_ms) = flag(args, "--stall-ms").and_then(|v| v.parse::<u64>().ok()) {
        sup_cfg = sup_cfg.stall_limit(std::time::Duration::from_millis(stall_ms));
    }

    let telemetry = webvuln::telemetry::Telemetry::new();
    let report = webvuln::watch::supervise(&watch_cfg, sup_cfg, &telemetry);

    println!("watch root: {root}");
    println!(
        "ticks:      {} ({} weeks ingested, {} skipped, {} refolds)",
        report.ticks,
        report.totals.weeks_ingested,
        report.totals.weeks_skipped,
        report.totals.refolds
    );
    println!(
        "deltas:     {} applied ({} alerts enqueued, {} deduped)",
        report.totals.deltas_applied, report.totals.alerts_enqueued, report.totals.alerts_deduped
    );
    println!(
        "delivered:  {} alerts ({} redelivered after replay)",
        report.totals.alerts_delivered, report.totals.alerts_redelivered
    );
    println!(
        "faults:     {} restarts, {} stalls flagged, {} ns virtual backoff",
        report.restarts, report.stalls, report.backoff_ns
    );
    if let Some(err) = &report.last_error {
        eprintln!("last error: {err}");
    }
    if telemetry_flag(args).is_some() {
        let snap = telemetry.registry_arc().snapshot();
        for (key, value) in &snap.counters {
            if key.starts_with("watch.") {
                eprintln!("{key} = {value}");
            }
        }
    }
    if report.gave_up {
        eprintln!("watch: restart budget exhausted; giving up");
        std::process::exit(1);
    }
}

fn cmd_inspect(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: webvuln inspect FILE.html [--domain HOST]");
        std::process::exit(2);
    };
    let domain = flag(args, "--domain").unwrap_or_else(|| "example.com".to_string());
    let html = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let engine = Engine::new();
    let db = VulnDb::builtin();
    let analysis = engine.analyze(&html, &domain);
    if analysis.detections.is_empty() {
        println!("no known libraries detected");
    }
    for det in &analysis.detections {
        let version = det
            .version
            .as_ref()
            .map(ToString::to_string)
            .unwrap_or_else(|| "unknown version".into());
        println!("{} {version} ({:?})", det.library.name(), det.inclusion);
        if let Some(v) = &det.version {
            for basis in [Basis::CveClaimed, Basis::TrueVulnerable] {
                for record in db.affecting(det.library, v, basis) {
                    let tag = match basis {
                        Basis::CveClaimed => "claimed",
                        Basis::TrueVulnerable => "true",
                    };
                    println!("  [{tag}] {} ({})", record.id, record.attack);
                }
            }
        }
    }
    if let Some(wp) = &analysis.wordpress {
        println!(
            "WordPress: {}",
            wp.as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "version unknown".into())
        );
    }
    for flash in &analysis.flash {
        println!(
            "Flash: {} (AllowScriptAccess: {})",
            flash.swf_url,
            flash.allow_script_access.as_deref().unwrap_or("unset")
        );
    }
}
