//! # webvuln
//!
//! A longitudinal measurement toolkit for vulnerable client-side web
//! resources — a from-scratch Rust reproduction of *"A Longitudinal Study
//! of Vulnerable Client-side Resources and Web Developers' Updating
//! Behaviors"* (IMC '23).
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`pattern`] | `webvuln-pattern` | linear-time regex engine |
//! | [`version`] | `webvuln-version` | version parsing + interval algebra |
//! | [`html`] | `webvuln-html` | HTML tokenizer / DOM / extractor |
//! | [`cvedb`] | `webvuln-cvedb` | embedded CVE corpus + release catalogs |
//! | [`webgen`] | `webvuln-webgen` | synthetic web ecosystem |
//! | [`net`] | `webvuln-net` | HTTP/1.1 stack + crawler |
//! | [`resilience`] | `webvuln-resilience` | retries, backoff, circuit breakers |
//! | [`exec`] | `webvuln-exec` | work-stealing executor, supervised tasks |
//! | [`failpoint`] | `webvuln-failpoint` | deterministic fail-point injection |
//! | [`fingerprint`] | `webvuln-fingerprint` | Wappalyzer-equivalent |
//! | [`poclab`] | `webvuln-poclab` | version-validation experiment |
//! | [`analysis`] | `webvuln-analysis` | tables & figures |
//! | [`serve`] | `webvuln-serve` | multi-threaded query API over the store |
//! | [`watch`] | `webvuln-watch` | live-ingestion daemon + retro-scan alerting |
//! | [`store`] | `webvuln-store` | binary snapshot store (checkpoint/resume) |
//! | [`telemetry`] | `webvuln-telemetry` | metrics, spans, progress |
//! | [`trace`] | `webvuln-trace` | causal tracing, flight recorder, cost attribution |
//! | [`core`] | `webvuln-core` | study orchestration + reports |
//!
//! ## Quickstart
//!
//! ```no_run
//! use webvuln::core::{full_report, Pipeline, StudyConfig};
//!
//! let results = Pipeline::new(StudyConfig::quick())
//!     .threads(8)
//!     .run()
//!     .expect("study");
//! println!("{}", full_report(&results));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use webvuln_analysis as analysis;
pub use webvuln_core as core;
pub use webvuln_cvedb as cvedb;
pub use webvuln_exec as exec;
pub use webvuln_failpoint as failpoint;
pub use webvuln_fingerprint as fingerprint;
pub use webvuln_html as html;
pub use webvuln_net as net;
pub use webvuln_pattern as pattern;
pub use webvuln_poclab as poclab;
pub use webvuln_resilience as resilience;
pub use webvuln_serve as serve;
pub use webvuln_store as store;
pub use webvuln_telemetry as telemetry;
pub use webvuln_trace as trace;
pub use webvuln_version as version;
pub use webvuln_watch as watch;
pub use webvuln_webgen as webgen;

// The serving stack's front door, re-exported flat: open a store, build
// the service, start the server — without spelling the module paths.
pub use webvuln_serve::{ApiHandler, ApiServer, QueryService, ServeConfig};
// The store's front door: one opener for both layouts plus a streaming
// iterator over committed weeks, so consumers need not know whether a
// path is a single file or a shard directory.
#[deprecated(note = "open stores through `AnyReader` (it handles both layouts and \
                     degraded shard sets); reach `StoreReader` via `webvuln::store` \
                     only when a single-file reader is explicitly required")]
pub use webvuln_store::StoreReader;
pub use webvuln_store::{AnyReader, WeekStream};
// The live-ingestion front door: point a watcher (or a whole supervised
// daemon) at a watch root without spelling the module paths.
pub use webvuln_watch::{supervise, SupervisorConfig, WatchConfig, Watcher};
