//! Chaos integration: the resilient crawl layer under a hostile fault
//! profile — transient connect refusals, stalls, and 5xx bursts.
//!
//! Three properties must hold at once: retries strictly widen coverage
//! over a single-attempt crawl (without ever shrinking it), the outcome
//! is byte-identical regardless of worker count, and a run killed in the
//! middle of a retry storm resumes from the snapshot store into the exact
//! same dataset as an uninterrupted run.

use std::collections::BTreeSet;
use std::sync::Arc;
use webvuln::analysis::dataset::{CollectConfig, Collector};
use webvuln::analysis::Dataset;
use webvuln::core::{full_report, Pipeline, StudyConfig, Telemetry};
use webvuln::net::{
    BreakerConfig, CrawlOptions, FaultPlan, Request, Response, RetryPolicy, VirtualClock,
    VirtualNet,
};
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

fn ecosystem(seed: u64, domains: usize, weeks: usize) -> Arc<Ecosystem> {
    Arc::new(Ecosystem::generate(EcosystemConfig {
        seed,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
    }))
}

fn collect(eco: &Arc<Ecosystem>, config: CollectConfig) -> Dataset {
    Collector::from_config(config)
        .run(eco)
        .expect("collection")
        .dataset
}

fn collect_with(eco: &Arc<Ecosystem>, config: CollectConfig, telemetry: &Telemetry) -> Dataset {
    Collector::from_config(config)
        .telemetry(telemetry)
        .run(eco)
        .expect("collection")
        .dataset
}

fn usable_pages(dataset: &Dataset) -> Vec<BTreeSet<String>> {
    dataset
        .weeks
        .iter()
        .map(|w| w.pages.keys().cloned().collect())
        .collect()
}

#[test]
fn retries_recover_strictly_more_than_a_single_attempt() {
    let eco = ecosystem(4_242, 250, 5);
    let hostile = FaultPlan::hostile(4_242);
    let single = collect(
        &eco,
        CollectConfig {
            faults: hostile,
            ..CollectConfig::default()
        },
    );
    let retried = collect(
        &eco,
        CollectConfig {
            faults: hostile,
            // One attempt past the hostile profile's healing threshold.
            retry: RetryPolicy::standard(3),
            ..CollectConfig::default()
        },
    );
    // The first attempt of the retried crawl is the single-attempt crawl,
    // so coverage can only grow: every page the single-attempt crawl got,
    // the retried crawl got too — plus the recovered transients.
    let single_pages = usable_pages(&single);
    let retried_pages = usable_pages(&retried);
    let mut recovered = 0;
    for (week_single, week_retried) in single_pages.iter().zip(&retried_pages) {
        assert!(
            week_single.is_subset(week_retried),
            "retries must never lose a page"
        );
        recovered += week_retried.len() - week_single.len();
    }
    assert!(
        recovered > 0,
        "hostile profile with retries must recover transient failures"
    );
    assert!(retried.average_collected() > single.average_collected());
}

#[test]
fn chaos_crawl_is_identical_across_concurrency() {
    let eco = ecosystem(4_243, 150, 6);
    let config = |concurrency| CollectConfig {
        concurrency,
        faults: FaultPlan::hostile(4_243),
        retry: RetryPolicy::standard(2),
        breaker: Some(BreakerConfig::default()),
        carry_forward: true,
        ..CollectConfig::default()
    };
    let serial = collect(&eco, config(1));
    let parallel = collect(&eco, config(8));
    assert_eq!(serial.ranks, parallel.ranks);
    assert_eq!(serial.filtered_out, parallel.filtered_out);
    assert_eq!(serial.weeks.len(), parallel.weeks.len());
    for (a, b) in serial.weeks.iter().zip(&parallel.weeks) {
        assert_eq!(a.summaries, b.summaries);
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.carried_forward, b.carried_forward);
    }
}

#[test]
fn retry_counters_match_the_injected_plan_exactly() {
    // A plan with only transient refusals healing after 2 attempts, and a
    // 3-attempt budget: every afflicted host burns exactly 2 retries and
    // recovers, so all four counters are computable from the plan alone.
    let plan = FaultPlan {
        seed: 99,
        transient_fail_permille: 150,
        heal_after_attempts: 2,
        ..FaultPlan::none()
    };
    let week = 3;
    let names: Vec<String> = (0..400).map(|i| format!("h{i:04}.example")).collect();
    let afflicted = names
        .iter()
        .filter(|h| plan.transient_connect_fails(h, week, 0))
        .count() as u64;
    assert!(afflicted > 0, "plan must afflict someone");

    let telemetry = Telemetry::new();
    let registry = telemetry.registry();
    let handler = Arc::new(|_req: &Request| Response::html("x".repeat(600)));
    let net = VirtualNet::new(handler)
        .with_fault_metrics(registry)
        .with_week(week)
        .with_faults(plan);
    let clock = VirtualClock::new();
    let records = CrawlOptions::new()
        .threads(8)
        .retry(RetryPolicy::standard(2))
        .clock(&clock)
        .registry(registry)
        .run(&names, &net);

    let recovered = records.values().filter(|r| r.recovered).count() as u64;
    assert_eq!(recovered, afflicted);
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("net.retries_total"), Some(2 * afflicted));
    assert_eq!(snap.counter("net.retry_success_total"), Some(afflicted));
    assert_eq!(
        snap.counter("net.faults_transient_refused_total"),
        Some(2 * afflicted)
    );
    assert_eq!(snap.counter("net.breaker_open_total"), Some(0));
}

#[test]
fn carry_forward_counter_covers_the_dataset_ground_truth() {
    // Transients that never heal within the budget: afflicted hosts stay
    // down for the whole week and their last usable snapshot is carried.
    let eco = ecosystem(4_245, 200, 7);
    let telemetry = Telemetry::new();
    let dataset = collect_with(
        &eco,
        CollectConfig {
            faults: FaultPlan {
                seed: 4_245,
                transient_fail_permille: 200,
                heal_after_attempts: 9,
                ..FaultPlan::none()
            },
            retry: RetryPolicy::standard(2),
            carry_forward: true,
            ..CollectConfig::default()
        },
        &telemetry,
    );
    let carried_kept: usize = dataset.weeks.iter().map(|w| w.carried_forward.len()).sum();
    assert!(carried_kept > 0, "fixture must exercise carry-forward");
    // The counter tallies live carry events; the dataset keeps only those
    // surviving the §4.1 inaccessibility filter.
    let counted = telemetry
        .snapshot()
        .counter("net.carry_forward_total")
        .unwrap_or(0);
    assert!(counted >= carried_kept as u64);
    // Carried pages are flagged, never invented: each one has a summary
    // that is an error or empty for that week.
    for week in &dataset.weeks {
        for domain in &week.carried_forward {
            assert!(week.pages.contains_key(domain));
            let summary = &week.summaries[domain];
            assert!(
                summary.status.is_none()
                    || summary.status.is_some_and(|s| (400..600).contains(&s))
                    || summary.body_len < 400,
                "{domain} carried despite a usable summary"
            );
        }
    }
}

#[test]
fn store_resumes_cleanly_mid_retry_storm() {
    let config = StudyConfig {
        seed: 4_246,
        domain_count: 80,
        timeline: Timeline::truncated(5),
        faults: FaultPlan::hostile(4_246),
        retry: RetryPolicy::standard(2),
        breaker: Some(BreakerConfig::default()),
        carry_forward: true,
        ..StudyConfig::default()
    };
    let analysis_part = |report: &str| report.split("Run telemetry").next().unwrap().to_string();
    let baseline = analysis_part(&full_report(
        &Pipeline::new(config).run().expect("baseline"),
    ));

    let store = std::env::temp_dir().join(format!(
        "webvuln-chaos-resume-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let clean = Pipeline::new(config)
        .checkpoint(&store)
        .run()
        .expect("uninterrupted checkpointed run");
    assert_eq!(baseline, analysis_part(&full_report(&clean)));
    let reference_bytes = std::fs::read(&store).expect("read reference store");

    // Kill the run mid-storm: tear the store at 60% of its length and
    // resume. Breaker and carry-forward state must be replayed from the
    // restored weeks for the continuation to match.
    let cut = reference_bytes.len() * 6 / 10;
    std::fs::write(&store, &reference_bytes[..cut]).expect("write torn store");
    let resumed = Pipeline::new(config)
        .checkpoint(&store)
        .resume(true)
        .run()
        .expect("resume after kill");
    assert_eq!(
        baseline,
        analysis_part(&full_report(&resumed)),
        "resumed chaos run must match the uninterrupted one"
    );
    let healed = std::fs::read(&store).expect("read healed store");
    assert_eq!(healed, reference_bytes, "healed store bytes must match");
    let _ = std::fs::remove_file(&store);
}

/// The tentpole determinism contract: the same study at 1, 2, and 8
/// threads produces an identical dataset, byte-identical store files,
/// and an identical analysis report — under the hostile fault profile
/// with retries, where scheduling races would show up first.
#[test]
fn study_is_byte_identical_across_threads() {
    let config = |threads| StudyConfig {
        seed: 4_247,
        domain_count: 70,
        timeline: Timeline::truncated(4),
        concurrency: threads,
        faults: FaultPlan::hostile(4_247),
        retry: RetryPolicy::standard(2),
        ..StudyConfig::default()
    };
    let analysis_part = |report: &str| report.split("Run telemetry").next().unwrap().to_string();
    let run = |threads: usize| {
        let store = std::env::temp_dir().join(format!(
            "webvuln-thread-matrix-{threads}-{}.wvstore",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&store);
        let results = Pipeline::new(config(threads))
            .checkpoint(&store)
            .run()
            .expect("study");
        let bytes = std::fs::read(&store).expect("read store");
        let _ = std::fs::remove_file(&store);
        (results, bytes)
    };
    let (one, store_one) = run(1);
    let report_one = analysis_part(&full_report(&one));
    for threads in [2, 8] {
        let (many, store_many) = run(threads);
        assert_eq!(
            store_one, store_many,
            "store bytes differ at {threads} threads"
        );
        assert_eq!(
            report_one,
            analysis_part(&full_report(&many)),
            "analysis report differs at {threads} threads"
        );
        assert_eq!(one.dataset.ranks, many.dataset.ranks);
        assert_eq!(one.dataset.filtered_out, many.dataset.filtered_out);
        for (a, b) in one.dataset.weeks.iter().zip(&many.dataset.weeks) {
            assert_eq!(a.pages, b.pages, "week {} at {threads} threads", a.week);
            assert_eq!(a.summaries, b.summaries);
            assert_eq!(a.carried_forward, b.carried_forward);
        }
    }
}

/// Kill/resume under parallelism: a single-threaded checkpointed run is
/// the reference; an 8-thread run killed mid-collection (store torn at an
/// arbitrary byte) and resumed on 8 threads must heal the store to the
/// reference bytes and reproduce the reference analysis.
#[test]
fn torn_store_resumes_identically_under_parallelism() {
    let config = |threads| StudyConfig {
        seed: 4_248,
        domain_count: 60,
        timeline: Timeline::truncated(5),
        concurrency: threads,
        faults: FaultPlan::hostile(4_248),
        retry: RetryPolicy::standard(2),
        breaker: Some(BreakerConfig::default()),
        carry_forward: true,
        ..StudyConfig::default()
    };
    let analysis_part = |report: &str| report.split("Run telemetry").next().unwrap().to_string();
    let store = std::env::temp_dir().join(format!(
        "webvuln-parallel-resume-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);

    let reference = Pipeline::new(config(1))
        .checkpoint(&store)
        .run()
        .expect("single-threaded reference");
    let reference_bytes = std::fs::read(&store).expect("read reference store");
    let baseline = analysis_part(&full_report(&reference));

    // Kill an 8-thread run mid-collection: tear at 55% of the store.
    let cut = reference_bytes.len() * 55 / 100;
    std::fs::write(&store, &reference_bytes[..cut]).expect("write torn store");
    let resumed = Pipeline::new(config(8))
        .checkpoint(&store)
        .resume(true)
        .run()
        .expect("parallel resume");
    assert_eq!(
        baseline,
        analysis_part(&full_report(&resumed)),
        "parallel resume must reproduce the single-threaded analysis"
    );
    let healed = std::fs::read(&store).expect("read healed store");
    assert_eq!(
        healed, reference_bytes,
        "parallel resume must heal the store to the single-threaded bytes"
    );
    let _ = std::fs::remove_file(&store);
}
