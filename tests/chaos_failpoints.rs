//! Crash-consistency chaos harness: kill the study at every registered
//! fail-point and prove that resuming from the snapshot store reproduces
//! an uninterrupted run exactly — byte-identical store file, identical
//! analysis report.
//!
//! The harness enumerates [`failpoint_catalog`] so a fail-point added to
//! any crate is automatically killed here; a site without a kill
//! schedule fails the test loudly instead of being skipped. The catalog
//! is partitioned across suites — the `serve.*` sites fire in a live API
//! server (`tests/chaos_serve.rs` kills those), the `watch.*` sites fire
//! in the live-ingestion daemon (`tests/chaos_watch.rs` kills those),
//! the sharded-store sites
//! fire only for a sharded checkpoint store (the shard kill matrix
//! below), and `store.scrub` fires only under `scrub` — and
//! [`every_catalog_site_has_a_kill_scenario`] proves the partition is
//! exhaustive. A further group pins the supervision contract: a
//! panicking domain is quarantined — not fatal — at 1, 2, and 8 threads
//! with identical output bytes, and the `--max-task-failures` budget
//! turns sustained failure into a structured error.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use webvuln::core::{failpoint_catalog, full_report, Pipeline, StudyConfig, StudyResults};
use webvuln::failpoint::{arm_key, arm_nth, disarm, reset, Action};
use webvuln::net::{FaultPlan, RetryPolicy, SuperviseConfig};
use webvuln::store::{scrub, AnyReader, ScrubOutcome, StoreError};
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

/// Serializes every test in this binary: the fail-point registry is
/// process-global and a site holds one arm at a time.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const DOMAINS: usize = 40;
const WEEKS: usize = 3;

fn config(seed: u64, threads: usize) -> StudyConfig {
    StudyConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
        concurrency: threads,
        faults: FaultPlan::realistic(seed),
        retry: RetryPolicy::standard(1),
        ..StudyConfig::default()
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let tag = tag.replace('.', "-");
    std::env::temp_dir().join(format!(
        "webvuln-chaosfp-{tag}-{}.wvstore",
        std::process::id()
    ))
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let tag = tag.replace('.', "-");
    let dir = std::env::temp_dir().join(format!(
        "webvuln-chaosfp-{tag}-{}.wvshards",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file of a sharded store, sorted by name — the byte-identity
/// check for directories, MANIFEST included.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).expect("read shard file"),
            )
        })
        .collect();
    entries.sort();
    entries
}

/// Like [`dir_bytes`] but only the live store files (MANIFEST and
/// `shard-*.wvstore`): quarantined copies are repair evidence, not part
/// of the served store, and their bytes legitimately depend on when a
/// scrub was interrupted.
fn live_dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    dir_bytes(dir)
        .into_iter()
        .filter(|(name, _)| name == "MANIFEST" || name.ends_with(".wvstore"))
        .collect()
}

/// The report prefix that depends only on the dataset (everything before
/// the run-specific telemetry tables).
fn analysis_part(results: &StudyResults) -> String {
    let report = full_report(results);
    report.split("Run telemetry").next().unwrap().to_string()
}

/// How many hits a site takes before the injected kill. Once-per-run
/// sites die on their first hit; per-week sites on their second (so at
/// least one week is already committed); per-task sites deep enough into
/// the run that the store holds a committed week.
fn kill_schedule(site: &str) -> u64 {
    match site {
        "phase.generate" | "phase.join" | "phase.analyze" | "store.finalize" => 1,
        "phase.crawl"
        | "phase.fingerprint"
        | "checkpoint.commit"
        | "store.footer.rewrite"
        | "store.segment.mid_write"
        | "store.manifest.rename"
        | "store.shard.mid_write" => 2,
        "crawl.fetch" => DOMAINS as u64 + 10,
        "exec.task" => 100,
        other => panic!("fail-point {other:?} has no kill schedule — add one to this harness"),
    }
}

/// Sites that only fire for a sharded checkpoint store — killed by the
/// shard kill matrix, not the single-file loop.
const SHARDED_ONLY_SITES: &[&str] = &["store.manifest.rename", "store.shard.mid_write"];

/// Sites that only fire under `scrub` — killed by
/// [`scrub_survives_a_kill_mid_repair`].
const SCRUB_ONLY_SITES: &[&str] = &["store.scrub"];

/// The single-file main loop's share of the catalog: everything except
/// the sharded-only, scrub-only, and live-server partitions. A brand-new
/// site lands here by default and then fails [`kill_schedule`] loudly
/// until it gets a kill scenario.
fn single_file_sites() -> Vec<&'static str> {
    failpoint_catalog()
        .into_iter()
        .filter(|site| {
            !SHARDED_ONLY_SITES.contains(site)
                && !SCRUB_ONLY_SITES.contains(site)
                && !webvuln::serve::FAILPOINTS.contains(site)
                && !webvuln::watch::FAILPOINTS.contains(site)
        })
        .collect()
}

/// The partition proof: the four covered sets — single-file loop, shard
/// kill matrix, scrub kill, live-server suite — union to exactly the
/// catalog, so no registered site can dodge chaos coverage.
#[test]
fn every_catalog_site_has_a_kill_scenario() {
    let mut covered = single_file_sites();
    covered.extend_from_slice(SHARDED_ONLY_SITES);
    covered.extend_from_slice(SCRUB_ONLY_SITES);
    covered.extend_from_slice(webvuln::serve::FAILPOINTS);
    covered.extend_from_slice(webvuln::watch::FAILPOINTS);
    covered.sort_unstable();
    covered.dedup();
    assert_eq!(
        covered,
        failpoint_catalog(),
        "chaos coverage partition out of sync with the fail-point catalog"
    );
    // Every partitioned-out site really is in the catalog (no typos
    // silently shrinking the main loop).
    for site in SHARDED_ONLY_SITES.iter().chain(SCRUB_ONLY_SITES) {
        assert!(
            failpoint_catalog().contains(site),
            "partitioned site {site} not in the catalog"
        );
    }
}

/// The tentpole: for every registered fail-point, crash an unsupervised
/// checkpointed study at that site, resume from whatever the store holds,
/// and require the healed store bytes and the analysis report to match an
/// uninterrupted run exactly.
#[test]
fn kill_at_every_fail_point_resumes_byte_identically() {
    let _guard = lock();
    reset();
    let seed = 7_300;
    let catalog = single_file_sites();
    assert!(!catalog.is_empty(), "fail-point catalog must not be empty");
    for required in [
        "checkpoint.commit",
        "crawl.fetch",
        "exec.task",
        "phase.analyze",
        "phase.crawl",
        "phase.fingerprint",
        "phase.generate",
        "phase.join",
        "store.finalize",
        "store.footer.rewrite",
        "store.segment.mid_write",
    ] {
        assert!(
            catalog.contains(&required),
            "catalog must register {required}"
        );
    }

    // Uninterrupted reference run.
    let reference_store = temp_store("reference");
    let _ = std::fs::remove_file(&reference_store);
    let reference = Pipeline::new(config(seed, 4))
        .checkpoint(&reference_store)
        .run()
        .expect("uninterrupted reference run");
    let reference_bytes = std::fs::read(&reference_store).expect("read reference store");
    let baseline = analysis_part(&reference);
    let _ = std::fs::remove_file(&reference_store);

    for site in catalog {
        let store = temp_store(site);
        let _ = std::fs::remove_file(&store);
        arm_nth(site, kill_schedule(site), Action::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            Pipeline::new(config(seed, 4)).checkpoint(&store).run()
        }));
        reset();
        assert!(
            crashed.is_err(),
            "fail-point {site} never fired — kill schedule stale?"
        );

        let resumed = Pipeline::new(config(seed, 4))
            .checkpoint(&store)
            .resume(true)
            .run()
            .unwrap_or_else(|e| panic!("resume after kill at {site}: {e}"));
        let healed = std::fs::read(&store).expect("read healed store");
        assert_eq!(
            healed, reference_bytes,
            "store bytes after kill-and-resume at {site} must match the clean run"
        );
        assert_eq!(
            analysis_part(&resumed),
            baseline,
            "analysis report after kill-and-resume at {site} must match the clean run"
        );
        let _ = std::fs::remove_file(&store);
    }
}

/// Shard count for the sharded chaos group — enough that domains spread
/// across several files and one shard's death leaves most data live.
const SHARDS: usize = 4;

/// The sharded tentpole: kill a sharded checkpointed study at the
/// commit-protocol sites — mid shard write (any shard and a pinned
/// shard), and mid manifest rename (during create and while publishing
/// a later week) — at 1, 2, and 8 commit threads. The crashed store must
/// never open as a mixed epoch, and resume must converge to the
/// byte-identical directory (MANIFEST included) and analysis report of
/// an uninterrupted run.
#[test]
fn sharded_kill_matrix_resumes_byte_identically() {
    let _guard = lock();
    reset();
    let seed = 7_310;

    let reference_dir = temp_store_dir("shard-reference");
    let reference = Pipeline::new(config(seed, 4))
        .shards(SHARDS)
        .checkpoint(&reference_dir)
        .run()
        .expect("uninterrupted sharded reference run");
    let reference_bytes = dir_bytes(&reference_dir);
    let baseline = analysis_part(&reference);
    let _ = std::fs::remove_dir_all(&reference_dir);

    // (site, pinned shard key, hits before the kill)
    let kills: &[(&str, Option<&str>, u64)] = &[
        ("store.manifest.rename", None, 1), // creating the group
        ("store.manifest.rename", None, 3), // publishing week 1
        (
            "store.shard.mid_write",
            None,
            kill_schedule("store.shard.mid_write"),
        ),
        ("store.shard.mid_write", Some("2"), 1), // shard 2's first write
    ];
    for threads in [1, 2, 8] {
        for &(site, key, nth) in kills {
            let tag = format!("shardkill-{site}-{}-{threads}", key.unwrap_or("any"));
            let dir = temp_store_dir(&tag);
            match key {
                Some(key) => arm_key(site, key, Action::Panic),
                None => arm_nth(site, nth, Action::Panic),
            }
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                Pipeline::new(config(seed, threads))
                    .shards(SHARDS)
                    .checkpoint(&dir)
                    .run()
            }));
            reset();
            assert!(
                crashed.is_err(),
                "fail-point {site} (key {key:?}) never fired at {threads} threads"
            );

            // The crash window is epoch E or E+1, never a mix: whatever
            // the kill left behind either opens consistently (reads
            // serve the committed prefix) or has no manifest yet.
            match AnyReader::open(&dir) {
                Ok(reader) => {
                    reader.verify().unwrap_or_else(|e| {
                        panic!("crashed store at {site}/{threads}t failed verify: {e}")
                    });
                }
                Err(StoreError::MissingGenesis) => {} // killed during create
                Err(e) => panic!("crashed store at {site}/{threads}t unopenable: {e}"),
            }

            let resumed = Pipeline::new(config(seed, threads))
                .shards(SHARDS)
                .checkpoint(&dir)
                .resume(true)
                .run()
                .unwrap_or_else(|e| panic!("resume after kill at {site}/{threads}t: {e}"));
            assert_eq!(
                dir_bytes(&dir),
                reference_bytes,
                "store directory after kill-and-resume at {site} (key {key:?}, \
                 {threads} threads) must match the clean run byte for byte"
            );
            assert_eq!(
                analysis_part(&resumed),
                baseline,
                "analysis report after kill-and-resume at {site}/{threads}t diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Acceptance pin: a shard holding fewer weeks than the manifest is a
/// mixed-epoch store no crash can produce — resume refuses it outright,
/// `scrub --repair` rolls the whole group back to the last epoch every
/// shard can honour, and resuming then reproduces the reference run.
#[test]
fn a_tampered_shard_is_refused_then_scrub_repairs_it() {
    let _guard = lock();
    reset();
    let seed = 7_311;

    let dir = temp_store_dir("tampered");
    let reference = Pipeline::new(config(seed, 4))
        .shards(SHARDS)
        .checkpoint(&dir)
        .run()
        .expect("sharded run");
    let baseline = analysis_part(&reference);
    let reference_shards: Vec<(String, Vec<u8>)> = live_dir_bytes(&dir)
        .into_iter()
        .filter(|(name, _)| name != "MANIFEST")
        .collect();

    // Chop a shard roughly in half: it loses committed weeks (and its
    // finalize) while the manifest still requires them.
    let victim = dir.join(webvuln::store::shard_file_name(1));
    let len = std::fs::metadata(&victim).expect("stat shard").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .expect("open shard");
    file.set_len(len / 2).expect("truncate shard");
    drop(file);

    let message = match Pipeline::new(config(seed, 4))
        .shards(SHARDS)
        .checkpoint(&dir)
        .resume(true)
        .run()
    {
        Ok(_) => panic!("a mixed-epoch store must refuse to resume"),
        Err(err) => err.to_string(),
    };
    assert!(
        message.contains("mixed epoch") || message.contains("behind the manifest"),
        "unexpected refusal: {message}"
    );

    // Assess-only scrub names the problem without touching anything:
    // an unrepaired behind-shard is the severe verdict.
    let report = scrub(&dir, false).expect("assess scrub");
    assert_eq!(report.outcome, ScrubOutcome::Quarantined);
    assert!(!report.repaired);
    assert!(
        report.render().contains("mixed epoch"),
        "assessment must name the mixed epoch:\n{}",
        report.render()
    );

    // Repair rolls the group back to the longest prefix every shard
    // still holds; resuming from there reproduces the reference run.
    let report = scrub(&dir, true).expect("repair scrub");
    assert_eq!(report.outcome, ScrubOutcome::Healed);
    assert!(report.repaired);
    assert!(report.rolled_back_to.is_some(), "group must roll back");

    let resumed = Pipeline::new(config(seed, 4))
        .shards(SHARDS)
        .checkpoint(&dir)
        .resume(true)
        .run()
        .expect("resume after repair");
    let healed_shards: Vec<(String, Vec<u8>)> = live_dir_bytes(&dir)
        .into_iter()
        .filter(|(name, _)| name != "MANIFEST")
        .collect();
    assert_eq!(
        healed_shards, reference_shards,
        "repaired shards must match the clean run byte for byte"
    );
    assert_eq!(analysis_part(&resumed), baseline);
    // The manifest records the extra rollback epoch but agrees on shape.
    let reader = AnyReader::open(&dir).expect("open repaired store");
    assert_eq!(reader.weeks_committed(), WEEKS);
    assert!(reader.is_finalized());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `store.scrub` coverage: kill a repairing scrub at every per-shard
/// step (assessment and apply), re-run it, and require the surviving
/// store to match an uninterrupted repair byte for byte — quarantine
/// copies excluded, since their content legitimately depends on where
/// the first scrub died.
#[test]
fn scrub_survives_a_kill_mid_repair() {
    let _guard = lock();
    reset();
    let seed = 7_312;

    let build = |tag: &str| {
        let dir = temp_store_dir(tag);
        Pipeline::new(config(seed, 4))
            .shards(SHARDS)
            .checkpoint(&dir)
            .run()
            .expect("sharded run");
        // Same tamper as above: shard 2 loses committed weeks.
        let victim = dir.join(webvuln::store::shard_file_name(2));
        let len = std::fs::metadata(&victim).expect("stat").len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .expect("open");
        file.set_len(len / 2).expect("truncate");
        drop(file);
        dir
    };

    // Uninterrupted repair of the same damage.
    let clean_dir = build("scrub-clean");
    let clean_report = scrub(&clean_dir, true).expect("clean repair");
    assert!(clean_report.repaired);
    let clean_bytes = live_dir_bytes(&clean_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Kill at every per-shard scrub step: hits 1..=SHARDS are the
    // assessments, SHARDS+1..=2*SHARDS the apply steps.
    for nth in 1..=(2 * SHARDS as u64) {
        let dir = build(&format!("scrub-kill-{nth}"));
        arm_nth("store.scrub", nth, Action::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| scrub(&dir, true)));
        reset();
        assert!(crashed.is_err(), "store.scrub hit {nth} never fired");

        let report = scrub(&dir, true).expect("re-run scrub after kill");
        assert_eq!(report.outcome, ScrubOutcome::Healed, "kill at hit {nth}");
        assert_eq!(
            live_dir_bytes(&dir),
            clean_bytes,
            "store after killed-then-rerun scrub (hit {nth}) must match an \
             uninterrupted repair"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Acceptance pin: under supervision a domain whose fetch task panics in
/// every week is quarantined — the study completes (within the failure
/// budget), surfaces the quarantine in telemetry and the report, and the
/// output is byte-identical at 1, 2, and 8 threads.
#[test]
fn supervised_study_quarantines_a_panicking_domain_across_threads() {
    let _guard = lock();
    reset();
    let seed = 7_301;
    let eco = Ecosystem::generate(EcosystemConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    });
    let victim = eco.domain_names()[11].clone();
    arm_key("crawl.fetch", &victim, Action::Panic);

    let run = |threads: usize| {
        let store = temp_store(&format!("supervised-{threads}"));
        let _ = std::fs::remove_file(&store);
        let results = Pipeline::new(config(seed, threads))
            .supervise(SuperviseConfig::new())
            .max_task_failures(10)
            .checkpoint(&store)
            .run()
            .expect("supervised study must survive a panicking domain");
        let bytes = std::fs::read(&store).expect("read store");
        let _ = std::fs::remove_file(&store);
        (results, bytes)
    };
    let (one, bytes_one) = run(1);
    let report_one = analysis_part(&one);
    for threads in [2, 8] {
        let (many, bytes_many) = run(threads);
        assert_eq!(
            bytes_one, bytes_many,
            "store bytes differ at {threads} threads"
        );
        assert_eq!(
            report_one,
            analysis_part(&many),
            "analysis report differs at {threads} threads"
        );
    }
    disarm("crawl.fetch");

    // The victim panicked once per week and was quarantined each time.
    let panics = one.telemetry.counter("exec.panics_total").unwrap_or(0);
    assert_eq!(panics, WEEKS as u64, "one quarantined fetch per week");
    assert_eq!(
        one.telemetry.counter("exec.quarantined_total"),
        Some(WEEKS as u64)
    );
    // The quarantined domain is carried as a failed fetch, not dropped:
    // every week still accounts for all domains minus the §4.1 filter.
    let report = full_report(&one);
    assert!(
        report.contains("Failure containment"),
        "report must render the containment section"
    );
}

/// Acceptance pin: the failure budget is a hard ceiling — a study whose
/// quarantine count exceeds `--max-task-failures` degrades gracefully up
/// to the budget, then fails with a structured error instead of limping
/// on.
#[test]
fn exhausted_failure_budget_is_a_structured_error() {
    let _guard = lock();
    reset();
    let seed = 7_302;
    let eco = Ecosystem::generate(EcosystemConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    });
    let victim = eco.domain_names()[3].clone();
    arm_key("crawl.fetch", &victim, Action::Panic);
    // Budget 1 < the 3 weekly quarantines the victim will accrue.
    let outcome = Pipeline::new(config(seed, 4))
        .supervise(SuperviseConfig::new())
        .max_task_failures(1)
        .run();
    disarm("crawl.fetch");
    let message = match outcome {
        Ok(_) => panic!("budget of 1 must not survive 3 quarantines"),
        Err(e) => e.to_string(),
    };
    assert!(
        message.contains("task-failure budget exceeded"),
        "unexpected error: {message}"
    );
    assert!(
        message.contains("(budget 1)"),
        "unexpected error: {message}"
    );
}
