//! Crash-consistency chaos harness: kill the study at every registered
//! fail-point and prove that resuming from the snapshot store reproduces
//! an uninterrupted run exactly — byte-identical store file, identical
//! analysis report.
//!
//! The harness enumerates [`failpoint_catalog`] so a fail-point added to
//! any crate is automatically killed here; a site without a kill
//! schedule fails the test loudly instead of being skipped. A second
//! group pins the supervision contract: a panicking domain is
//! quarantined — not fatal — at 1, 2, and 8 threads with identical
//! output bytes, and the `--max-task-failures` budget turns sustained
//! failure into a structured error.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use webvuln::core::{failpoint_catalog, full_report, Pipeline, StudyConfig, StudyResults};
use webvuln::failpoint::{arm_key, arm_nth, disarm, reset, Action};
use webvuln::net::{FaultPlan, RetryPolicy, SuperviseConfig};
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

/// Serializes every test in this binary: the fail-point registry is
/// process-global and a site holds one arm at a time.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const DOMAINS: usize = 40;
const WEEKS: usize = 3;

fn config(seed: u64, threads: usize) -> StudyConfig {
    StudyConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
        concurrency: threads,
        faults: FaultPlan::realistic(seed),
        retry: RetryPolicy::standard(1),
        ..StudyConfig::default()
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let tag = tag.replace('.', "-");
    std::env::temp_dir().join(format!("webvuln-chaosfp-{tag}-{}.wvstore", std::process::id()))
}

/// The report prefix that depends only on the dataset (everything before
/// the run-specific telemetry tables).
fn analysis_part(results: &StudyResults) -> String {
    let report = full_report(results);
    report.split("Run telemetry").next().unwrap().to_string()
}

/// How many hits a site takes before the injected kill. Once-per-run
/// sites die on their first hit; per-week sites on their second (so at
/// least one week is already committed); per-task sites deep enough into
/// the run that the store holds a committed week.
fn kill_schedule(site: &str) -> u64 {
    match site {
        "phase.generate" | "phase.join" | "phase.analyze" | "store.finalize" => 1,
        "phase.crawl" | "phase.fingerprint" | "checkpoint.commit" | "store.footer.rewrite"
        | "store.segment.mid_write" => 2,
        "crawl.fetch" => DOMAINS as u64 + 10,
        "exec.task" => 100,
        other => panic!("fail-point {other:?} has no kill schedule — add one to this harness"),
    }
}

/// The tentpole: for every registered fail-point, crash an unsupervised
/// checkpointed study at that site, resume from whatever the store holds,
/// and require the healed store bytes and the analysis report to match an
/// uninterrupted run exactly.
#[test]
fn kill_at_every_fail_point_resumes_byte_identically() {
    let _guard = lock();
    reset();
    let seed = 7_300;
    let catalog = failpoint_catalog();
    assert!(!catalog.is_empty(), "fail-point catalog must not be empty");
    for required in [
        "checkpoint.commit",
        "crawl.fetch",
        "exec.task",
        "phase.analyze",
        "phase.crawl",
        "phase.fingerprint",
        "phase.generate",
        "phase.join",
        "store.finalize",
        "store.footer.rewrite",
        "store.segment.mid_write",
    ] {
        assert!(
            catalog.contains(&required),
            "catalog must register {required}"
        );
    }

    // Uninterrupted reference run.
    let reference_store = temp_store("reference");
    let _ = std::fs::remove_file(&reference_store);
    let reference = Pipeline::new(config(seed, 4))
        .checkpoint(&reference_store)
        .run()
        .expect("uninterrupted reference run");
    let reference_bytes = std::fs::read(&reference_store).expect("read reference store");
    let baseline = analysis_part(&reference);
    let _ = std::fs::remove_file(&reference_store);

    for site in catalog {
        let store = temp_store(site);
        let _ = std::fs::remove_file(&store);
        arm_nth(site, kill_schedule(site), Action::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            Pipeline::new(config(seed, 4)).checkpoint(&store).run()
        }));
        reset();
        assert!(
            crashed.is_err(),
            "fail-point {site} never fired — kill schedule stale?"
        );

        let resumed = Pipeline::new(config(seed, 4))
            .checkpoint(&store)
            .resume(true)
            .run()
            .unwrap_or_else(|e| panic!("resume after kill at {site}: {e}"));
        let healed = std::fs::read(&store).expect("read healed store");
        assert_eq!(
            healed, reference_bytes,
            "store bytes after kill-and-resume at {site} must match the clean run"
        );
        assert_eq!(
            analysis_part(&resumed),
            baseline,
            "analysis report after kill-and-resume at {site} must match the clean run"
        );
        let _ = std::fs::remove_file(&store);
    }
}

/// Acceptance pin: under supervision a domain whose fetch task panics in
/// every week is quarantined — the study completes (within the failure
/// budget), surfaces the quarantine in telemetry and the report, and the
/// output is byte-identical at 1, 2, and 8 threads.
#[test]
fn supervised_study_quarantines_a_panicking_domain_across_threads() {
    let _guard = lock();
    reset();
    let seed = 7_301;
    let eco = Ecosystem::generate(EcosystemConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    });
    let victim = eco.domain_names()[11].clone();
    arm_key("crawl.fetch", &victim, Action::Panic);

    let run = |threads: usize| {
        let store = temp_store(&format!("supervised-{threads}"));
        let _ = std::fs::remove_file(&store);
        let results = Pipeline::new(config(seed, threads))
            .supervise(SuperviseConfig::new())
            .max_task_failures(10)
            .checkpoint(&store)
            .run()
            .expect("supervised study must survive a panicking domain");
        let bytes = std::fs::read(&store).expect("read store");
        let _ = std::fs::remove_file(&store);
        (results, bytes)
    };
    let (one, bytes_one) = run(1);
    let report_one = analysis_part(&one);
    for threads in [2, 8] {
        let (many, bytes_many) = run(threads);
        assert_eq!(
            bytes_one, bytes_many,
            "store bytes differ at {threads} threads"
        );
        assert_eq!(
            report_one,
            analysis_part(&many),
            "analysis report differs at {threads} threads"
        );
    }
    disarm("crawl.fetch");

    // The victim panicked once per week and was quarantined each time.
    let panics = one.telemetry.counter("exec.panics_total").unwrap_or(0);
    assert_eq!(panics, WEEKS as u64, "one quarantined fetch per week");
    assert_eq!(
        one.telemetry.counter("exec.quarantined_total"),
        Some(WEEKS as u64)
    );
    // The quarantined domain is carried as a failed fetch, not dropped:
    // every week still accounts for all domains minus the §4.1 filter.
    let report = full_report(&one);
    assert!(
        report.contains("Failure containment"),
        "report must render the containment section"
    );
}

/// Acceptance pin: the failure budget is a hard ceiling — a study whose
/// quarantine count exceeds `--max-task-failures` degrades gracefully up
/// to the budget, then fails with a structured error instead of limping
/// on.
#[test]
fn exhausted_failure_budget_is_a_structured_error() {
    let _guard = lock();
    reset();
    let seed = 7_302;
    let eco = Ecosystem::generate(EcosystemConfig {
        seed,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    });
    let victim = eco.domain_names()[3].clone();
    arm_key("crawl.fetch", &victim, Action::Panic);
    // Budget 1 < the 3 weekly quarantines the victim will accrue.
    let outcome = Pipeline::new(config(seed, 4))
        .supervise(SuperviseConfig::new())
        .max_task_failures(1)
        .run();
    disarm("crawl.fetch");
    let message = match outcome {
        Ok(_) => panic!("budget of 1 must not survive 3 quarantines"),
        Err(e) => e.to_string(),
    };
    assert!(
        message.contains("task-failure budget exceeded"),
        "unexpected error: {message}"
    );
    assert!(message.contains("(budget 1)"), "unexpected error: {message}");
}
