//! Chaos tests for the query API server: every `serve.*` fail-point is
//! armed against a live server and the listener must survive — a fault
//! costs at most the one request or connection it hits, never the
//! process, and the `serve.*` counters account for every request.
//!
//! The serving layer keeps its own fail-point catalog
//! ([`webvuln::serve::FAILPOINTS`]) because its sites fire in a live
//! server rather than under `Pipeline::run`; this harness enumerates
//! that catalog and fails loudly when a site gains no scenario here.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use webvuln::analysis::Collector;
use webvuln::failpoint::{arm_key, arm_nth, reset, Action};
use webvuln::net::{fetch, Status, TcpConnector};
use webvuln::telemetry::Registry;
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};
use webvuln::{ApiServer, QueryService, ServeConfig};

/// Serializes every test in this binary: the fail-point registry is
/// process-global and a site holds one arm at a time.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "webvuln-serve-chaos-{tag}-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn start(tag: &str, config: ServeConfig) -> (ApiServer, Registry) {
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 77,
        domain_count: 40,
        timeline: Timeline::truncated(3),
    }));
    let path = temp_store(tag);
    Collector::new()
        .threads(2)
        .checkpoint(&path)
        .run(&eco)
        .expect("collect");
    let svc = Arc::new(QueryService::open(&path).expect("open"));
    let registry = Registry::new();
    let server = ApiServer::serve(svc, config, &registry).expect("bind");
    (server, registry)
}

fn get(server: &ApiServer, target: &str) -> Result<(Status, String), webvuln::net::NetError> {
    let connector = TcpConnector::fixed(server.addr());
    fetch(&connector, "chaos.test", target).map(|r| (r.status, r.body_text()))
}

/// Every catalogued site must have a scenario in this file. A new
/// `serve.*` fail-point fails here until it gains chaos coverage.
#[test]
fn every_serve_failpoint_has_a_scenario() {
    let covered = ["serve.accept", "serve.handler", "serve.mid_response"];
    for site in webvuln::serve::FAILPOINTS {
        assert!(
            covered.contains(site),
            "fail-point {site:?} has no chaos scenario in tests/chaos_serve.rs"
        );
    }
    assert_eq!(webvuln::serve::FAILPOINTS.len(), covered.len());
}

#[test]
fn handler_panic_is_quarantined_to_one_request() {
    let _g = lock();
    reset();
    let (server, registry) = start("panic", ServeConfig::default());

    arm_key("serve.handler", "library_prevalence", Action::Panic);
    let (status, body) = get(&server, "/library/jquery/prevalence").expect("fetch");
    assert_eq!(status, Status::SERVICE_UNAVAILABLE, "{body}");
    assert!(body.contains("handler panicked"), "{body}");

    // The listener and the worker pool survived: the same route answers
    // normally once the fault is gone, on a brand-new connection.
    reset();
    let (status, body) = get(&server, "/library/jquery/prevalence").expect("fetch");
    assert_eq!(status, Status::OK, "{body}");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.handler_panics_total"), Some(1));
    // Both requests — the panicked one included — are accounted for.
    assert_eq!(snap.counter("serve.requests_total"), Some(2));
    let answered = snap.counter("serve.responses_2xx_total").unwrap_or(0)
        + snap.counter("serve.responses_4xx_total").unwrap_or(0)
        + snap.counter("serve.responses_5xx_total").unwrap_or(0);
    assert_eq!(answered, 2);
}

#[test]
fn handler_error_injection_maps_to_503() {
    let _g = lock();
    reset();
    let (server, registry) = start("inject", ServeConfig::default());

    arm_key("serve.handler", "healthz", Action::Error);
    let (status, body) = get(&server, "/healthz").expect("fetch");
    assert_eq!(status, Status::SERVICE_UNAVAILABLE, "{body}");
    assert!(body.starts_with("{\"error\":"), "{body}");

    reset();
    let (status, _) = get(&server, "/healthz").expect("fetch");
    assert_eq!(status, Status::OK);
    assert_eq!(
        registry.snapshot().counter("serve.responses_5xx_total"),
        Some(1)
    );
}

#[test]
fn handler_delay_slows_but_answers() {
    let _g = lock();
    reset();
    let (server, _registry) = start("delay", ServeConfig::default());

    arm_key("serve.handler", "healthz", Action::Delay(50_000_000));
    let started = std::time::Instant::now();
    let (status, _) = get(&server, "/healthz").expect("fetch");
    assert_eq!(status, Status::OK);
    assert!(
        started.elapsed() >= Duration::from_millis(40),
        "injected delay was not slept: {:?}",
        started.elapsed()
    );
    reset();
}

#[test]
fn accept_fault_drops_one_connection_not_the_listener() {
    let _g = lock();
    reset();
    let (server, registry) = start("accept", ServeConfig::default());

    // The first connection is killed before it reaches the pool; the
    // client sees a peer close with no response.
    arm_nth("serve.accept", 1, Action::Panic);
    let first = get(&server, "/healthz");
    assert!(first.is_err(), "dropped connection produced {first:?}");

    // The very next connection is served normally.
    let (status, _) = get(&server, "/healthz").expect("fetch");
    assert_eq!(status, Status::OK);
    reset();

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.accept_faults_total"), Some(1));
    assert_eq!(snap.counter("serve.connections_total"), Some(2));
    // The dropped connection never became a request.
    assert_eq!(snap.counter("serve.requests_total"), Some(1));
}

#[test]
fn mid_response_kill_tears_the_body_but_not_the_server() {
    let _g = lock();
    reset();
    let (server, registry) = start("midkill", ServeConfig::default());

    arm_key("serve.mid_response", "week_landscape", Action::Error);
    // The response is cut after half its bytes: the fetch either fails
    // to parse or returns a truncated body — never a clean success.
    let torn = get(&server, "/week/1/landscape");
    match torn {
        Err(_) => {}
        Ok((_, body)) => assert!(
            !body.ends_with('}'),
            "kill site did not tear the body: {body}"
        ),
    }
    reset();

    // The server survives and the same route answers completely.
    let (status, body) = get(&server, "/week/1/landscape").expect("fetch");
    assert_eq!(status, Status::OK);
    assert!(body.ends_with('}'), "{body}");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.killed_mid_response_total"), Some(1));
    // Both requests were handled and classified before the wire kill.
    assert_eq!(snap.counter("serve.requests_total"), Some(2));
    assert_eq!(snap.counter("serve.responses_2xx_total"), Some(2));
}

#[test]
fn slow_client_times_out_without_blocking_the_pool() {
    let _g = lock();
    reset();
    let config = ServeConfig {
        threads: 1, // a single worker: a stuck slow client would block everyone
        idle_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (server, registry) = start("slow", config);

    // A client that sends half a request line and stalls.
    let mut slow = TcpStream::connect(server.addr()).expect("connect");
    slow.write_all(b"GET /healthz HT").expect("partial write");

    // Wait out the idle timeout, then prove the single worker is free
    // again by completing a normal request.
    std::thread::sleep(Duration::from_millis(600));
    let (status, _) = get(&server, "/healthz").expect("fetch after slow client");
    assert_eq!(status, Status::OK);

    // The stalled connection was closed by the server (EOF / reset).
    slow.set_read_timeout(Some(Duration::from_secs(2))).ok();
    let mut rest = Vec::new();
    let _ = slow.read_to_end(&mut rest);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.connections_total"), Some(2));
    assert_eq!(snap.counter("serve.requests_total"), Some(1));
}

#[test]
fn connection_limit_rejects_with_503() {
    let _g = lock();
    reset();
    let config = ServeConfig {
        threads: 1,
        max_connections: 1,
        idle_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let (server, registry) = start("limit", config);

    // Park one connection to fill the admission limit.
    let parked = TcpStream::connect(server.addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(100));

    // The next connection is answered with a structured 503.
    let over = get(&server, "/healthz");
    match over {
        Ok((status, body)) => {
            assert_eq!(status, Status::SERVICE_UNAVAILABLE, "{body}");
            assert!(body.contains("connection limit"), "{body}");
        }
        // Depending on timing the rejection can race the read; a closed
        // connection is also an acceptable refusal.
        Err(_) => {}
    }
    drop(parked);

    assert!(
        registry
            .snapshot()
            .counter("serve.rejected_connections_total")
            .unwrap_or(0)
            >= 1
    );
}
