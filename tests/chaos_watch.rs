//! Chaos harness for the watch daemon: kill the live-ingestion loop at
//! every `watch.*` fail-point, restart it, and prove convergence — the
//! store directory is byte-identical to an unkilled run, the live
//! accumulator matches a cold [`fold_study`] over the store, and the
//! alert log holds every owed alert exactly once (no losses, no
//! duplicates), whatever the thread or shard count.
//!
//! The corpus is real pipeline output under the hostile fault profile:
//! one checkpointed study run is split back into per-week spool files
//! and replayed through the daemon, so ingestion sees exactly the data
//! shapes (dead weeks, carried-forward pages, filtered domains) the
//! batch path produces. A CVE delta file targeting the corpus's most
//! common library drives the retro-scan and the outbox.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use webvuln::analysis::fold_study;
use webvuln::core::{Pipeline, StudyConfig};
use webvuln::failpoint::{arm, arm_nth, disarm, reset, Action};
use webvuln::net::FaultPlan;
use webvuln::resilience::RetryPolicy;
use webvuln::store::{AnyReader, Genesis, WeekData};
use webvuln::telemetry::Telemetry;
use webvuln::watch::{
    load_watch_state, supervise, write_genesis_file, write_week_file, Alert, OutboxSnapshot,
    SupervisorConfig, TickReport, WatchConfig, Watcher,
};
use webvuln::webgen::Timeline;

/// Serializes every test in this binary: the fail-point registry is
/// process-global and a site holds one arm at a time.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const DOMAINS: usize = 60;
const WEEKS: usize = 6;

/// A delta batch whose first record claims every jquery version the
/// corpus can contain, so the retro-scan is guaranteed matches.
const DELTA: &str = "\
# webvuln cve delta v1
id: CVE-2099-9999
library: jquery
claimed: < 9.0.0
attack: xss
disclosed: 2022-01-01

id: SNYK-TEST-0001
library: underscore
claimed: < 9.0.0
attack: arbitrary-code-injection
disclosed: 2021-06-01
";

struct Corpus {
    genesis: Genesis,
    weeks: Vec<WeekData>,
}

static CORPUS: OnceLock<Corpus> = OnceLock::new();

/// One hostile-fault pipeline run, split back into genesis + weeks.
fn corpus() -> &'static Corpus {
    CORPUS.get_or_init(|| {
        let store = std::env::temp_dir().join(format!(
            "webvuln-chaoswatch-corpus-{}.wvstore",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&store);
        Pipeline::new(StudyConfig {
            seed: 8_100,
            domain_count: DOMAINS,
            timeline: Timeline::truncated(WEEKS),
            faults: FaultPlan::hostile(8_100),
            carry_forward: true,
            ..StudyConfig::default()
        })
        .checkpoint(&store)
        .run()
        .expect("corpus pipeline run");
        let reader = AnyReader::open(&store).expect("open corpus store");
        let genesis = reader.genesis().clone();
        let weeks = (0..reader.weeks_committed())
            .map(|w| reader.week(w).expect("corpus week"))
            .collect();
        let _ = std::fs::remove_file(&store);
        Corpus { genesis, weeks }
    })
}

/// A fresh watch root with `weeks` corpus weeks spooled and (optionally)
/// the delta batch already landed.
fn seed_root(tag: &str, weeks: usize, with_delta: bool) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "webvuln-chaoswatch-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).expect("create spool");
    let corpus = corpus();
    write_genesis_file(&spool, &corpus.genesis).expect("write genesis");
    for week in &corpus.weeks[..weeks] {
        write_week_file(&spool, week).expect("write week");
    }
    if with_delta {
        land_delta(&root);
    }
    root
}

fn land_delta(root: &Path) {
    let deltas = root.join("deltas");
    std::fs::create_dir_all(&deltas).expect("create deltas");
    std::fs::write(deltas.join("2026-08-batch.cvedelta"), DELTA).expect("write delta");
}

/// Opens a watcher and ticks until a tick changes nothing.
fn run_to_idle(root: &Path, threads: usize, shards: usize) -> (Watcher, Vec<TickReport>) {
    let telemetry = Telemetry::new();
    let cfg = WatchConfig::new(root).threads(threads).shards(shards);
    let mut watcher = Watcher::open(cfg, &telemetry)
        .unwrap_or_else(|e| panic!("open watcher at {}: {e}", root.display()));
    let mut reports = Vec::new();
    loop {
        let tick = watcher
            .tick()
            .unwrap_or_else(|e| panic!("tick at {}: {e}", root.display()));
        let idle = tick.is_idle();
        reports.push(tick);
        if idle {
            break;
        }
        assert!(reports.len() < 16, "watcher failed to reach idle");
    }
    (watcher, reports)
}

/// Every file of the watch store, sorted by name — the byte-identity
/// check for kill-and-restart convergence.
fn store_bytes(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(root.join("store"))
        .expect("read store dir")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).expect("read store file"),
            )
        })
        .collect();
    entries.sort();
    entries
}

/// The delivered-alert log, sorted. Sorted-line equality is the
/// no-lost-no-duplicated-alerts check: a lost alert shrinks the set, a
/// duplicated delivery repeats a line.
fn alert_lines(root: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(root.join("alerts.log")).unwrap_or_default();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

/// Accumulator equality is stated over the *finished artifacts*: raw
/// accumulator state holds per-shard-ordered event lists (merge order
/// is not canonical), while `finish` canonicalizes everything a report
/// can observe.
fn live_fingerprint(watcher: &Watcher) -> String {
    format!("{:#?}", watcher.live().finish(watcher.db()))
}

fn cold_fold_fingerprint(root: &Path, watcher: &Watcher, threads: usize) -> String {
    let reader = AnyReader::open_degraded(&root.join("store")).expect("open store");
    let cold = fold_study(&reader, watcher.db(), threads).expect("cold fold");
    format!("{:#?}", cold.finish(watcher.db()))
}

/// The unkilled reference at (threads, shards): store bytes, live
/// fingerprint, sorted alert log.
fn reference(threads: usize, shards: usize) -> (Vec<(String, Vec<u8>)>, String, Vec<String>) {
    let root = seed_root(&format!("ref-{threads}t-{shards}s"), WEEKS, true);
    let (watcher, reports) = run_to_idle(&root, threads, shards);
    assert_eq!(watcher.weeks_committed(), WEEKS);
    assert_eq!(reports[0].weeks_ingested, WEEKS);
    assert_eq!(reports[0].deltas_applied, 1);
    assert!(
        reports[0].alerts_enqueued >= 3,
        "the corpus must expose at least 3 (cve, domain) pairs, got {}",
        reports[0].alerts_enqueued
    );
    assert_eq!(reports[0].alerts_delivered, reports[0].alerts_enqueued);
    let result = (
        store_bytes(&root),
        live_fingerprint(&watcher),
        alert_lines(&root),
    );
    drop(watcher);
    let _ = std::fs::remove_dir_all(&root);
    result
}

/// Baseline integrity: a clean daemon run commits every spooled week,
/// its live accumulator equals a cold fold over the store it wrote, the
/// retro-scan delivers a deduplicated alert per exposed (cve, domain)
/// pair, and a second daemon over the same root finds nothing to do.
#[test]
fn live_accumulator_matches_a_cold_fold_and_reopen_is_idle() {
    let _guard = lock();
    reset();
    let root = seed_root("baseline", WEEKS, true);
    let (watcher, reports) = run_to_idle(&root, 2, 4);

    assert_eq!(watcher.weeks_committed(), WEEKS);
    assert_eq!(reports[0].weeks_ingested, WEEKS);
    assert_eq!(reports[0].deltas_applied, 1);
    assert!(reports[0].alerts_enqueued > 0, "delta must produce alerts");
    assert_eq!(reports[0].alerts_deduped, 0);

    // Live state == cold fold, at several fold widths.
    let live = live_fingerprint(&watcher);
    for threads in [1, 2, 8] {
        assert_eq!(
            live,
            cold_fold_fingerprint(&root, &watcher, threads),
            "live accumulator diverged from a {threads}-thread cold fold"
        );
    }

    // Exactly-once delivery: every enqueued alert has one log line, and
    // every line parses back to a distinct outbox ID.
    let lines = alert_lines(&root);
    assert_eq!(lines.len(), reports[0].alerts_enqueued);
    let mut ids: Vec<u64> = lines
        .iter()
        .map(|l| Alert::log_line_id(l).expect("parseable alert line"))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), lines.len(), "duplicate alert IDs in the log");
    assert_eq!(watcher.outbox().pending_count(), 0);

    // The read-only observer agrees with the daemon.
    let state = load_watch_state(&root);
    assert!(state.store_present);
    assert_eq!(state.weeks_committed, WEEKS as u64);
    assert_eq!(state.alerts_delivered, lines.len() as u64);
    assert_eq!(state.alerts_pending, 0);
    assert_eq!(state.deltas_applied, 1);

    // Reopen over the same root: the spool was consumed, the delta is
    // journaled, the outbox is drained — the first tick is already idle.
    let bytes = store_bytes(&root);
    drop(watcher);
    let (second, reports) = run_to_idle(&root, 2, 4);
    assert_eq!(reports.len(), 1, "reopened daemon must be idle at once");
    assert_eq!(live_fingerprint(&second), live);
    assert_eq!(store_bytes(&root), bytes, "reopen must not touch the store");

    // Redelivering an already-committed week is consumed as a no-op.
    write_week_file(&root.join("spool"), &corpus().weeks[2]).expect("redeliver");
    drop(second);
    let (third, reports) = run_to_idle(&root, 2, 4);
    assert_eq!(reports[0].weeks_skipped, 1);
    assert_eq!(reports[0].weeks_ingested, 0);
    assert_eq!(live_fingerprint(&third), live);
    assert_eq!(store_bytes(&root), bytes);
    let _ = std::fs::remove_dir_all(&root);
}

/// The tentpole: kill the daemon at every `watch.*` fail-point (several
/// positions each), restart it, and require byte-identical convergence
/// with the unkilled run — store, live accumulator, and alert log.
#[test]
fn kill_at_every_watch_fail_point_then_restart_converges() {
    let _guard = lock();
    reset();
    let (ref_bytes, ref_live, ref_alerts) = reference(2, 4);

    // (site, 1-based hit). watch.ingest hits once per committed week;
    // watch.outbox.append once per fresh alert; watch.outbox.deliver
    // twice per owed alert (the pre-log `:deliver` window, then the
    // post-log pre-ack `:ack` window); watch.retro once per delta file.
    let kills: &[(&str, u64)] = &[
        ("watch.ingest", 1),
        ("watch.ingest", 3),
        ("watch.ingest", WEEKS as u64),
        ("watch.retro", 1),
        ("watch.outbox.append", 1),
        ("watch.outbox.append", 3),
        ("watch.outbox.deliver", 1), // first alert, before its log line
        ("watch.outbox.deliver", 2), // first alert, logged but unacked
        ("watch.outbox.deliver", 5), // third alert's deliver window
    ];
    for &(site, nth) in kills {
        let tag = format!("kill-{}-{nth}", site.replace('.', "-"));
        let root = seed_root(&tag, WEEKS, true);
        arm_nth(site, nth, Action::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| run_to_idle(&root, 2, 4)));
        reset();
        assert!(
            crashed.is_err(),
            "fail-point {site} hit {nth} never fired — kill schedule stale?"
        );

        let (watcher, _) = run_to_idle(&root, 2, 4);
        assert_eq!(
            store_bytes(&root),
            ref_bytes,
            "store after kill at {site}#{nth} must match the unkilled run"
        );
        assert_eq!(
            live_fingerprint(&watcher),
            ref_live,
            "live accumulator after kill at {site}#{nth} diverged"
        );
        assert_eq!(
            live_fingerprint(&watcher),
            cold_fold_fingerprint(&root, &watcher, 2),
            "live accumulator after kill at {site}#{nth} != cold fold"
        );
        assert_eq!(
            alert_lines(&root),
            ref_alerts,
            "alert log after kill at {site}#{nth} lost or duplicated alerts"
        );
        assert_eq!(watcher.outbox().pending_count(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Strips the `coverage S/T` suffix: the scan-coverage annotation
/// legitimately names the cell's shard layout, everything before it
/// must be layout-independent.
fn without_coverage(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| l.split(" coverage ").next().unwrap_or(l).to_string())
        .collect()
}

/// The kill matrix: at 1, 2, and 8 threads × 1 and 4 shards, a daemon
/// killed mid-ingest and mid-delivery still converges — and the live
/// accumulator and alert set are identical across every cell (alert IDs
/// are content-addressed, so shard and thread counts must not leak in).
#[test]
fn kill_matrix_across_threads_and_shards_converges_identically() {
    let _guard = lock();
    reset();
    let (_, ref_live, ref_alerts) = reference(1, 1);
    let ref_alerts = without_coverage(&ref_alerts);

    for threads in [1, 2, 8] {
        for shards in [1, 4] {
            let tag = format!("matrix-{threads}t-{shards}s");
            let root = seed_root(&tag, WEEKS, true);

            // Unkilled reference for this cell's store bytes.
            let cell_ref_root = seed_root(&format!("{tag}-ref"), WEEKS, true);
            let (cell_watcher, _) = run_to_idle(&cell_ref_root, threads, shards);
            let cell_bytes = store_bytes(&cell_ref_root);
            drop(cell_watcher);
            let _ = std::fs::remove_dir_all(&cell_ref_root);

            // Kill once mid-ingest, restart, kill again mid-delivery,
            // restart again.
            arm_nth("watch.ingest", 2, Action::Panic);
            let crashed = catch_unwind(AssertUnwindSafe(|| run_to_idle(&root, threads, shards)));
            reset();
            assert!(crashed.is_err(), "{tag}: ingest kill never fired");
            arm_nth("watch.outbox.deliver", 2, Action::Panic);
            let crashed = catch_unwind(AssertUnwindSafe(|| run_to_idle(&root, threads, shards)));
            reset();
            assert!(crashed.is_err(), "{tag}: deliver kill never fired");

            let (watcher, _) = run_to_idle(&root, threads, shards);
            assert_eq!(watcher.weeks_committed(), WEEKS, "{tag}");
            assert_eq!(store_bytes(&root), cell_bytes, "{tag}: store diverged");
            assert_eq!(
                live_fingerprint(&watcher),
                ref_live,
                "{tag}: live accumulator depends on threads/shards"
            );
            assert_eq!(
                without_coverage(&alert_lines(&root)),
                ref_alerts,
                "{tag}: alert set depends on threads/shards"
            );
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

/// The supervisor restarts through a transient fault — reopening the
/// watcher *is* the recovery path — with seeded-jitter backoff recorded
/// on the virtual clock, and converges on the same end state.
#[test]
fn supervisor_restarts_through_a_transient_fault() {
    let _guard = lock();
    reset();
    let root = seed_root("supervised", WEEKS, true);
    // The second committed week panics mid-tick; every later hit is
    // clean, so exactly one restart recovers the run.
    arm_nth("watch.ingest", 2, Action::Panic);
    let telemetry = Telemetry::new();
    let report = supervise(
        &WatchConfig::new(&root).threads(2).shards(4),
        SupervisorConfig::bounded(4),
        &telemetry,
    );
    reset();
    assert!(!report.gave_up, "one panic must not exhaust the budget");
    assert_eq!(report.restarts, 1);
    assert_eq!(report.ticks, 4);
    assert!(report.backoff_ns > 0, "backoff must be recorded");
    assert!(
        report.last_error.as_deref().unwrap_or("").contains("panic"),
        "last_error must carry the panic: {:?}",
        report.last_error
    );
    // The failed tick's progress is not lost: week 0 committed before
    // the kill, the restarted watcher ingested the rest.
    assert_eq!(report.totals.weeks_ingested, WEEKS - 1);
    assert_eq!(report.totals.deltas_applied, 1);
    assert!(report.totals.alerts_delivered > 0);
    let state = load_watch_state(&root);
    assert_eq!(state.weeks_committed, WEEKS as u64);
    assert_eq!(state.alerts_pending, 0);
    assert_eq!(
        telemetry.snapshot().counter("watch.restarts_total"),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A persistent fault exhausts the restart budget: the supervisor gives
/// up with the failure named, instead of spinning forever — and once the
/// fault clears, a fresh supervised run completes from where disk is.
#[test]
fn supervisor_gives_up_on_a_persistent_fault_then_recovers() {
    let _guard = lock();
    reset();
    let root = seed_root("giveup", WEEKS, true);
    arm("watch.retro", Action::Error);
    let telemetry = Telemetry::new();
    let report = supervise(
        &WatchConfig::new(&root).threads(2).shards(4),
        SupervisorConfig::bounded(4).policy(RetryPolicy::standard(2)),
        &telemetry,
    );
    assert!(report.gave_up, "a persistent fault must exhaust the budget");
    assert_eq!(report.restarts, 2, "budget of 2 retries");
    assert!(
        report.last_error.as_deref().unwrap_or("").contains("watch.retro"),
        "the give-up reason must name the site: {:?}",
        report.last_error
    );
    disarm("watch.retro");

    // The fault cleared: a new supervised run finishes the retro-scan
    // and drains the outbox. The weeks are already on disk.
    let report = supervise(
        &WatchConfig::new(&root).threads(2).shards(4),
        SupervisorConfig::bounded(2),
        &telemetry,
    );
    assert!(!report.gave_up);
    assert_eq!(report.totals.deltas_applied, 1);
    assert!(report.totals.alerts_delivered > 0);
    let state = load_watch_state(&root);
    assert_eq!(state.weeks_committed, WEEKS as u64);
    assert_eq!(state.alerts_pending, 0);
    assert_eq!(state.deltas_applied, 1);
    let _ = std::fs::remove_dir_all(&root);
}

/// Degraded continuation: a delta landing while a shard is quarantined
/// still retro-scans — the healthy shards are scanned, every alert is
/// annotated with the downgraded coverage, and the delta is journaled
/// as applied so the daemon keeps moving.
#[test]
fn degraded_retro_scan_completes_with_coverage_annotations() {
    let _guard = lock();
    reset();
    let root = seed_root("degraded", WEEKS, false);
    let (mut watcher, _) = run_to_idle(&root, 2, 4);
    assert_eq!(watcher.weeks_committed(), WEEKS);

    // Quarantine shard 1, then land the delta. The open writer holds
    // the resumed store; the retro-scan reopens read-only and degraded.
    let victim = root.join("store").join(webvuln::store::shard_file_name(1));
    std::fs::remove_file(&victim).expect("quarantine shard");
    land_delta(&root);

    let tick = watcher.tick().expect("degraded tick must complete");
    assert_eq!(tick.deltas_applied, 1);
    assert!(tick.alerts_enqueued > 0, "healthy shards must still alert");
    assert_eq!(tick.alerts_delivered, tick.alerts_enqueued);

    let snapshot = OutboxSnapshot::load(&root.join("outbox.wal"), &root.join("alerts.log"))
        .expect("load outbox");
    assert_eq!(snapshot.alerts.len(), tick.alerts_enqueued);
    for alert in &snapshot.alerts {
        assert_eq!(alert.coverage.shards_scanned, 3, "one shard is dark");
        assert_eq!(alert.coverage.shards_total, 4);
        assert!(!alert.coverage.is_full());
    }
    for line in alert_lines(&root) {
        assert!(
            line.ends_with("coverage 3/4"),
            "log line must carry the coverage annotation: {line}"
        );
    }
    let state = load_watch_state(&root);
    assert!(state.degraded, "the observer must see the quarantine");
    assert_eq!(state.deltas_applied, 1);
    let _ = std::fs::remove_dir_all(&root);
}
