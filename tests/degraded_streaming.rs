//! Degraded streaming: a sharded store with a quarantined shard still
//! streams and folds — the dead shard is skipped deterministically, the
//! result is identical at 1, 2, and 8 fold threads, a manual
//! [`WeekStream`] fold agrees with [`fold_study`], and the serve layer's
//! tables over the same degraded store are built from the same fold.
//!
//! This pins the degraded-continuation contract the watch daemon's
//! retro-scan and the query API both lean on: losing a shard downgrades
//! coverage, it never changes *which* answer the healthy shards give.

use webvuln::analysis::store_io::week_to_snapshot;
use webvuln::analysis::{
    apply_filter, fold_study, genesis_ranks, store_filter_verdict, AccumCtx, Accumulate,
    StudyAccum,
};
use webvuln::core::{Pipeline, StudyConfig};
use webvuln::cvedb::VulnDb;
use webvuln::net::FaultPlan;
use webvuln::store::{shard_file_name, AnyReader};
use webvuln::webgen::Timeline;
use webvuln::QueryService;

const SHARDS: usize = 4;
const WEEKS: usize = 6;

fn build_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webvuln-degstream-{tag}-{}.wvshards",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Pipeline::new(StudyConfig {
        seed: 8_200,
        domain_count: 80,
        timeline: Timeline::truncated(WEEKS),
        faults: FaultPlan::hostile(8_200),
        carry_forward: true,
        ..StudyConfig::default()
    })
    .shards(SHARDS)
    .checkpoint(&dir)
    .run()
    .expect("sharded pipeline run");
    dir
}

fn fold_fingerprint(reader: &AnyReader, db: &VulnDb, threads: usize) -> String {
    let accum = fold_study(reader, db, threads).expect("fold");
    format!("{:#?}", accum.finish(db))
}

#[test]
fn degraded_fold_and_stream_skip_the_dead_shard_deterministically() {
    let dir = build_store("fold");
    let db = VulnDb::builtin();

    // The healthy baseline, and the record count the full store holds.
    let full = AnyReader::open_degraded(&dir).expect("open full");
    assert!(!full.is_degraded());
    let full_fingerprint = fold_fingerprint(&full, &db, 2);
    let full_records: usize = full
        .stream()
        .map(|week| week.expect("full week").records.len())
        .sum();
    drop(full);

    // Quarantine one shard; the strict open refuses, the degraded open
    // serves the rest.
    std::fs::remove_file(dir.join(shard_file_name(1))).expect("quarantine shard 1");
    assert!(AnyReader::open(&dir).is_err(), "strict open must refuse");
    let reader = AnyReader::open_degraded(&dir).expect("degraded open");
    assert!(reader.is_degraded());
    assert_eq!(reader.shard_count(), SHARDS);
    assert_eq!(
        reader.shard_health().iter().filter(|h| !h.is_healthy()).count(),
        1
    );
    assert_eq!(reader.weeks_committed(), WEEKS, "weeks survive the loss");

    // The stream yields every week, in order, minus exactly the dead
    // shard's domains — and identically on every pass.
    let pass = |reader: &AnyReader| -> (Vec<usize>, usize) {
        let mut indices = Vec::new();
        let mut records = 0;
        for week in reader.stream() {
            let week = week.expect("degraded week");
            indices.push(week.week);
            records += week.records.len();
        }
        (indices, records)
    };
    let (indices, degraded_records) = pass(&reader);
    assert_eq!(indices, (0..WEEKS).collect::<Vec<_>>());
    assert!(
        degraded_records < full_records,
        "the dead shard's records must be gone ({degraded_records} vs {full_records})"
    );
    assert_eq!(pass(&reader), (indices, degraded_records), "second pass");

    // fold_study is thread-count invariant over the degraded store, and
    // differs from the full fold (the loss is visible, not silent).
    let degraded_fingerprint = fold_fingerprint(&reader, &db, 1);
    for threads in [2, 8] {
        assert_eq!(
            degraded_fingerprint,
            fold_fingerprint(&reader, &db, threads),
            "degraded fold diverged at {threads} threads"
        );
    }
    assert_ne!(
        degraded_fingerprint, full_fingerprint,
        "losing a shard must change the fold"
    );

    // A manual single-pass WeekStream fold — the watch daemon's
    // incremental shape — agrees with the parallel per-shard fold.
    let filtered = store_filter_verdict(&reader).expect("verdict");
    let ranks = genesis_ranks(reader.genesis());
    let ctx = AccumCtx {
        db: &db,
        ranks: &ranks,
    };
    let mut manual = StudyAccum::default();
    for week in reader.stream() {
        let mut snapshot = week_to_snapshot(&week.expect("week")).expect("snapshot");
        apply_filter(&mut snapshot, &filtered);
        manual.absorb(&snapshot, &ctx);
    }
    assert_eq!(
        format!("{:#?}", manual.finish(&db)),
        degraded_fingerprint,
        "stream fold and sharded fold disagree on the degraded store"
    );

    // The serve layer's tables over the same degraded store come from
    // the same fold — its Table 1 rows match ours exactly.
    let service = QueryService::open(&dir).expect("degraded service");
    let expected_table1 = fold_study(&reader, &db, 2)
        .expect("fold")
        .finish(&db)
        .table1;
    assert_eq!(
        format!("{:#?}", service.table1_rows()),
        format!("{:#?}", expected_table1.as_slice()),
        "serve tables diverged from the degraded fold"
    );
    assert!(service.reader().is_degraded());
    let _ = std::fs::remove_dir_all(&dir);
}
