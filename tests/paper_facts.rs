//! The reproduction contract: one medium study run must reproduce the
//! paper's qualitative findings end-to-end. Each assertion is tagged with
//! the paper section it checks.

use std::sync::OnceLock;
use webvuln::core::{Pipeline, StudyConfig, StudyResults};
use webvuln::cvedb::{Accuracy, Date, LibraryId};
use webvuln::net::FaultPlan;
use webvuln::webgen::Timeline;

fn study() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        Pipeline::new(StudyConfig {
            seed: 7_777,
            domain_count: 900,
            timeline: Timeline::paper(),
            concurrency: 8,
            faults: FaultPlan::realistic(7_777),
            ..StudyConfig::default()
        })
        .run()
        .expect("study")
    })
}

#[test]
fn s4_collection_is_stable_at_alexa_scale_ratio() {
    // §4.1: ~782,300 of 1M collected every week (≈78%).
    let r = study();
    let ratio = r.collection.average / r.config.domain_count as f64;
    assert!((0.68..0.88).contains(&ratio), "collected ratio {ratio:.3}");
}

#[test]
fn s5_resource_ranking_matches_fig2b() {
    use webvuln::fingerprint::ResourceType;
    let r = study();
    let share = |t: ResourceType| {
        r.resources
            .iter()
            .find(|u| u.resource == t)
            .expect("present")
            .average_share
    };
    assert!(share(ResourceType::JavaScript) > 0.90, "94.7% in the paper");
    assert!(share(ResourceType::Css) > 0.80, "88.4%");
    assert!(share(ResourceType::JavaScript) > share(ResourceType::Css));
    assert!(share(ResourceType::Css) > share(ResourceType::Favicon));
    assert!(share(ResourceType::Flash) < 0.03, "0.7%");
}

#[test]
fn s61_jquery_dominates_and_declines() {
    let r = study();
    assert_eq!(r.table1[0].library, LibraryId::JQuery);
    assert!((0.55..0.72).contains(&r.table1[0].usage_share), "≈64%");
    let jq_trend = r
        .trends
        .iter()
        .find(|t| t.library == LibraryId::JQuery)
        .expect("present");
    // Fig 3(a): 67.2% -> 63.1% — declining but still dominant.
    assert!(
        jq_trend.last() < jq_trend.first(),
        "{:.3} -> {:.3}",
        jq_trend.first(),
        jq_trend.last()
    );
    assert!(jq_trend.last() > 0.5);
}

#[test]
fn s61_migrate_dip_and_recovery() {
    // Fig 3(a) red box: Migrate drops ~10% Aug–Dec 2020, then recovers.
    let r = study();
    let migrate = r
        .trends
        .iter()
        .find(|t| t.library == LibraryId::JQueryMigrate)
        .expect("present");
    let before = migrate.min_between(Date::new(2020, 6, 1), Date::new(2020, 7, 31));
    let dip = migrate.min_between(Date::new(2020, 10, 1), Date::new(2020, 12, 7));
    let after = migrate.min_between(Date::new(2021, 3, 1), Date::new(2021, 5, 1));
    assert!(dip < before * 0.92, "dip: {before:.3} -> {dip:.3}");
    assert!(after > dip, "recovery: {dip:.3} -> {after:.3}");
}

#[test]
fn s62_prevalence_is_massive_and_tvv_is_larger() {
    let r = study();
    // §6.2: 41.2% average; our synthetic web skews more vulnerable (no
    // sites outside the top-15 library world), so assert the regime.
    assert!(
        (0.35..0.80).contains(&r.prevalence_claimed.average),
        "claimed {:.3}",
        r.prevalence_claimed.average
    );
    // §6.4: corrected info uncovers more (paper +2%).
    assert!(r.prevalence_tvv.average > r.prevalence_claimed.average);
    // The gap widens once the WordPress wave parks sites on jQuery 3.5.1:
    // claimed-clean (all <3.5.0 CVEs escaped) yet truly vulnerable
    // (CVE-2020-7656's TVV reaches 3.6.0). Compare the pre-patch era with
    // the between-waves window (Dec 2020 – Jul 2021).
    let window_avg = |from: Date, to: Date| {
        let vals: Vec<f64> = r
            .refinement
            .gap
            .iter()
            .filter(|&&(d, _)| d >= from && d <= to)
            .map(|&(_, g)| g)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let before = window_avg(Date::new(2019, 6, 1), Date::new(2020, 3, 31));
    let between_waves = window_avg(Date::new(2021, 1, 15), Date::new(2021, 7, 31));
    assert!(
        between_waves > before,
        "gap widens with the 3.5.1 cohort: {before:.4} -> {between_waves:.4}"
    );
}

#[test]
fn s63_dominant_versions_are_outdated_and_vulnerable() {
    use webvuln::cvedb::Basis;
    let r = study();
    let jq = &r.table1[0];
    let (dominant, _) = jq.dominant.clone().expect("jQuery versions observed");
    assert_eq!(dominant.to_string(), "1.12.4", "§6.3's headline");
    assert_eq!(
        r.db.vuln_count(LibraryId::JQuery, &dominant, Basis::CveClaimed),
        4,
        "v1.12.4 carries four reported vulnerabilities"
    );
    // Discontinued projects remain in use (§6.3).
    let swf = r
        .table1
        .iter()
        .find(|row| row.library == LibraryId::SwfObject)
        .expect("present");
    assert!(swf.usage_share > 0.0, "SWFObject still in use");
    assert!(LibraryId::SwfObject.is_discontinued());
}

#[test]
fn s64_validation_finds_13_incorrect_reports() {
    let r = study();
    let incorrect = r
        .validations
        .iter()
        .filter(|v| v.accuracy != Accuracy::Accurate)
        .count();
    assert_eq!(incorrect, 13, "paper: 13 incorrect reports");
    let understated_exists = r
        .validations
        .iter()
        .any(|v| v.id == "CVE-2020-7656" && v.accuracy == Accuracy::Understated);
    assert!(understated_exists);
}

#[test]
fn s64_high_profile_sites_run_understated_versions() {
    // microsoft.example (rank 46) and docusign.example (rank 1693) are
    // reproduced when the population is large enough; at 900 domains only
    // microsoft.example exists.
    let r = study();
    let found = r
        .dataset
        .ranks
        .iter()
        .any(|(d, &rank)| d == "microsoft.example" && rank == 46);
    assert!(found, "case-study domain present at the paper's rank");
}

#[test]
fn s65_sri_is_barely_used() {
    let r = study();
    assert!(
        r.sri.average_unprotected_share > 0.97,
        "paper: 99.7%; got {:.4}",
        r.sri.average_unprotected_share
    );
    if r.crossorigin.total > 50 {
        assert!(
            r.crossorigin.anonymous_share > 0.85,
            "paper: 97.1% anonymous; got {:.3}",
            r.crossorigin.anonymous_share
        );
    }
}

#[test]
fn s7_updates_are_slow_and_wordpress_driven() {
    let r = study();
    let claimed = &r.delays_claimed;
    assert!(!claimed.events.is_empty());
    // Paper: 531.2 days — over a year of exposure.
    assert!(
        claimed.mean_delay_days > 200.0,
        "mean delay {:.1}",
        claimed.mean_delay_days
    );
    // §7: the TVV window is longer (+191 days in the paper).
    assert!(r.delays_tvv.mean_delay_days > claimed.mean_delay_days);
    // WordPress is the main update contributor.
    assert!(
        claimed.wordpress_share > 0.4,
        "wp share {:.2}",
        claimed.wordpress_share
    );
}

#[test]
fn s8_flash_decays_but_survives_eol() {
    let r = study();
    let first = r.flash.points.first().expect("non-empty").1;
    let last = r.flash.points.last().expect("non-empty").1;
    assert!(first > 0);
    assert!((last as f64) < first as f64 * 0.75, "{first} -> {last}");
    assert!(r.flash.average_after_eol >= 1.0, "zombie flash persists");
}

#[test]
fn s9_wordpress_share_matches() {
    let r = study();
    assert!(
        (0.21..0.33).contains(&r.wordpress.average_share),
        "paper: 26.9%; got {:.3}",
        r.wordpress.average_share
    );
}
