//! Cross-crate integration: the full §4 pipeline over both transports.
//!
//! The same snapshot week crawled through the in-process virtual internet
//! and through real TCP sockets must yield byte-identical pages and
//! identical fingerprints — the property that makes the fast simulation
//! path a valid stand-in for the socket path.

use std::sync::Arc;
use webvuln::analysis::dataset::{CollectConfig, Collector, Dataset};
use webvuln::fingerprint::Engine;
use webvuln::net::{CrawlOptions, FaultPlan, TcpConnector, TcpServer, VirtualNet};
use webvuln::webgen::{Ecosystem, EcosystemConfig, PageOutcome, Timeline};

fn collect(eco: &Arc<Ecosystem>, config: CollectConfig) -> Dataset {
    Collector::from_config(config)
        .run(eco)
        .expect("collection")
        .dataset
}

fn ecosystem(domains: usize, weeks: usize) -> Arc<Ecosystem> {
    Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 31_337,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
    }))
}

#[test]
fn tcp_and_virtual_transports_agree() {
    let eco = ecosystem(120, 2);
    let week = 1;
    let names = eco.domain_names();

    let virtual_net = VirtualNet::new(Arc::new(eco.handler(week)));
    let via_memory = CrawlOptions::new().threads(4).run(&names, &virtual_net);

    let mut server = TcpServer::start(Arc::new(eco.handler(week))).expect("bind");
    let connector = TcpConnector::fixed(server.addr());
    let via_tcp = CrawlOptions::new().threads(8).run(&names, &connector);
    server.shutdown();

    assert_eq!(via_memory.len(), via_tcp.len());
    for (domain, mem_record) in &via_memory {
        let tcp_record = &via_tcp[domain];
        assert_eq!(mem_record.status, tcp_record.status, "{domain}");
        assert_eq!(mem_record.body, tcp_record.body, "{domain}");
    }
}

#[test]
fn fingerprints_survive_the_wire() {
    // Ground truth -> render -> HTTP (chunked sometimes) -> parse ->
    // fingerprint must agree with fingerprinting the rendered page
    // directly.
    let eco = ecosystem(200, 1);
    let names = eco.domain_names();
    let net = VirtualNet::new(Arc::new(eco.handler(0))).with_faults(FaultPlan {
        seed: 1,
        connect_fail_permille: 0,
        truncate_permille: 0,
        chunked_permille: 1000, // force the chunked encoder everywhere
        ..FaultPlan::none()
    });
    let snapshot = CrawlOptions::new().threads(4).run(&names, &net);
    let engine = Engine::new();
    let mut compared = 0;
    for (domain, record) in &snapshot {
        let PageOutcome::Page(direct_html) = eco.page(domain, 0) else {
            continue;
        };
        assert_eq!(record.body, direct_html, "{domain}: chunked round trip");
        let direct = engine.analyze(&direct_html, domain);
        let wired = engine.analyze(&record.body, domain);
        assert_eq!(direct, wired, "{domain}");
        compared += 1;
    }
    assert!(compared > 100, "enough pages compared: {compared}");
}

#[test]
fn faults_shrink_but_do_not_corrupt_the_dataset() {
    let eco = ecosystem(300, 6);
    let clean = collect(&eco, CollectConfig::default());
    let faulty = collect(
        &eco,
        CollectConfig {
            concurrency: 4,
            faults: FaultPlan {
                seed: 5,
                connect_fail_permille: 100, // 10% of hosts refuse
                truncate_permille: 0,
                chunked_permille: 200,
                ..FaultPlan::none()
            },
            ..CollectConfig::default()
        },
    );
    assert!(faulty.average_collected() < clean.average_collected());
    // Pages that did arrive are identical to the clean crawl's.
    for (week_clean, week_faulty) in clean.weeks.iter().zip(&faulty.weeks) {
        for (domain, page) in &week_faulty.pages {
            let clean_page = week_clean
                .pages
                .get(domain)
                .unwrap_or_else(|| panic!("{domain} present in clean crawl"));
            assert_eq!(page, clean_page, "{domain}");
        }
    }
}

#[test]
fn dataset_scales_linearly_in_shape() {
    // Shares must be scale-invariant: doubling the population leaves the
    // landscape percentages roughly unchanged.
    use webvuln::analysis::accum::LandscapeAccum;
    use webvuln::cvedb::{LibraryId, VulnDb};
    let db = VulnDb::builtin();
    let small = collect(&ecosystem(400, 3), CollectConfig::default());
    let large = collect(
        &Arc::new(Ecosystem::generate(EcosystemConfig {
            seed: 31_337,
            domain_count: 1_200,
            timeline: Timeline::truncated(3),
        })),
        CollectConfig::default(),
    );
    let share = |data, lib| {
        LandscapeAccum::over(data)
            .table1(&db)
            .into_iter()
            .find(|r| r.library == lib)
            .expect("present")
            .usage_share
    };
    for lib in [
        LibraryId::JQuery,
        LibraryId::Bootstrap,
        LibraryId::JQueryMigrate,
    ] {
        let s = share(&small, lib);
        let l = share(&large, lib);
        assert!(
            (s - l).abs() < 0.08,
            "{lib}: {s:.3} (400 domains) vs {l:.3} (1200 domains)"
        );
    }
}
