//! End-to-end tests for `webvuln-serve`: a real `ApiServer` on a
//! loopback socket, queried over TCP, answering from a real snapshot
//! store — and every table endpoint cross-checked against the batch
//! `webvuln-analysis` computation for the same store.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use webvuln::analysis::accum::fold_study;
use webvuln::analysis::Collector;
use webvuln::cvedb::VulnDb;
use webvuln::net::codec::{encode_request, MessageReader};
use webvuln::net::{fetch, Request, Status, TcpConnector};
use webvuln::telemetry::Registry;
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};
use webvuln::AnyReader;
use webvuln::{ApiServer, QueryService, ServeConfig};

const DOMAINS: usize = 40;
const WEEKS: usize = 3;

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "webvuln-serve-api-{tag}-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Builds a small finalized store and opens a query service over it.
fn service(tag: &str) -> (Arc<QueryService>, PathBuf) {
    let eco = Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 77,
        domain_count: DOMAINS,
        timeline: Timeline::truncated(WEEKS),
    }));
    let path = temp_store(tag);
    Collector::new()
        .threads(2)
        .checkpoint(&path)
        .run(&eco)
        .expect("collect");
    (Arc::new(QueryService::open(&path).expect("open")), path)
}

fn start(tag: &str, threads: usize) -> (ApiServer, Arc<QueryService>, Registry, PathBuf) {
    let (svc, path) = service(tag);
    let registry = Registry::new();
    let config = ServeConfig {
        threads,
        ..ServeConfig::default()
    };
    let server = ApiServer::serve(Arc::clone(&svc), config, &registry).expect("bind");
    (server, svc, registry, path)
}

fn get(server: &ApiServer, target: &str) -> (Status, String) {
    let connector = TcpConnector::fixed(server.addr());
    let resp = fetch(&connector, "serve.test", target).expect("fetch");
    (resp.status, resp.body_text())
}

#[test]
fn table_endpoints_match_batch_analysis() {
    let (server, svc, _registry, path) = start("batch", 2);
    let db = VulnDb::builtin();
    // The independent batch computation: stream the same store through
    // the mergeable accumulators, never materializing a dataset.
    let reader = AnyReader::open(&path).expect("open store");
    let accum = fold_study(&reader, &db, 2).expect("fold store");

    // /library/{lib}/prevalence against the Table 1 row.
    let rows = accum.landscape.table1(&db);
    let jq = rows
        .iter()
        .find(|r| r.library.slug() == "jquery")
        .expect("jquery row");
    let (status, body) = get(&server, "/library/jquery/prevalence");
    assert_eq!(status, Status::OK);
    for fragment in [
        format!("\"average_sites\":{}", jq.average_sites),
        format!("\"usage_share\":{}", jq.usage_share),
        format!("\"versions_found\":{}", jq.versions_found),
        format!("\"vuln_reports\":{}", jq.vuln_reports),
    ] {
        assert!(body.contains(&fragment), "{fragment} not in {body}");
    }

    // /week/{w}/landscape shares against the usage-trend points.
    let trends = accum.landscape.trends();
    let (status, body) = get(&server, "/week/1/landscape");
    assert_eq!(status, Status::OK);
    for trend in &trends {
        let (_, share) = trend.points[1];
        if share > 0.0 {
            let fragment = format!("\"library\":\"{}\",\"users\":", trend.library.slug());
            assert!(body.contains(&fragment), "{fragment} not in {body}");
            assert!(
                body.contains(&format!("\"share\":{share}")),
                "share {share} for {} not in {body}",
                trend.library.slug()
            );
        }
    }

    // /cve/{id}/exposure against the batch CVE-impact figure.
    let impacts = accum.exposure.cve_impacts(&db);
    let impact = impacts
        .iter()
        .find(|impact| impact.id == "CVE-2020-11022")
        .expect("impact");
    let (status, body) = get(&server, "/cve/CVE-2020-11022/exposure");
    assert_eq!(status, Status::OK);
    assert!(
        body.contains(&format!("\"claimed_average\":{}", impact.claimed_average)),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"true_average\":{}", impact.true_average)),
        "{body}"
    );

    // /domain/{d}/history against random-access store reads.
    let domain = svc.reader().genesis().ranks[0].0.clone();
    let (status, body) = get(&server, &format!("/domain/{domain}/history"));
    assert_eq!(status, Status::OK);
    for week in 0..svc.reader().weeks_committed() {
        let record = svc.reader().get(&domain, week).expect("get");
        assert!(
            body.contains(&format!("\"body_len\":{}", record.body_len)),
            "week {week} body_len missing from {body}"
        );
    }
}

#[test]
fn errors_are_structured_json() {
    let (server, _svc, _registry, _path) = start("errors", 1);
    for (target, want) in [
        ("/domain/no-such.example/history", Status::NOT_FOUND),
        ("/library/left-pad/prevalence", Status::NOT_FOUND),
        ("/week/999/landscape", Status::NOT_FOUND),
        ("/week/banana/landscape", Status::BAD_REQUEST),
        ("/cve/CVE-1999-0000/exposure", Status::NOT_FOUND),
        ("/completely/unknown", Status::NOT_FOUND),
    ] {
        let (status, body) = get(&server, target);
        assert_eq!(status, want, "{target} → {body}");
        assert!(body.starts_with("{\"error\":"), "{target} → {body}");
        assert!(body.contains("\"detail\":"), "{target} → {body}");
    }

    // Non-GET methods are refused with 405 and a structured body.
    let mut req = Request::get("serve.test", "/healthz");
    req.method = webvuln::net::Method::Post;
    let mut wire = Vec::new();
    encode_request(&req, &mut wire);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(&wire).expect("send");
    let mut reader = MessageReader::new(conn);
    let resp = reader.read_response(false).expect("response");
    assert_eq!(resp.status, Status(405), "{}", resp.body_text());
    assert!(resp.body_text().starts_with("{\"error\":"));
}

#[test]
fn healthz_reports_request_count() {
    let (server, _svc, _registry, _path) = start("healthz", 1);
    let (status, body) = get(&server, "/healthz");
    assert_eq!(status, Status::OK);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(
        body.contains(&format!("\"weeks_committed\":{WEEKS}")),
        "{body}"
    );
    let (_, body) = get(&server, "/healthz");
    assert!(body.contains("\"requests_total\":2"), "{body}");
}

#[test]
fn cache_hits_serve_identical_bodies() {
    let (server, _svc, registry, _path) = start("cache", 2);
    let (_, first) = get(&server, "/week/0/landscape");
    let (_, second) = get(&server, "/week/0/landscape");
    assert_eq!(first, second);
    let snap = registry.snapshot();
    assert!(
        snap.counter("serve.cache_hits_total").unwrap_or(0) >= 1,
        "no cache hit recorded"
    );
}

#[test]
fn concurrent_clients_all_get_answers() {
    let (server, _svc, registry, _path) = start("concurrent", 4);
    let addr = server.addr();
    let mut threads = Vec::new();
    for client in 0..4 {
        threads.push(std::thread::spawn(move || {
            let connector = TcpConnector::fixed(addr);
            for i in 0..5 {
                let target = if (client + i) % 2 == 0 {
                    "/healthz".to_string()
                } else {
                    format!("/week/{}/landscape", i % WEEKS)
                };
                let resp = fetch(&connector, "serve.test", &target).expect("fetch");
                assert_eq!(resp.status, Status::OK, "{target}");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }
    let snap = registry.snapshot();
    let total = snap.counter("serve.requests_total").unwrap_or(0);
    let answered = snap.counter("serve.responses_2xx_total").unwrap_or(0)
        + snap.counter("serve.responses_4xx_total").unwrap_or(0)
        + snap.counter("serve.responses_5xx_total").unwrap_or(0);
    assert_eq!(total, 20);
    assert_eq!(answered, total, "every request must be accounted for");
}

#[test]
fn keep_alive_pipelines_requests_on_one_connection() {
    let (server, _svc, _registry, _path) = start("pipeline", 2);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    let mut wire = Vec::new();
    for _ in 0..3 {
        encode_request(&Request::get("serve.test", "/healthz"), &mut wire);
    }
    conn.write_all(&wire).expect("send");
    let mut reader = MessageReader::new(conn.try_clone().expect("clone"));
    for i in 0..3 {
        let resp = reader.read_response(false).expect("response");
        assert_eq!(resp.status, Status::OK, "response {i}");
        assert!(resp.body_text().contains("\"status\":\"ok\""));
    }
}

#[test]
fn shutdown_drains_and_unbinds() {
    let (mut server, _svc, registry, _path) = start("drain", 2);
    let addr = server.addr();
    let (status, _) = get(&server, "/healthz");
    assert_eq!(status, Status::OK);

    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(3),
        "drain took {:?}",
        started.elapsed()
    );
    // The port no longer accepts new connections.
    let refused = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500));
    assert!(refused.is_err(), "socket still accepting after shutdown");
    // Everything that was accepted was answered.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.requests_total"), Some(1));
    assert_eq!(snap.counter("serve.responses_2xx_total"), Some(1));
}
