//! Crash-recovery integration: a study interrupted mid-collection (the
//! snapshot store torn at an arbitrary byte) and resumed with `--resume`
//! semantics must produce the exact same analysis output — and the exact
//! same store bytes — as an uninterrupted run.

use webvuln::core::{full_report, Pipeline, StudyConfig, Telemetry};
use webvuln::webgen::Timeline;

fn config() -> StudyConfig {
    StudyConfig {
        seed: 1312,
        domain_count: 80,
        timeline: Timeline::truncated(5),
        ..StudyConfig::default()
    }
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "webvuln-resume-test-{tag}-{}.wvstore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// The analysis portion of the report: everything before the run-telemetry
/// section, which legitimately differs (a resumed run crawls fewer weeks,
/// so its counters are smaller).
fn analysis_part(report: &str) -> &str {
    report.split("Run telemetry").next().unwrap()
}

#[test]
fn killed_and_resumed_study_matches_the_uninterrupted_run() {
    let baseline = full_report(&Pipeline::new(config()).run().expect("baseline"));

    // An uninterrupted checkpointed run: same analysis output, and the
    // reference store bytes.
    let clean_store = temp_store("clean");
    let telemetry = Telemetry::new();
    let clean = Pipeline::new(config())
        .telemetry(&telemetry)
        .checkpoint(&clean_store)
        .run()
        .expect("uninterrupted checkpointed run");
    assert_eq!(
        analysis_part(&baseline),
        analysis_part(&full_report(&clean)),
        "checkpointing must not change the analysis"
    );

    // Simulate a kill: tear the store at 60% of its length — mid-record,
    // nowhere near a segment boundary in general.
    let torn_store = temp_store("torn");
    let bytes = std::fs::read(&clean_store).expect("read reference store");
    let cut = bytes.len() * 6 / 10;
    std::fs::write(&torn_store, &bytes[..cut]).expect("write torn store");

    // Resume: restores intact weeks, truncates the torn tail, recrawls the
    // rest, finalizes.
    let resumed = Pipeline::new(config())
        .checkpoint(&torn_store)
        .resume(true)
        .run()
        .expect("resume after kill");
    assert_eq!(
        analysis_part(&baseline),
        analysis_part(&full_report(&resumed)),
        "resumed analysis output must be byte-identical"
    );

    // Determinism all the way down: the healed store is byte-identical to
    // the uninterrupted one.
    let healed = std::fs::read(&torn_store).expect("read healed store");
    assert_eq!(healed, bytes, "healed store bytes must match");

    // A second resume on the now-complete store crawls nothing and still
    // reproduces the analysis.
    let restored = Pipeline::new(config())
        .checkpoint(&torn_store)
        .resume(true)
        .run()
        .expect("resume on complete store");
    assert_eq!(
        analysis_part(&baseline),
        analysis_part(&full_report(&restored))
    );

    let _ = std::fs::remove_file(&clean_store);
    let _ = std::fs::remove_file(&torn_store);
}
