//! Streaming vs materialized equivalence: the paper-scale streaming
//! pipeline (each week committed to the store and dropped, analyses
//! folded over the store by mergeable accumulators) must render the
//! byte-identical report and commit the byte-identical store, whatever
//! the thread or shard count — even under the hostile fault profile.
//!
//! The merge-level invariants (associativity, `Default` as identity)
//! are pinned by unit tests in `webvuln_analysis::accum`; this suite
//! pins the end-to-end contract.

use webvuln::core::{full_report, Pipeline, StudyConfig, StudyResults};
use webvuln::net::FaultPlan;
use webvuln::webgen::Timeline;

fn config() -> StudyConfig {
    StudyConfig {
        seed: 99,
        domain_count: 150,
        timeline: Timeline::truncated(8),
        faults: FaultPlan::hostile(99),
        carry_forward: true,
        ..StudyConfig::default()
    }
}

fn temp(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("webvuln-streameq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// The report minus the run-dependent telemetry tail (wall-clock phase
/// timings differ between runs; everything above them must not).
fn report_prefix(results: &StudyResults) -> String {
    full_report(results)
        .split("Run telemetry")
        .next()
        .expect("report")
        .to_string()
}

#[test]
fn streaming_report_and_store_are_byte_identical_across_threads() {
    let batch_store = temp("batch.wvstore");
    let reference = Pipeline::new(config())
        .threads(2)
        .checkpoint(&batch_store)
        .run()
        .expect("materialized");
    let reference_report = report_prefix(&reference);
    let reference_bytes = std::fs::read(&batch_store).expect("batch store");
    assert!(!reference.dataset.weeks.is_empty(), "materialized run");
    for threads in [1, 2, 8] {
        let store = temp(&format!("t{threads}.wvstore"));
        let results = Pipeline::new(config())
            .threads(threads)
            .checkpoint(&store)
            .streaming(true)
            .run()
            .expect("streaming");
        assert!(results.dataset.weeks.is_empty(), "streaming shell");
        assert_eq!(
            results.dataset.filtered_out, reference.dataset.filtered_out,
            "threads={threads}"
        );
        assert_eq!(
            report_prefix(&results),
            reference_report,
            "threads={threads}"
        );
        assert_eq!(
            std::fs::read(&store).expect("streamed store"),
            reference_bytes,
            "threads={threads}"
        );
        let _ = std::fs::remove_file(&store);
    }
    let _ = std::fs::remove_file(&batch_store);
}

#[test]
fn streaming_report_is_byte_identical_across_shard_counts() {
    let reference = Pipeline::new(config())
        .threads(2)
        .run()
        .expect("materialized");
    let reference_report = report_prefix(&reference);
    for shards in [1, 4, 16] {
        let store = temp(&format!("s{shards}"));
        let results = Pipeline::new(config())
            .threads(8)
            .shards(shards)
            .checkpoint(&store)
            .streaming(true)
            .run()
            .expect("streaming");
        assert!(results.dataset.weeks.is_empty(), "streaming shell");
        assert_eq!(report_prefix(&results), reference_report, "shards={shards}");
        // The committed store materializes back to the reference run's
        // dataset — the streaming path never saw it whole.
        let restored = webvuln::analysis::Dataset::load_store(&store).expect("load");
        assert_eq!(restored.filtered_out, reference.dataset.filtered_out);
        assert_eq!(restored.weeks.len(), reference.dataset.weeks.len());
        for (a, b) in restored.weeks.iter().zip(&reference.dataset.weeks) {
            assert_eq!(a.pages, b.pages, "shards={shards} week {}", a.week);
            assert_eq!(a.summaries, b.summaries, "shards={shards} week {}", a.week);
            assert_eq!(
                a.carried_forward, b.carried_forward,
                "shards={shards} week {}",
                a.week
            );
        }
        if shards == 1 {
            let _ = std::fs::remove_file(&store);
        } else {
            let _ = std::fs::remove_dir_all(&store);
        }
    }
}

#[test]
fn streaming_without_a_store_is_rejected() {
    let err = match Pipeline::new(config()).streaming(true).run() {
        Ok(_) => panic!("streaming without a store must be rejected"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("checkpoint store"), "{err}");
}
