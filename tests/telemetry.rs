//! Integration tests for the telemetry layer: counters recorded by the
//! crawler and fault injector must agree exactly with what the pipeline
//! actually did, and a study run must time every phase.

use std::sync::Arc;
use webvuln::analysis::dataset::{CollectConfig, Collector};
use webvuln::core::{telemetry_json, Pipeline, StudyConfig};
use webvuln::net::{CrawlOptions, FaultPlan, VirtualNet};
use webvuln::net::{Request, Response};
use webvuln::telemetry::{Registry, Telemetry};
use webvuln::webgen::{Ecosystem, EcosystemConfig, Timeline};

fn ecosystem(domains: usize, weeks: usize) -> Arc<Ecosystem> {
    Arc::new(Ecosystem::generate(EcosystemConfig {
        seed: 4_242,
        domain_count: domains,
        timeline: Timeline::truncated(weeks),
    }))
}

#[test]
fn crawler_fetch_count_equals_dataset_page_count() {
    let domains = 90;
    let weeks = 4;
    let eco = ecosystem(domains, weeks);
    let telemetry = Telemetry::new();
    let dataset = Collector::from_config(CollectConfig::default())
        .telemetry(&telemetry)
        .run(&eco)
        .expect("collection")
        .dataset;

    // Every domain is attempted every week, regardless of filtering.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter("net.fetches_total"),
        Some((domains * weeks) as u64)
    );
    // Every usable page was fingerprinted; filtering only prunes pages
    // afterwards, so the engine saw at least as many as the dataset kept.
    let kept: u64 = dataset.weeks.iter().map(|w| w.pages.len() as u64).sum();
    let fingerprinted = snap.counter("fp.pages_total").expect("fp pages");
    assert!(
        fingerprinted >= kept,
        "fingerprinted {fingerprinted} < kept {kept}"
    );
    // The crawl and fingerprint phases were entered once per week.
    assert_eq!(snap.span("crawl").expect("crawl span").count, weeks as u64);
    assert_eq!(
        snap.span("fingerprint").expect("fingerprint span").count,
        weeks as u64
    );
}

#[test]
fn fault_counters_match_the_injected_plan() {
    let plan = FaultPlan {
        seed: 77,
        connect_fail_permille: 120,
        truncate_permille: 0,
        chunked_permille: 0,
        ..FaultPlan::none()
    };
    let names: Vec<String> = (0..400).map(|i| format!("h{i:04}.example")).collect();
    let expected_refusals = names.iter().filter(|h| plan.connect_fails(h)).count() as u64;
    assert!(expected_refusals > 0, "plan must refuse someone");

    let registry = Registry::new();
    let handler = Arc::new(|_req: &Request| Response::html("x".repeat(600)));
    let net = VirtualNet::new(handler)
        .with_fault_metrics(&registry)
        .with_faults(plan);
    let records = CrawlOptions::new().registry(&registry).run(&names, &net);

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("net.faults_refused_total"),
        Some(expected_refusals)
    );
    assert_eq!(
        snap.counter("net.fetch_errors_total"),
        Some(expected_refusals)
    );
    assert_eq!(snap.counter("net.fetches_total"), Some(400));
    let failed = records.values().filter(|r| r.error.is_some()).count() as u64;
    assert_eq!(failed, expected_refusals);
}

#[test]
fn truncation_counter_counts_only_cuts_that_bite() {
    // A 4 KiB body: every truncation point (64..1024 bytes of wire) falls
    // inside the response, so cut hosts == truncation count exactly.
    let plan = FaultPlan {
        seed: 13,
        connect_fail_permille: 0,
        truncate_permille: 250,
        chunked_permille: 0,
        ..FaultPlan::none()
    };
    let names: Vec<String> = (0..200).map(|i| format!("t{i:04}.example")).collect();
    let expected_cuts = names
        .iter()
        .filter(|h| plan.truncate_at(h).is_some())
        .count() as u64;
    assert!(expected_cuts > 0, "plan must truncate someone");

    let registry = Registry::new();
    let handler = Arc::new(|_req: &Request| Response::html("y".repeat(4096)));
    let net = VirtualNet::new(handler)
        .with_fault_metrics(&registry)
        .with_faults(plan);
    let _ = CrawlOptions::new().registry(&registry).run(&names, &net);

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("net.faults_truncated_total"),
        Some(expected_cuts)
    );
}

#[test]
fn quick_study_times_all_five_phases_and_renders_json() {
    let mut config = StudyConfig::quick();
    config.domain_count = 120;
    config.timeline = Timeline::truncated(5);
    let telemetry = Telemetry::new();
    let results = Pipeline::new(config)
        .telemetry(&telemetry)
        .run()
        .expect("study");

    let snap = &results.telemetry;
    for phase in ["generate", "crawl", "fingerprint", "join", "analyze"] {
        let span = snap
            .span(phase)
            .unwrap_or_else(|| panic!("{phase} missing"));
        assert!(span.count > 0, "{phase} never entered");
    }
    assert_eq!(snap.counter("net.fetches_total"), Some(120 * 5));
    assert!(snap.counter("fp.hits_url_total").unwrap_or(0) > 0);
    assert!(snap.counter("fp.vm_steps_total").unwrap_or(0) > 0);

    let json = telemetry_json(&results);
    for key in [
        "\"counters\":{",
        "\"net.fetches_total\"",
        "\"histograms\":[",
        "\"path\":\"crawl\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
