//! Chaos integration for the causal tracer: a hostile-profile study must
//! export a byte-identical canonical trace at every thread count, and
//! every quarantined task failure must carry its flight-recorder tail.
//!
//! Tracing is pure observation — the same run untraced produces the
//! same dataset — so these tests also pin the "never changes results"
//! contract at the full-pipeline level.

use std::sync::Arc;
use webvuln::core::{full_report, Pipeline, StudyConfig, TraceMode};
use webvuln::exec::{Executor, SuperviseConfig};
use webvuln::net::{FaultPlan, RetryPolicy};
use webvuln::trace::Tracer;
use webvuln::webgen::Timeline;

fn hostile_pipeline(threads: usize) -> Pipeline<'static> {
    Pipeline::new(StudyConfig::quick())
        .domains(150)
        .timeline(Timeline::truncated(4))
        .faults(FaultPlan::hostile(4_242))
        .retry(RetryPolicy::standard(2))
        .threads(threads)
}

#[test]
fn hostile_traced_study_is_byte_identical_across_thread_counts() {
    let traced = |threads: usize| {
        let results = hostile_pipeline(threads)
            .trace(TraceMode::Full)
            .run()
            .expect("study");
        (results.trace.clone().expect("trace enabled"), results)
    };
    let (t1, r1) = traced(1);
    let (t2, _) = traced(2);
    let (t8, r8) = traced(8);

    // The canonical event sets — not just summaries — are identical, and
    // so is the exported Chrome trace, byte for byte.
    assert_eq!(t1, t2);
    assert_eq!(t1, t8);
    assert_eq!(t1.to_chrome_json(), t8.to_chrome_json());

    // The trace covers all five study phases even under hostile faults.
    for phase in ["generate", "crawl", "fingerprint", "join", "analyze"] {
        assert!(
            t1.events.iter().any(|e| e.phase == phase),
            "phase {phase} missing from trace"
        );
    }
    // Cost attribution survived the chaos: patterns charged VM steps,
    // domains charged fetch lifecycles.
    assert!(t1.patterns.iter().any(|(_, s)| s.vm_steps > 0));
    assert!(t1.domains.iter().any(|(_, s)| s.attempts > 0));
    // Hostile faults actually exercised the failure lifecycle events.
    assert!(t1.domains.iter().any(|(_, s)| s.errors > 0));

    // Observation never changes the observed: the traced datasets agree
    // with each other and the report's cost-centers section is stable.
    assert_eq!(
        r1.dataset.weeks.len(),
        r8.dataset.weeks.len(),
        "week counts agree"
    );
    let report = full_report(&r1);
    assert!(report.contains("Top cost centers"), "{report}");
}

#[test]
fn tracing_never_changes_the_dataset() {
    let traced = hostile_pipeline(2)
        .trace(TraceMode::Full)
        .run()
        .expect("traced study");
    let untraced = hostile_pipeline(2).run().expect("untraced study");
    assert!(untraced.trace.is_none());
    for (a, b) in traced.dataset.weeks.iter().zip(&untraced.dataset.weeks) {
        assert_eq!(a.pages, b.pages, "week {} pages diverge", a.week);
        assert_eq!(a.summaries, b.summaries, "week {} summaries", a.week);
    }
    assert_eq!(traced.dataset.filtered_out, untraced.dataset.filtered_out);
}

#[test]
fn quarantined_failures_carry_flight_recorder_tails() {
    // Ring mode is the always-affordable tier: no export, but every
    // supervised quarantine still snapshots the task's last events.
    let tracer = Tracer::new(TraceMode::Ring);
    let _guard = tracer.install();
    let items: Vec<u64> = (0..64).collect();
    let executor = Arc::new(Executor::new(4));
    let (out, _stats, failures) =
        executor.map_supervised(&items, SuperviseConfig::new().max_failures(64), |n| {
            webvuln::trace::emit(
                "item.seen",
                "",
                &format!("n={n}"),
                10,
                webvuln::trace::Sink::RingOnly,
            );
            if n % 7 == 3 {
                panic!("injected failure on item {n}");
            }
            *n
        });
    assert!(out.iter().filter(|o| o.is_none()).count() >= 8);
    assert!(!failures.is_empty());
    for failure in &failures {
        assert!(
            !failure.trace_tail.is_empty(),
            "quarantine record for item {} lost its flight-recorder tail",
            failure.index
        );
        assert!(
            failure.trace_tail.iter().any(|l| l.contains("item.seen")),
            "tail misses the task's own events: {:?}",
            failure.trace_tail
        );
    }
}
